"""Process-wide metrics: counters, gauges, histograms, phase timers.

ExtMCE runs are long, external-memory, parallel and fault-tolerant; the
JSON-lines trace (:mod:`repro.telemetry`) records *events*, but nothing
aggregated where time, I/O and memory actually go.  This module is the
missing layer: a low-overhead metrics registry threaded through the hot
paths — storage (page reads/writes, buffer-pool hits, checksum
failures), the enumeration kernels (subproblem counts and sizes), the
driver (emitted/suppressed cliques, M1/M2/M3 category counts, per-phase
wall time) and the parallel executor (chunk latencies, retries, payload
bytes).

Design constraints, in order:

1. **Near-free when disabled.**  The default registry is
   :data:`NULL_REGISTRY`; every metric it hands out is a shared no-op
   singleton, and :func:`bound` caches the per-module metric bundle so a
   disabled hot path pays one identity check plus one no-op call.  The
   CI smoke benchmark asserts the whole instrumentation layer adds <5%
   to a small enumeration.
2. **Deterministic snapshots.**  A snapshot is a plain JSON-able dict
   whose metric list is sorted by ``(name, labels)``; counter totals are
   pure functions of the work performed, never of scheduling (wall-clock
   quantities live only in histogram *values*, not in series identity).
3. **Worker merge mirrors trace merge.**  Each worker process runs its
   own registry and dumps a snapshot file next to its trace file; the
   driver folds the files back in with :meth:`MetricsRegistry.absorb`,
   exactly as :meth:`repro.telemetry.TraceWriter.absorb` folds worker
   events — counters and histograms sum, gauges keep their maximum.

Exposition: :func:`render_prometheus` emits the Prometheus text format
(``# HELP`` / ``# TYPE`` / cumulative ``_bucket`` series), and
:func:`render_metrics_table` a human table (``repro-mce stats``).
"""

from __future__ import annotations

import json
import os
import time
from bisect import bisect_left
from pathlib import Path
from typing import Callable

#: Snapshot schema identifier; bump on incompatible layout changes.
SNAPSHOT_SCHEMA = "repro.metrics/1"

#: Default histogram bounds for set/subproblem sizes (powers of two).
SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)

#: Default histogram bounds for wall-clock durations, in seconds.
TIME_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_TYPES = ("counter", "gauge", "histogram")


# ---------------------------------------------------------------------------
# Live instruments
# ---------------------------------------------------------------------------
class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be non-negative by convention)."""
        self.value += amount


class Gauge:
    """A point-in-time level (resident pages, hashtable entries, ...)."""

    __slots__ = ("value", "high_water")

    def __init__(self) -> None:
        self.value = 0
        self.high_water = 0

    def set(self, value: int | float) -> None:
        """Replace the level, tracking the high-water mark."""
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def inc(self, amount: int | float = 1) -> None:
        """Raise the level by ``amount``."""
        self.set(self.value + amount)

    def dec(self, amount: int | float = 1) -> None:
        """Lower the level by ``amount``."""
        self.value -= amount


class Histogram:
    """Fixed-bound bucketed distribution (Prometheus-style ``le`` semantics).

    ``counts[i]`` holds observations ``<= bounds[i]`` exclusive of earlier
    buckets (non-cumulative storage); ``counts[-1]`` is the overflow
    bucket.  Rendering cumulates, matching the exposition format.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: int | float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Average observed value (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0


class _NullInstrument:
    """Shared no-op stand-in for every instrument type."""

    __slots__ = ()
    value = 0
    high_water = 0
    sum = 0.0
    count = 0
    mean = 0.0

    def inc(self, amount: int | float = 1) -> None:  # noqa: ARG002
        pass

    def dec(self, amount: int | float = 1) -> None:  # noqa: ARG002
        pass

    def set(self, value: int | float) -> None:  # noqa: ARG002
        pass

    def observe(self, value: int | float) -> None:  # noqa: ARG002
        pass


_NULL_INSTRUMENT = _NullInstrument()


class _NullTimer:
    """No-op context manager; never touches the clock."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_TIMER = _NullTimer()


class _Timer:
    """Scoped phase timer: observes elapsed seconds into a histogram."""

    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.observe(time.perf_counter() - self._started)


# ---------------------------------------------------------------------------
# Registries
# ---------------------------------------------------------------------------
def _label_key(labels: dict[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Holds every live metric of one process (or one worker)."""

    def __init__(self) -> None:
        # (name, label items) -> instrument
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}
        # name -> (type, help, bucket bounds or None)
        self._meta: dict[str, tuple[str, str, tuple[float, ...] | None]] = {}
        self._bindings: dict[object, object] = {}

    # -- creation ------------------------------------------------------
    def counter(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Counter:
        """Get or create the counter ``name`` (one series per label set)."""
        return self._get(name, "counter", help, labels, None)

    def gauge(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(name, "gauge", help, labels, None)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        buckets: tuple[float, ...] = SIZE_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram ``name`` with fixed ``buckets``."""
        return self._get(name, "histogram", help, labels, tuple(buckets))

    def timer(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> _Timer:
        """A context manager timing a phase into ``name`` (seconds)."""
        return _Timer(self.histogram(name, help, labels, buckets=TIME_BUCKETS))

    def bind(self, factory: Callable[["MetricsRegistry"], object]) -> object:
        """Memoize ``factory(self)`` — one metric bundle per module."""
        bundle = self._bindings.get(factory)
        if bundle is None:
            bundle = factory(self)
            self._bindings[factory] = bundle
        return bundle

    def _get(self, name, kind, help, labels, buckets):
        meta = self._meta.get(name)
        if meta is None:
            self._meta[name] = (kind, help, buckets)
        else:
            if meta[0] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {meta[0]}, not {kind}"
                )
            if kind == "histogram" and buckets != meta[2]:
                raise ValueError(f"metric {name!r} registered with other buckets")
            if help and not meta[1]:
                self._meta[name] = (kind, help, meta[2])
        key = (name, _label_key(labels))
        instrument = self._metrics.get(key)
        if instrument is None:
            if kind == "counter":
                instrument = Counter()
            elif kind == "gauge":
                instrument = Gauge()
            else:
                instrument = Histogram(buckets)
            self._metrics[key] = instrument
        return instrument

    # -- export --------------------------------------------------------
    def snapshot(self) -> dict:
        """A deterministic, JSON-able view of every series."""
        entries = []
        for (name, label_items), instrument in sorted(self._metrics.items()):
            kind, help_text, _ = self._meta[name]
            entry: dict = {
                "name": name,
                "type": kind,
                "help": help_text,
                "labels": dict(label_items),
            }
            if kind == "histogram":
                entry["buckets"] = list(instrument.bounds)
                entry["counts"] = list(instrument.counts)
                entry["sum"] = instrument.sum
                entry["count"] = instrument.count
            elif kind == "gauge":
                entry["value"] = instrument.value
                entry["high_water"] = instrument.high_water
            else:
                entry["value"] = instrument.value
            entries.append(entry)
        return {"schema": SNAPSHOT_SCHEMA, "metrics": entries}

    def absorb(self, snapshot: dict) -> None:
        """Fold a snapshot (e.g. one worker's) into this registry.

        The metrics analogue of :meth:`repro.telemetry.TraceWriter.absorb`:
        counters and histograms sum, gauges keep the maximum of the two
        levels.  Unknown series are created on the fly, so absorbing into
        an empty registry reproduces the snapshot exactly.
        """
        for entry in _validated(snapshot)["metrics"]:
            name = entry["name"]
            kind = entry["type"]
            labels = entry.get("labels") or None
            help_text = entry.get("help", "")
            if kind == "counter":
                self.counter(name, help_text, labels).inc(entry["value"])
            elif kind == "gauge":
                gauge = self.gauge(name, help_text, labels)
                if entry["value"] > gauge.value:
                    gauge.set(entry["value"])
                if entry.get("high_water", 0) > gauge.high_water:
                    gauge.high_water = entry["high_water"]
            elif kind == "histogram":
                bounds = tuple(entry["buckets"])
                histogram = self.histogram(name, help_text, labels, buckets=bounds)
                if histogram.bounds != bounds:
                    raise ValueError(f"histogram {name!r} bucket bounds differ")
                for index, count in enumerate(entry["counts"]):
                    histogram.counts[index] += count
                histogram.sum += entry["sum"]
                histogram.count += entry["count"]
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")


class NullRegistry:
    """The disabled registry: every request returns a shared no-op."""

    def counter(self, name, help="", labels=None):  # noqa: ARG002
        """No-op counter."""
        return _NULL_INSTRUMENT

    def gauge(self, name, help="", labels=None):  # noqa: ARG002
        """No-op gauge."""
        return _NULL_INSTRUMENT

    def histogram(self, name, help="", labels=None, buckets=SIZE_BUCKETS):  # noqa: ARG002
        """No-op histogram."""
        return _NULL_INSTRUMENT

    def timer(self, name, help="", labels=None):  # noqa: ARG002
        """No-op timer (never reads the clock)."""
        return _NULL_TIMER

    def bind(self, factory):
        """Build the bundle once against the null registry and share it."""
        bundle = self._bindings.get(factory)
        if bundle is None:
            bundle = factory(self)
            self._bindings[factory] = bundle
        return bundle

    def __init__(self) -> None:
        self._bindings: dict[object, object] = {}


#: The process-wide disabled registry (the default active registry).
NULL_REGISTRY = NullRegistry()

_ACTIVE: MetricsRegistry | NullRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry | NullRegistry:
    """The currently active registry (the null registry when disabled)."""
    return _ACTIVE


def set_registry(registry: MetricsRegistry | NullRegistry) -> None:
    """Install ``registry`` as the process-wide active registry."""
    global _ACTIVE
    _ACTIVE = registry


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Switch metrics on; idempotent when already enabled.

    Returns the active live registry (``registry`` if given, the existing
    live one if already enabled, a fresh one otherwise).  Call *before*
    constructing the objects you want metered — instrument bundles bound
    while disabled re-resolve automatically, so ordering only matters for
    code that captures instruments directly.
    """
    global _ACTIVE
    if registry is not None:
        _ACTIVE = registry
    elif not enabled():
        _ACTIVE = MetricsRegistry()
    return _ACTIVE  # type: ignore[return-value]


def disable() -> None:
    """Switch metrics off (reinstall the null registry)."""
    set_registry(NULL_REGISTRY)


def enabled() -> bool:
    """Whether a live registry is active."""
    return isinstance(_ACTIVE, MetricsRegistry)


def bound(factory: Callable[[MetricsRegistry | NullRegistry], object]):
    """A zero-argument accessor for a module's metric bundle.

    ``factory(registry)`` builds the bundle (any object holding
    instruments); the returned closure re-invokes it only when the active
    registry changes identity, so steady-state cost is one ``is`` check.
    This is what keeps the disabled path near-free *and* lets
    :func:`enable` take effect at any moment — no construction-order
    coupling between instrumented objects and the registry.
    """
    cached_registry: object | None = None
    cached_bundle: object | None = None

    def accessor():
        nonlocal cached_registry, cached_bundle
        registry = _ACTIVE
        if registry is not cached_registry:
            cached_bundle = registry.bind(factory)
            cached_registry = registry
        return cached_bundle

    return accessor


# ---------------------------------------------------------------------------
# Snapshot plumbing
# ---------------------------------------------------------------------------
def _validated(snapshot: dict) -> dict:
    schema = snapshot.get("schema") if isinstance(snapshot, dict) else None
    if schema != SNAPSHOT_SCHEMA:
        raise ValueError(f"not a metrics snapshot (schema={schema!r})")
    return snapshot


def is_snapshot(payload: object) -> bool:
    """Whether ``payload`` looks like a metrics snapshot dict."""
    return isinstance(payload, dict) and payload.get("schema") == SNAPSHOT_SCHEMA


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Deterministically merge snapshots (counters/histograms sum, gauges max)."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.absorb(snapshot)
    return merged.snapshot()


def load_snapshot(path: str | Path) -> dict:
    """Read and validate a snapshot JSON file."""
    return _validated(json.loads(Path(path).read_text(encoding="ascii")))


def dump_snapshot(snapshot: dict, path: str | Path) -> None:
    """Atomically write a snapshot as JSON (write-temp-then-rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(snapshot, sort_keys=True), encoding="ascii")
    os.replace(tmp, path)


def write_exposition_files(snapshot: dict, path: str | Path) -> tuple[Path, Path]:
    """Write ``path`` (JSON snapshot) and ``path + '.prom'`` (Prometheus).

    This is what ``repro-mce enumerate --metrics-out PATH`` produces;
    returns the two paths written.
    """
    path = Path(path)
    dump_snapshot(snapshot, path)
    prom = path.with_name(path.name + ".prom")
    prom.write_text(render_prometheus(snapshot), encoding="ascii")
    return path, prom


def metric_names(snapshot: dict) -> set[str]:
    """The distinct metric names in a snapshot (schema checks)."""
    return {entry["name"] for entry in _validated(snapshot)["metrics"]}


def counter_value(snapshot: dict, name: str) -> int | float:
    """Sum of a counter's series across all label sets (0 when absent)."""
    return sum(
        entry["value"]
        for entry in _validated(snapshot)["metrics"]
        if entry["name"] == name and entry["type"] == "counter"
    )


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: int | float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _series(name: str, labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    items = {**labels, **(extra or {})}
    if not items:
        return name
    body = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in sorted(items.items()))
    return f"{name}{{{body}}}"


def render_prometheus(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    announced: set[str] = set()
    for entry in _validated(snapshot)["metrics"]:
        name, kind, labels = entry["name"], entry["type"], entry.get("labels", {})
        if name not in announced:
            announced.add(name)
            if entry.get("help"):
                lines.append(f"# HELP {name} {_escape_help(entry['help'])}")
            lines.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            cumulative = 0
            for bound_value, count in zip(entry["buckets"], entry["counts"]):
                cumulative += count
                lines.append(
                    f"{_series(name + '_bucket', labels, {'le': _format_value(float(bound_value))})}"
                    f" {cumulative}"
                )
            lines.append(
                f"{_series(name + '_bucket', labels, {'le': '+Inf'})} {entry['count']}"
            )
            lines.append(f"{_series(name + '_sum', labels)} {_format_value(entry['sum'])}")
            lines.append(f"{_series(name + '_count', labels)} {entry['count']}")
        else:
            lines.append(f"{_series(name, labels)} {_format_value(entry['value'])}")
    return "\n".join(lines) + "\n"


def render_metrics_table(snapshot: dict) -> str:
    """Render a snapshot as the human table behind ``repro-mce stats``."""
    from repro.analysis.tables import render_table

    rows = []
    for entry in _validated(snapshot)["metrics"]:
        series = _series(entry["name"], entry.get("labels", {}))
        if entry["type"] == "histogram":
            mean = entry["sum"] / entry["count"] if entry["count"] else 0.0
            rows.append(
                (series, "histogram",
                 f"count={entry['count']} sum={entry['sum']:.6g} mean={mean:.6g}")
            )
        elif entry["type"] == "gauge":
            rows.append(
                (series, "gauge",
                 f"{_format_value(entry['value'])} (high water "
                 f"{_format_value(entry.get('high_water', entry['value']))})")
            )
        else:
            rows.append((series, "counter", _format_value(entry["value"])))
    return render_table("Metrics snapshot", ["metric", "type", "value"], rows)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "SIZE_BUCKETS",
    "SNAPSHOT_SCHEMA",
    "TIME_BUCKETS",
    "bound",
    "counter_value",
    "disable",
    "dump_snapshot",
    "enable",
    "enabled",
    "get_registry",
    "is_snapshot",
    "load_snapshot",
    "merge_snapshots",
    "metric_names",
    "render_metrics_table",
    "render_prometheus",
    "set_registry",
    "write_exposition_files",
]
