"""Bitset rewrite of the pivoted Tomita expansion.

The hot loop of maximal-clique enumeration is the candidate-set algebra
of Tomita, Tanaka & Takahashi (2006): intersecting candidate and excluded
sets with neighborhoods, scoring pivots, and iterating extensions in
ascending vertex order.  Here every set is a Python big-int over the
compact vertex indices of a :class:`~repro.kernel.compact.CompactGraph`:

* ``candidates & nb(v)`` is one ``&`` over machine words,
* pivot scores are ``(candidates & masks[u]).bit_count()``,
* ascending-order iteration is the lowest-set-bit loop
  (``mask & -mask``), and
* frame state is two ints, so no per-recursion set copies exist at all.

On top of the representation change, the expansion eliminates whole
recursion frames that the set-based path pays for:

* ``candidates | excluded`` is invariant across a node's extension loop
  (each processed vertex moves from one side to the other), so one
  ``union & nb(v)`` per child detects the ``yield``-leaf case outright;
* a child with a single candidate ``w`` is resolved inline — the subtree
  below it emits ``current + [v, w]`` iff no excluded vertex is adjacent
  to ``w`` (any such vertex survives into ``w``'s own subproblem and
  blocks the only possible leaf), which is one ``&`` instead of a
  recursive call, a pivot scan, and an extension loop.

Determinism contract (asserted by the test suite): for any graph whose
vertex ids are mutually orderable, every generator in this module yields
*exactly* the clique stream of its set-based counterpart in
:mod:`repro.baselines.bron_kerbosch` — same cliques, same order.  The
argument is spelled out in ``docs/ALGORITHMS.md``; in short, compact
indices are assigned in ascending label order, lowest-bit iteration
therefore equals ``sorted()`` iteration, and both paths resolve pivot
ties toward the smallest vertex id (with early exit once a pivot covers
every candidate, which empties the extension regardless of which
covering pivot wins).

Memory tradeoff: the recursive worker collects each (sub)problem's
cliques into a list before the public generators yield them, trading
``O(output)`` transient memory for the elimination of per-frame generator
machinery.  Callers that must stream cliques lazily under a tight memory
budget keep using the set-based path — see ``docs/ALGORITHMS.md``.
"""

from __future__ import annotations

from collections.abc import Iterator
from types import SimpleNamespace

from repro import metrics
from repro.errors import GraphError, VertexNotFoundError
from repro.kernel.compact import CompactGraph

Clique = frozenset

#: Per-subproblem aggregates (never per recursion frame — the hot loop
#: stays untouched).  Labeled ``kernel="bitset"``; the set path in
#: :mod:`repro.baselines.bron_kerbosch` reports the same families.
_METRICS = metrics.bound(
    lambda registry: SimpleNamespace(
        subproblems=registry.counter(
            "repro_kernel_subproblems_total",
            "root subproblems expanded by the enumeration kernels",
            labels={"kernel": "bitset"},
        ),
        cliques=registry.counter(
            "repro_kernel_cliques_total",
            "maximal cliques produced by kernel subproblems",
            labels={"kernel": "bitset"},
        ),
        sizes=registry.histogram(
            "repro_kernel_subproblem_size",
            "candidate-set size at each subproblem root",
            labels={"kernel": "bitset"},
            buckets=metrics.SIZE_BUCKETS,
        ),
    )
)


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set-bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def maximal_cliques_bitset(
    graph: CompactGraph,
    subset_mask: int | None = None,
    reduction: str = "off",
) -> Iterator[Clique]:
    """Enumerate maximal cliques with max-pivoting over bitmasks.

    With ``subset_mask`` given, enumeration is confined to the induced
    subgraph on those compact indices *without materialising it*: seeding
    ``candidates = subset_mask`` keeps every candidate/excluded mask
    inside the subset, so the full graph's adjacency masks apply
    unchanged.  The stream equals running the set-based enumerator on
    ``induced_subgraph(subset)`` — same cliques, same order.

    ``reduction`` (``"off"``/``"prune"``/``"full"``) applies the exact
    :mod:`repro.reduce` preprocessing before the CSR repack: the reduced
    adjacency graph is what gets packed and enumerated, and the stream
    is lifted back through the reconstruction map.  Incompatible with
    ``subset_mask`` (the mask addresses the unreduced index space).
    """
    if reduction != "off":
        from repro.reduce import reduce_graph, validate_reduction

        validate_reduction(reduction)
        if subset_mask is not None:
            raise GraphError(
                "reduction cannot be combined with subset_mask: the mask "
                "addresses compact indices of the unreduced graph"
            )
        reduced = reduce_graph(graph.to_adjacency_graph(), reduction)
        inner: Iterator[Clique] = (
            maximal_cliques_bitset(CompactGraph.from_adjacency(reduced.reduced))
            if reduced.reduced.num_vertices
            else iter(())
        )
        yield from reduced.map.reconstruct(inner)
        return
    candidates = graph.full_mask if subset_mask is None else subset_mask
    bundle = _METRICS()
    bundle.subproblems.inc()
    bundle.sizes.observe(candidates.bit_count())
    out: list[Clique] = []
    _run(graph.masks, graph.labels, [], candidates, 0, out)
    bundle.cliques.inc(len(out))
    yield from out


def subproblem_bitset(graph: CompactGraph, start) -> Iterator[Clique]:
    """Maximal cliques whose smallest member is ``start`` (original id).

    The bitmask form of :func:`repro.baselines.bron_kerbosch.
    tomita_subproblem` — the Par-TTT root split: larger neighbors are the
    candidates, smaller neighbors are permanently excluded.
    """
    index = graph.index_of.get(start)
    if index is None:
        raise VertexNotFoundError(start)
    neighbors = graph.masks[index]
    low_bits = (1 << index) - 1
    bundle = _METRICS()
    bundle.subproblems.inc()
    bundle.sizes.observe((neighbors & ~low_bits).bit_count())
    out: list[Clique] = []
    _run(
        graph.masks,
        graph.labels,
        [graph.labels[index]],
        neighbors & ~low_bits,
        neighbors & low_bits,
        out,
    )
    bundle.cliques.inc(len(out))
    yield from out


def _run(
    masks: list[int],
    labels: tuple,
    current: list,
    candidates: int,
    excluded: int,
    out: list,
) -> None:
    """Entry guard around :func:`_collect` (which requires candidates)."""
    if not candidates:
        if not excluded and current:
            out.append(frozenset(current))
        return
    _collect(masks, labels, current, candidates, candidates | excluded, out.append)


def _collect(
    masks: list[int],
    labels: tuple,
    current: list,
    candidates: int,
    union: int,
    out,
) -> None:
    """One Tomita node; ``union`` is ``candidates | excluded`` (nonzero).

    ``excluded`` is carried implicitly as ``union ^ candidates``: the
    extension loop moves each processed vertex from candidates to
    excluded, leaving their union unchanged, so only ``candidates``
    needs updating per child.
    """
    # Pivot: the smallest-id vertex of candidates | excluded maximising
    # |candidates & nb(u)|.  Ascending iteration makes "first strict
    # maximum" equal the set path's tie-break toward the smallest id, and
    # lets the scan stop early once no later vertex could score higher.
    target = candidates.bit_count()
    best_score = -1
    pivot_neighbors = 0
    scan = union
    while scan:
        low = scan & -scan
        neighbors = masks[low.bit_length() - 1]
        score = (candidates & neighbors).bit_count()
        if score > best_score:
            best_score = score
            pivot_neighbors = neighbors
            if score == target:
                break
        scan ^= low
    extension = candidates & ~pivot_neighbors
    while extension:
        low = extension & -extension
        index = low.bit_length() - 1
        neighbors = masks[index]
        new_union = union & neighbors
        if new_union:
            new_candidates = candidates & neighbors
            if new_candidates:
                if new_candidates & (new_candidates - 1):
                    current.append(labels[index])
                    _collect(masks, labels, current, new_candidates, new_union, out)
                    current.pop()
                else:
                    # Single candidate w: the child emits current+[v, w]
                    # iff no excluded vertex of the child is adjacent to
                    # w, and nothing otherwise.
                    w = new_candidates.bit_length() - 1
                    if not (masks[w] & (new_union ^ new_candidates)):
                        current.append(labels[index])
                        current.append(labels[w])
                        out(frozenset(current))
                        current.pop()
                        current.pop()
        else:
            # Child candidates and excluded both empty: a maximal clique.
            current.append(labels[index])
            out(frozenset(current))
            current.pop()
        candidates ^= low
        extension ^= low


__all__ = ["iter_bits", "maximal_cliques_bitset", "subproblem_bitset"]
