"""Compact integer-indexed graph representation for the bitset kernel.

The pure-Python enumeration hot path (``repro.kernel.bitmce``) spends its
time on candidate-set algebra.  Dict-of-sets adjacency makes every one of
those operations a hashed container walk; this module replaces it with the
representation used by fast in-memory MCE implementations (Das et al.'s
Par-TTT, Almasri et al.'s GPU enumerator): a dense vertex renumbering,
CSR neighbor arrays, and one adjacency *bitmask* per vertex.

The bitmasks are Python big-ints: ``&``, ``|``, ``~`` and
``int.bit_count()`` all run as C loops over 64-bit words, so a candidate
intersection costs ``O(n / 64)`` machine words instead of ``O(|set|)``
hash probes.  Vertices are renumbered in ascending label order, which
makes ascending set-bit iteration identical to ``sorted()`` iteration
over original ids — the property that keeps the bitset enumerator's
clique stream byte-identical to the set-based one.

The CSR arrays double as the parallel engine's worker payload
(:func:`repro.parallel.partition.serialize_star`): three flat arrays
pickle far smaller than a dict of per-vertex neighbor tuples.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Mapping

from repro.errors import (
    GraphError,
    SharedMemoryError,
    StorageFormatError,
    VertexNotFoundError,
)
from repro.graph.adjacency import AdjacencyGraph, Vertex

#: First word of every packed CSR buffer ("HSTARCSR" as big-endian bytes).
CSR_MAGIC = int.from_bytes(b"HSTARCSR", "big")

#: Packed layout: ``[magic, generation, n, nnz]`` followed by
#: ``labels[n]``, ``indptr[n + 1]``, ``indices[nnz]``, all int64 words.
CSR_HEADER_WORDS = 4


class CompactGraph:
    """Dense-renumbered undirected graph: CSR arrays plus adjacency masks.

    Attributes
    ----------
    labels:
        Original vertex ids, ascending; position is the compact index.
    indptr / indices:
        CSR adjacency: the neighbors of compact vertex ``i`` are
        ``indices[indptr[i]:indptr[i + 1]]``, ascending.
    masks:
        ``masks[i]`` is the adjacency bitmask of compact vertex ``i``
        (bit ``j`` set iff ``(i, j)`` is an edge).

    Examples
    --------
    >>> g = AdjacencyGraph.from_edges([(10, 30), (30, 20)])
    >>> cg = CompactGraph.from_adjacency(g)
    >>> cg.labels
    (10, 20, 30)
    >>> bin(cg.masks[2])  # 30 is adjacent to 10 (bit 0) and 20 (bit 1)
    '0b11'
    """

    __slots__ = ("labels", "index_of", "indptr", "indices", "masks")

    def __init__(
        self,
        labels: tuple[Vertex, ...],
        indptr: array,
        indices: array,
    ) -> None:
        self.labels = labels
        self.index_of = {label: index for index, label in enumerate(labels)}
        self.indptr = indptr
        self.indices = indices
        self.masks = self._build_masks()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_adjacency(cls, graph: AdjacencyGraph) -> "CompactGraph":
        """Compact an :class:`AdjacencyGraph` (vertices must be sortable).

        Trusts the graph's invariants (symmetric adjacency, no
        self-loops) and skips the symmetrisation pass of
        :meth:`from_neighbor_lists`, so conversion is one sort per vertex
        plus one dict lookup per directed edge.
        """
        try:
            labels = tuple(sorted(graph.vertices()))
        except TypeError as error:  # mixed unorderable vertex types
            raise GraphError(
                "the bitset kernel requires mutually orderable vertex ids"
            ) from error
        index_of = {label: index for index, label in enumerate(labels)}
        indptr = array("q", [0] * (len(labels) + 1))
        indices = array("q")
        for i, label in enumerate(labels):
            indices.extend(sorted(index_of[u] for u in graph.neighbors(label)))
            indptr[i + 1] = len(indices)
        return cls(labels, indptr, indices)

    @classmethod
    def from_neighbor_lists(
        cls,
        neighbor_lists: Mapping[Vertex, Iterable[Vertex]],
    ) -> "CompactGraph":
        """Compact a ``vertex -> neighbor iterable`` mapping.

        The mapping is symmetrised (an entry ``u -> [v]`` implies the edge
        even when ``v``'s list omits ``u``, matching
        :meth:`AdjacencyGraph.from_adjacency`), and neighbors outside the
        mapping's key set are rejected — the caller decides the vertex
        universe, the kernel never widens it silently.
        """
        try:
            labels = tuple(sorted(neighbor_lists))
        except TypeError as error:  # mixed unorderable vertex types
            raise GraphError(
                "the bitset kernel requires mutually orderable vertex ids"
            ) from error
        index_of = {label: index for index, label in enumerate(labels)}
        neighbor_sets: list[set[int]] = [set() for _ in labels]
        for label, neighbors in neighbor_lists.items():
            i = index_of[label]
            for neighbor in neighbors:
                j = index_of.get(neighbor)
                if j is None:
                    raise VertexNotFoundError(neighbor)
                if i == j:
                    raise GraphError(f"self-loop on vertex {label!r} is not allowed")
                neighbor_sets[i].add(j)
                neighbor_sets[j].add(i)
        indptr = array("q", [0] * (len(labels) + 1))
        indices = array("q")
        for i, neighbors in enumerate(neighbor_sets):
            indices.extend(sorted(neighbors))
            indptr[i + 1] = len(indices)
        return cls(labels, indptr, indices)

    @classmethod
    def from_csr(
        cls,
        labels: Iterable[Vertex],
        indptr: Iterable[int],
        indices: Iterable[int],
    ) -> "CompactGraph":
        """Rehydrate from pickled CSR arrays (the worker payload path).

        Trusts the caller's arrays: labels ascending, symmetric adjacency,
        ascending neighbor runs — exactly what :meth:`from_neighbor_lists`
        emits and :func:`repro.parallel.partition.serialize_star` ships.
        """
        return cls(
            tuple(labels),
            indptr if isinstance(indptr, array) else array("q", indptr),
            indices if isinstance(indices, array) else array("q", indices),
        )

    # ------------------------------------------------------------------
    # Shared-buffer codec (the zero-copy worker payload path)
    # ------------------------------------------------------------------
    def packed_nbytes(self) -> int:
        """Size in bytes of this graph's packed CSR image."""
        return 8 * (
            CSR_HEADER_WORDS + len(self.labels) + len(self.indptr) + len(self.indices)
        )

    def pack_into(self, buffer, generation: int = 0) -> int:
        """Write the CSR image into ``buffer`` (any writable bytes-like).

        Layout is the int64-word stream described by :data:`CSR_MAGIC` /
        :data:`CSR_HEADER_WORDS`; ``generation`` is stamped into the
        header so :meth:`unpack_from` can reject a stale segment.  The
        buffer may be larger than :meth:`packed_nbytes` (shared-memory
        segments are page-rounded); returns the bytes actually written.
        """
        try:
            labels = array("q", self.labels)
        except (TypeError, OverflowError) as error:
            raise GraphError(
                "packed CSR buffers require int64 vertex ids; "
                "use the pickled payload for exotic labels"
            ) from error
        words = memoryview(buffer).cast("q")
        try:
            header = array(
                "q", [CSR_MAGIC, generation, len(self.labels), len(self.indices)]
            )
            offset = 0
            for chunk in (
                header, labels, array("q", self.indptr), array("q", self.indices)
            ):
                words[offset : offset + len(chunk)] = memoryview(chunk)
                offset += len(chunk)
        finally:
            words.release()  # do not pin the caller's mmap past the write
        return offset * 8

    @classmethod
    def unpack_from(cls, buffer, generation: int | None = None) -> "CompactGraph":
        """Rehydrate a graph from a packed CSR image, zero-copy.

        ``indptr`` and ``indices`` stay ``memoryview`` slices over
        ``buffer`` — nothing is copied but the label tuple — so for a
        shared-memory segment every worker reads the same physical
        pages.  The caller owns the buffer's lifetime and must keep it
        mapped for as long as the returned graph is used.

        Raises :class:`~repro.errors.StorageFormatError` when the buffer
        does not hold a packed CSR image, and
        :class:`~repro.errors.SharedMemoryError` when ``generation`` is
        given and does not match the stamped one (a stale segment from an
        earlier publication).
        """
        words = memoryview(buffer).cast("q")
        try:
            if len(words) < CSR_HEADER_WORDS or words[0] != CSR_MAGIC:
                raise StorageFormatError("buffer does not hold a packed CSR graph")
            stamped, n, nnz = words[1], words[2], words[3]
            if generation is not None and stamped != generation:
                raise SharedMemoryError(
                    f"stale CSR segment: holds generation {stamped}, "
                    f"expected {generation}"
                )
            if len(words) < CSR_HEADER_WORDS + 2 * n + 1 + nnz:
                raise StorageFormatError(
                    "packed CSR buffer truncated: header promises more words "
                    "than the buffer holds"
                )
            base = CSR_HEADER_WORDS
            labels = tuple(words[base : base + n])
            indptr = words[base + n : base + 2 * n + 1]
            indices = words[base + 2 * n + 1 : base + 2 * n + 1 + nnz]
        except Exception:
            words.release()  # a failed rehydrate must not pin the segment
            raise
        return cls(labels, indptr, indices)

    def _build_masks(self) -> list[int]:
        # Set bits in a bytearray first: per-neighbor work stays on small
        # ints, and one from_bytes call per vertex builds the big-int, so
        # construction is O(m) small-int ops instead of O(m) wide ORs.
        masks = []
        indptr, indices = self.indptr, self.indices
        width = (len(self.labels) + 7) // 8
        for i in range(len(self.labels)):
            row = bytearray(width)
            for j in indices[indptr[i] : indptr[i + 1]]:
                row[j >> 3] |= 1 << (j & 7)
            masks.append(int.from_bytes(row, "little"))
        return masks

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """``n``."""
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        """``m`` (each undirected edge stored twice in CSR)."""
        return len(self.indices) // 2

    def degree(self, index: int) -> int:
        """Degree of the *compact* vertex ``index``."""
        return self.indptr[index + 1] - self.indptr[index]

    def subset_mask(self, vertices: Iterable[Vertex]) -> int:
        """Bitmask of the compact indices of ``vertices`` (original ids).

        Raises :class:`~repro.errors.VertexNotFoundError` on unknown ids.
        """
        index_of = self.index_of
        mask = 0
        for vertex in vertices:
            index = index_of.get(vertex)
            if index is None:
                raise VertexNotFoundError(vertex)
            mask |= 1 << index
        return mask

    @property
    def full_mask(self) -> int:
        """Bitmask with every vertex set."""
        return (1 << len(self.labels)) - 1

    def to_adjacency_graph(self) -> AdjacencyGraph:
        """Expand back to an :class:`AdjacencyGraph` (original ids)."""
        labels, indptr, indices = self.labels, self.indptr, self.indices
        graph = AdjacencyGraph()
        for i, label in enumerate(labels):
            graph.add_vertex(label)
            for j in indices[indptr[i] : indptr[i + 1]]:
                if i < j:
                    graph.add_edge(label, labels[j])
        return graph

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )


__all__ = ["CSR_HEADER_WORDS", "CSR_MAGIC", "CompactGraph"]
