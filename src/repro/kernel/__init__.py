"""repro.kernel — compact CSR + big-int bitmask enumeration kernel.

The performance core of the repository: a dense-renumbered graph
representation (:class:`CompactGraph`) and a bitmask rewrite of the
pivoted Tomita expansion (:func:`maximal_cliques_bitset`,
:func:`subproblem_bitset`) whose clique stream is byte-identical to the
set-based enumerators in :mod:`repro.baselines.bron_kerbosch`.

Consumers select it through ``kernel="bitset"`` switches on the
enumeration entry points (and ``--kernel`` on the CLI); see
``docs/ALGORITHMS.md`` for the representation and the determinism
argument.
"""

from repro.kernel.bitmce import (
    iter_bits,
    maximal_cliques_bitset,
    subproblem_bitset,
)
from repro.kernel.compact import CompactGraph

KERNELS = ("set", "bitset")


def validate_kernel(kernel: str) -> str:
    """Return ``kernel`` if it names a known enumeration kernel."""
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; choose from {KERNELS}")
    return kernel


__all__ = [
    "KERNELS",
    "CompactGraph",
    "iter_bits",
    "maximal_cliques_bitset",
    "subproblem_bitset",
    "validate_kernel",
]
