"""Deterministic, seeded fault injection for the external-memory stack.

Multi-hour ExtMCE runs live in a world where disks flip bits, workers get
OOM-killed and machines reboot.  This module makes those conditions
*reproducible* so the hardening around them can be tested: a
:class:`FaultPlan` is a list of :class:`FaultRule` entries plus a seed,
threaded into the storage layer (:class:`~repro.storage.pagestore.PageStore`,
:class:`~repro.storage.bufferpool.BufferPool`,
:class:`~repro.storage.diskgraph.DiskGraph`) and the parallel executor
(:class:`~repro.parallel.executor.StepExecutor`).  Each component consults
the plan at well-defined operation sites; the plan decides — as a pure
function of the rule list, the seed and the operation sequence — whether a
fault fires there and what kind.

Operation sites and the fault kinds they honour::

    site         component                 kinds
    ----------   -----------------------   ---------------------------------
    "read"       PageStore.read_at         io_error, short_read, corrupt,
                                           latency
    "scan"       PageStore.scan_chunks     io_error, short_read, corrupt,
                                           latency
    "write"      PageStore.write_all /     io_error, torn_write, latency
                 append / patch
    "pool_read"  BufferPool._page          io_error, corrupt, latency
    "chunk"      StepExecutor submission   worker_kill, worker_error,
                                           timeout, poison, latency
    "shm"        StepExecutor submission   attach_fail, stale_segment
    "compaction" LiveCliqueStore.compact   io_error, latency
    "net"        CliqueQueryServer         conn_reset, slow_write,
                                           partial_line, accept_stall
    "reduce"     reduction-map save/load   io_error, corrupt, latency

The ``"shm"`` site fires once per chunk submission when the step's graph
travels through a shared-memory segment (the path argument is the
segment name): ``attach_fail`` makes the worker's attach raise, and
``stale_segment`` makes the worker validate against the wrong
publication generation — both surface as
:class:`~repro.errors.SharedMemoryError` chunk errors, exercising the
retry/inline path rather than any silent wrong-graph read.

The ``"compaction"`` site fires once per compaction *stage* — the path
argument is the stage name (``"rotate"``, ``"build"``, ``"commit"``,
``"cleanup"``) so ``path_contains`` pins a fault to one point of the
protocol.  Live-store WAL appends go through PageStore, so the existing
``"write"`` site (with ``path_contains="wal"``) covers log faults.

The ``"reduce"`` site covers the graph-reduction preprocessing pass
(:mod:`repro.reduce`): it is consulted once when the reconstruction map
is persisted into the workdir and once when a resumed run loads it back
(the path argument is the map file path).  ``corrupt`` flips one byte of
the serialized map — the CRC32 turns that into a typed
:class:`~repro.errors.ReductionError` at load time instead of a wrong
clique — while ``io_error`` and ``latency`` model the filesystem.

The ``"net"`` site models the network being a network.  The serving
tier consults it at two points: once per accepted connection (the path
argument is ``"accept"``) where ``accept_stall`` delays the handler
before the first read, and once per response write (the path argument
is ``"write:<peer>"``) where ``conn_reset`` closes the socket with an
RST instead of replying, ``partial_line`` writes a prefix of the
response line and then resets, and ``slow_write`` trickles the response
out byte-ranges-with-sleeps (a server-side slow-loris) but completes
it.  Surviving connections keep the one-reply-per-request contract;
reset ones surface client-side as
:class:`~repro.errors.ServiceUnavailableError` and feed the retry /
circuit-breaker machinery.

The failure-model contract the plan exists to enforce: under *every*
schedule expressible here, a run either completes with a clique stream
byte-identical to the fault-free run, or raises a typed
:class:`~repro.errors.ReproError` leaving a resumable checkpoint — never
silent wrong output.  ``tests/faults/`` exercises exactly that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ReproError

#: Fault kinds understood by the storage layer.
STORAGE_KINDS = ("io_error", "short_read", "torn_write", "corrupt", "latency")

#: Fault kinds understood by the parallel executor.
EXECUTOR_KINDS = ("worker_kill", "worker_error", "timeout", "poison", "latency")

#: Fault kinds understood by the shared-memory graph path.
SHM_KINDS = ("attach_fail", "stale_segment")

#: Fault kinds understood by the serving tier's network site.
NET_KINDS = ("conn_reset", "slow_write", "partial_line", "accept_stall")

#: Fault kinds understood by the reduction-map persistence site.
REDUCE_KINDS = ("io_error", "corrupt", "latency")

_ALL_KINDS = tuple(
    dict.fromkeys(STORAGE_KINDS + EXECUTOR_KINDS + SHM_KINDS + NET_KINDS + REDUCE_KINDS)
)


@dataclass(frozen=True)
class FaultRule:
    """One injectable failure mode.

    Attributes
    ----------
    operation:
        The operation site this rule arms ("read", "write", "scan",
        "pool_read", "chunk").
    kind:
        What happens when the rule fires (see module docstring).
    probability:
        Chance of firing per eligible match, drawn from the plan's seeded
        RNG; ``1.0`` (the default) fires deterministically.
    after:
        Number of eligible matches to let pass before the rule may fire
        — "fail the third residual write" is ``after=2``.
    max_firings:
        Total firings before the rule disarms; ``None`` means unlimited.
        The default of 1 models a transient fault that a retry survives.
    path_contains:
        Only match operations on paths containing this substring
        (ignored for the pathless "chunk" site).
    latency_seconds:
        Sleep duration for ``latency`` faults and the worker-side stall
        for ``timeout`` faults.
    """

    operation: str
    kind: str
    probability: float = 1.0
    after: int = 0
    max_firings: int | None = 1
    path_contains: str | None = None
    latency_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in _ALL_KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; choose from {_ALL_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ReproError(f"fault probability must be in [0, 1], got {self.probability}")
        if self.after < 0:
            raise ReproError(f"fault 'after' must be non-negative, got {self.after}")


@dataclass(frozen=True)
class Fault:
    """A fired fault: what to inject, where, and with what randomness.

    ``fraction`` is a deterministic draw in ``[0, 1)`` the injection site
    uses to pick a byte position to corrupt or a truncation point, so two
    runs of the same plan damage the same bytes.
    """

    kind: str
    rule: FaultRule
    operation: str
    path: str | None
    sequence: int
    fraction: float

    @property
    def latency_seconds(self) -> float:
        """Sleep duration for latency/timeout kinds."""
        return self.rule.latency_seconds


@dataclass
class _RuleState:
    matches: int = 0
    firings: int = 0


class FaultPlan:
    """A seeded schedule of faults, consulted by instrumented components.

    The plan is deterministic: given the same rules, seed and sequence of
    :meth:`draw` calls, the same faults fire at the same operations with
    the same ``fraction`` draws.  It is shared *within one process*; the
    executor applies "chunk" faults driver-side (wrapping the submitted
    task) precisely so worker processes never need the plan.
    """

    def __init__(self, rules: Sequence[FaultRule] = (), seed: int = 0) -> None:
        self._rules = list(rules)
        self._seed = seed
        self._rng = random.Random(seed)
        self._states = [_RuleState() for _ in self._rules]
        self._sequence = 0
        #: Every fault that fired, in firing order (for tests/telemetry).
        self.firings: list[Fault] = []

    @property
    def rules(self) -> list[FaultRule]:
        """The armed rules, in priority order (first match wins)."""
        return list(self._rules)

    @property
    def seed(self) -> int:
        """The seed the plan's RNG was built from."""
        return self._seed

    def draw(self, operation: str, path: str | None = None) -> Fault | None:
        """Decide whether a fault fires at this operation.

        Called by instrumented components once per operation.  Returns
        the fired :class:`Fault` (first matching armed rule wins) or
        ``None``.  Every call advances the deterministic sequence.
        """
        self._sequence += 1
        for rule, state in zip(self._rules, self._states):
            if rule.operation != operation:
                continue
            if rule.path_contains is not None and (
                path is None or rule.path_contains not in path
            ):
                continue
            state.matches += 1
            if state.matches <= rule.after:
                continue
            if rule.max_firings is not None and state.firings >= rule.max_firings:
                continue
            if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                continue
            state.firings += 1
            fault = Fault(
                kind=rule.kind,
                rule=rule,
                operation=operation,
                path=path,
                sequence=self._sequence,
                fraction=self._rng.random(),
            )
            self.firings.append(fault)
            return fault
        return None

    def reset(self) -> None:
        """Rewind to the armed state (fresh RNG, zeroed counters)."""
        self._rng = random.Random(self._seed)
        self._states = [_RuleState() for _ in self._rules]
        self._sequence = 0
        self.firings = []

    # ------------------------------------------------------------------
    # Serialization (the CLI's --fault-plan reads this spec as JSON)
    # ------------------------------------------------------------------
    def to_spec(self) -> dict:
        """Plain-data representation, JSON-serialisable."""
        return {
            "seed": self._seed,
            "rules": [
                {
                    "operation": rule.operation,
                    "kind": rule.kind,
                    "probability": rule.probability,
                    "after": rule.after,
                    "max_firings": rule.max_firings,
                    "path_contains": rule.path_contains,
                    "latency_seconds": rule.latency_seconds,
                }
                for rule in self._rules
            ],
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "FaultPlan":
        """Build a plan from :meth:`to_spec` output (or hand-written JSON)."""
        try:
            rules = [
                FaultRule(
                    operation=str(entry["operation"]),
                    kind=str(entry["kind"]),
                    probability=float(entry.get("probability", 1.0)),
                    after=int(entry.get("after", 0)),
                    # Missing key → the FaultRule default (one transient
                    # firing); an explicit JSON null → unlimited.
                    max_firings=(
                        None
                        if entry.get("max_firings", 1) is None
                        else int(entry.get("max_firings", 1))
                    ),
                    path_contains=(
                        None
                        if entry.get("path_contains") is None
                        else str(entry["path_contains"])
                    ),
                    latency_seconds=float(entry.get("latency_seconds", 0.05)),
                )
                for entry in spec.get("rules", [])
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed fault-plan spec: {exc}") from exc
        return cls(rules, seed=int(spec.get("seed", 0)))


def corrupt_bytes(data: bytes, fraction: float) -> bytes:
    """Flip one byte of ``data`` at the position selected by ``fraction``.

    The shared corruption primitive of the injection sites: XORs with
    0xFF, so the damage is guaranteed to change the byte and therefore to
    trip a covering CRC32.
    """
    if not data:
        return data
    position = min(int(fraction * len(data)), len(data) - 1)
    mutated = bytearray(data)
    mutated[position] ^= 0xFF
    return bytes(mutated)


__all__ = [
    "EXECUTOR_KINDS",
    "NET_KINDS",
    "REDUCE_KINDS",
    "SHM_KINDS",
    "STORAGE_KINDS",
    "Fault",
    "FaultPlan",
    "FaultRule",
    "corrupt_bytes",
]
