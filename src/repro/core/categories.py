"""Algorithm 2: lifting H*-max-cliques to H+-max-cliques (Section 4.2).

An H*-max-clique is maximal only *locally* in ``G_H*``.  The paper proves
(Theorem 2) that the maximal cliques of ``G_H+`` containing at least one
core vertex — the H+-max-cliques — are maximal in the whole graph ``G``,
and computes them from ``T_H*`` in three disjoint categories:

* ``M1`` (Lemma 4): cliques of core vertices only — the members of ``M_H``
  with no common periphery neighbor.
* ``M2`` (Lemma 5): ``C1 ∪ C2`` where ``C1 ∈ M_H`` has common periphery
  neighbors and ``C2`` is a maximal clique of the subgraph induced by
  ``HNB(C1)`` (fetched from the on-disk h-neighbor partitions).
* ``M3`` (Lemma 6): ``C1 ∪ C2`` where ``C1`` is a *non-maximal* core
  clique from the candidate set ``X`` of Eq. (10) and ``C2 ∈ EXT(C1)``
  per Eq. (11).

Two implementation notes, both verified against brute force by the tests:

1. Eq. (10)'s subsumption condition ("no proper superset with the same
   ``HNB``") reduces to a *single-vertex* test: ``C1`` survives iff every
   common core neighbor ``u`` of ``C1`` strictly shrinks the periphery
   intersection (``HNB(C1 ∪ {u}) ⊊ HNB(C1)``).  If a larger superset had
   equal ``HNB``, any intermediate one-vertex extension would too, since
   ``HNB`` is antitone.
2. Eq. (11)'s two maximality clauses are exactly "no core vertex extends
   ``C1 ∪ C2``": a periphery extension is impossible because ``C2`` is
   already maximal within ``HNB(C1)``, so the direct neighborhood test
   against the star graph's lists decides membership.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field
from typing import Protocol

from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.graph.adjacency import AdjacencyGraph
from repro.core.hstar import StarGraph

Clique = frozenset


class PeripheryAdjacency(Protocol):
    """Provider of induced subgraphs among periphery vertices.

    Satisfied by :class:`~repro.storage.partitions.HnbPartitionStore`
    (disk-backed, the paper's Section 4.2.3 machinery) and by
    :class:`InMemoryPeripheryAdjacency` (tests, dynamic maintenance).
    """

    def induced_subgraph(self, vertices: Iterable[int]) -> AdjacencyGraph:
        """Subgraph induced on ``vertices`` by periphery-periphery edges."""
        ...  # pragma: no cover - protocol


class InMemoryPeripheryAdjacency:
    """Periphery adjacency served from an in-memory graph."""

    def __init__(self, graph: AdjacencyGraph) -> None:
        self._graph = graph

    def induced_subgraph(self, vertices: Iterable[int]) -> AdjacencyGraph:
        """Delegate to :meth:`AdjacencyGraph.induced_subgraph`."""
        return self._graph.induced_subgraph(vertices)


@dataclass
class CategorizedCliques:
    """The three disjoint H+-max-clique categories of Section 4.2.2."""

    m1: list[Clique] = field(default_factory=list)
    m2: list[Clique] = field(default_factory=list)
    m3: list[Clique] = field(default_factory=list)

    def all_cliques(self) -> Iterator[Clique]:
        """Iterate ``M1 ∪ M2 ∪ M3`` — the full ``M_H+`` (Theorem 3)."""
        yield from self.m1
        yield from self.m2
        yield from self.m3

    @property
    def total(self) -> int:
        """``|M_H+|``."""
        return len(self.m1) + len(self.m2) + len(self.m3)


#: Phase-2 strategy: maps the ordered distinct ``HNB`` sets to the maximal
#: cliques of their induced periphery subgraphs.  The default is the serial
#: loop of :func:`resolve_hnb_cliques`; :class:`repro.parallel.driver.
#: ParallelExtMCE` injects a fan-out over a worker pool.
HnbResolver = Callable[
    [list[Clique], PeripheryAdjacency], dict[Clique, list[Clique]]
]


def collect_lift_items(
    star: StarGraph,
    core_maximal: set[Clique],
) -> tuple[list[Clique], list[tuple[Clique, Clique]], list[tuple[Clique, Clique]]]:
    """Phase 1 of Algorithm 2: the in-memory work items.

    Returns ``(m1, m2_items, m3_items)`` without touching the disk: ``M1``
    is final already (Lemma 4); the item lists pair each kernel with its
    ``HNB`` set for the disk-backed phases (Lemmas 5-6).
    """
    m1: list[Clique] = []
    m2_items: list[tuple[Clique, Clique]] = []
    for kernel in sorted(core_maximal, key=sorted):
        shared = star.common_periphery(kernel)
        if not shared:
            m1.append(kernel)
        else:
            m2_items.append((kernel, shared))
    m3_items = list(enumerate_x_candidates(star))
    return m1, m2_items, m3_items


def ordered_distinct_hnb(
    items: Iterable[tuple[Clique, Clique]],
    periphery_adjacency: PeripheryAdjacency,
) -> list[Clique]:
    """The distinct ``HNB`` sets of ``items`` in resolution order.

    Sets are grouped by covering partition so each spill file is loaded
    once per batch (the locality the paper gets from ordering h-neighbor
    leaves by DFS traversal, Section 4.2.3); adjacency providers without
    partitions fall back to a plain lexicographic order.  The order is a
    pure function of the work items — never of worker count — which is
    what keeps parallel runs byte-identical to serial ones.
    """
    distinct = {shared for _, shared in items}
    partition_key = getattr(periphery_adjacency, "partitions_for", None)
    if partition_key is not None:
        return sorted(distinct, key=lambda s: (sorted(partition_key(s)), sorted(s)))
    return sorted(distinct, key=sorted)


def resolve_hnb_cliques(
    ordered: list[Clique],
    periphery_adjacency: PeripheryAdjacency,
    kernel: str = "set",
) -> dict[Clique, list[Clique]]:
    """Phase 2 of Algorithm 2, serial strategy: ``maxCL(G[HNB])`` per set.

    ``kernel`` selects the enumeration hot path (see :mod:`repro.kernel`);
    the per-set clique lists are identical either way.
    """
    max_cliques_of: dict[Clique, list[Clique]] = {}
    for shared in ordered:
        induced = periphery_adjacency.induced_subgraph(shared)
        max_cliques_of[shared] = list(tomita_maximal_cliques(induced, kernel=kernel))
    return max_cliques_of


class _PeripheryMaskIndex:
    """Bitmask view of periphery adjacency for the M3 maximality test.

    Periphery vertices get bit positions on first sight; each blocker's
    periphery neighborhood is masked once and cached, turning Eq. (11)'s
    ``C2 ⊆ nb(u)`` checks from per-element hash probes into one ``&``.
    """

    def __init__(self, star: StarGraph) -> None:
        self._star = star
        self._bit_of: dict[int, int] = {}
        self._neighbor_masks: dict[int, int] = {}

    def mask_of(self, vertices: Iterable[int]) -> int:
        bit_of = self._bit_of
        mask = 0
        for vertex in vertices:
            bit = bit_of.get(vertex)
            if bit is None:
                bit = 1 << len(bit_of)
                bit_of[vertex] = bit
            mask |= bit
        return mask

    def blocker_mask(self, u: int) -> int:
        mask = self._neighbor_masks.get(u)
        if mask is None:
            mask = self.mask_of(self._star.periphery_neighbors(u))
            self._neighbor_masks[u] = mask
        return mask


def assemble_categories(
    star: StarGraph,
    m1: list[Clique],
    m2_items: list[tuple[Clique, Clique]],
    m3_items: list[tuple[Clique, Clique]],
    max_cliques_of: dict[Clique, list[Clique]],
    kernel: str = "set",
) -> CategorizedCliques:
    """Phase 3 of Algorithm 2: combine kernels with their extensions.

    With ``kernel="bitset"`` the M3 maximality test runs on cached
    periphery bitmasks (one subset comparison per blocker) instead of
    per-element ``frozenset`` containment; the selected cliques are
    identical.
    """
    from repro.kernel import validate_kernel

    masks = (
        _PeripheryMaskIndex(star) if validate_kernel(kernel) == "bitset" else None
    )
    result = CategorizedCliques(m1=list(m1))
    for core_clique, shared in m2_items:
        for extension in max_cliques_of[shared]:
            result.m2.append(core_clique | extension)
    for core_clique, shared in m3_items:
        blockers = star.common_core_neighbors(core_clique)
        for extension in max_cliques_of[shared]:
            if masks is not None:
                extension_mask = masks.mask_of(extension)
                if any(
                    extension_mask & masks.blocker_mask(u) == extension_mask
                    for u in blockers
                ):
                    continue
            elif _extendable_by_core(star, blockers, extension):
                continue
            result.m3.append(core_clique | extension)
    return result


def compute_core_plus_max_cliques(
    star: StarGraph,
    core_maximal: set[Clique],
    periphery_adjacency: PeripheryAdjacency,
    resolver: HnbResolver | None = None,
    kernel: str = "set",
) -> CategorizedCliques:
    """Compute ``M_H+ = M1 ∪ M2 ∪ M3`` (Algorithm 2).

    Parameters
    ----------
    star:
        The current step's star graph (``G_H*`` or ``G_L*``).
    core_maximal:
        ``M_H``: the maximal cliques of the core graph, as returned by
        :func:`~repro.core.clique_tree.build_clique_tree`.
    periphery_adjacency:
        Access to edges among periphery vertices (on disk in the real
        algorithm; the star graph does not store them).
    resolver:
        Optional phase-2 strategy override (see :data:`HnbResolver`);
        defaults to the serial :func:`resolve_hnb_cliques`.
    kernel:
        Enumeration kernel for phase 2 and the M3 maximality tests
        (``"set"`` or ``"bitset"``); the output is identical either way.
        A custom ``resolver`` is responsible for its own kernel choice.
    """
    m1, m2_items, m3_items = collect_lift_items(star, core_maximal)
    ordered = ordered_distinct_hnb(m2_items + m3_items, periphery_adjacency)
    if resolver is not None:
        max_cliques_of = resolver(ordered, periphery_adjacency)
    else:
        max_cliques_of = resolve_hnb_cliques(ordered, periphery_adjacency, kernel=kernel)
    return assemble_categories(
        star, m1, m2_items, m3_items, max_cliques_of, kernel=kernel
    )


def enumerate_x_candidates(star: StarGraph) -> Iterator[tuple[Clique, Clique]]:
    """Enumerate the set ``X`` of Eq. (10) as ``(C1, HNB(C1))`` pairs.

    ``X`` holds the non-maximal core cliques with common periphery
    neighbors that are not subsumed by a one-vertex extension with the
    same ``HNB`` (see the module docstring for why one vertex suffices).
    Cliques are generated by ordered set enumeration, pruning branches
    whose periphery intersection is already empty, so each candidate is
    visited exactly once.
    """
    for start in sorted(star.core):
        shared = star.periphery_neighbors(start)
        if not shared:
            continue
        extenders = frozenset(u for u in star.core_neighbors(start) if u > start)
        yield from _grow_x(star, frozenset((start,)), shared, extenders)


def _grow_x(
    star: StarGraph,
    kernel: Clique,
    shared: Clique,
    extenders: frozenset[int],
) -> Iterator[tuple[Clique, Clique]]:
    blockers = star.common_core_neighbors(kernel)
    if blockers and all(
        shared & star.periphery_neighbors(u) != shared for u in blockers
    ):
        yield kernel, shared
    for vertex in sorted(extenders):
        next_shared = shared & star.periphery_neighbors(vertex)
        if not next_shared:
            continue
        next_extenders = frozenset(
            u for u in extenders if u > vertex and u in star.core_neighbors(vertex)
        )
        yield from _grow_x(star, kernel | {vertex}, next_shared, next_extenders)


def _extendable_by_core(
    star: StarGraph,
    blockers: Iterable[int],
    extension: Clique,
) -> bool:
    """Whether some core vertex is adjacent to all of ``C1 ∪ C2``.

    ``blockers`` are the core vertices already known to be adjacent to all
    of ``C1``; the candidate is non-maximal exactly when one of them also
    covers the periphery extension ``C2``.
    """
    return any(extension <= star.periphery_neighbors(u) for u in blockers)
