"""The H*-graph and its relatives (paper Section 3).

A :class:`StarGraph` is the in-memory object ExtMCE keeps per recursion
step: a *core* vertex set (the h-vertices ``H`` in step 1, the random set
``L`` afterwards) together with the full neighbor list of every core
vertex.  Those lists encode exactly the edges of the paper's star graph
``G_H* = (H+, E_HH ∪ E_HHnb)`` — every edge incident to at least one core
vertex — while the edges *among* periphery vertices stay on disk
(Definition 6; they are fetched later through
:class:`~repro.storage.partitions.HnbPartitionStore`).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph
from repro.core.hindex import HVertexResult, compute_h_vertices_of_disk, compute_h_vertices_of_graph

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.diskgraph import DiskGraph
    from repro.storage.memory import MemoryModel


@dataclass(frozen=True)
class StarGraph:
    """Core vertices plus their complete neighbor lists.

    Attributes
    ----------
    core:
        The paper's ``H`` (or ``L`` in recursive steps).
    neighbor_lists:
        ``nb(v)`` in the (residual) graph for every ``v`` in the core —
        the paper's ``NB_H``, the output of Algorithm 1.
    h:
        The h-index when the core is an h-vertex set; for L*-graphs this
        is simply ``|core|``.
    """

    core: frozenset[int]
    neighbor_lists: Mapping[int, frozenset[int]]
    h: int = field(default=-1)
    original_degrees: Mapping[int, int] | None = field(default=None)

    def __post_init__(self) -> None:
        if set(self.neighbor_lists) != set(self.core):
            raise GraphError("neighbor_lists must cover exactly the core vertices")
        if self.h < 0:
            object.__setattr__(self, "h", len(self.core))

    def original_degree(self, vertex: int) -> int:
        """Degree of a core vertex in the *original* graph ``G``.

        Falls back to the current neighbor-list length, which is exact in
        the first recursion step (nothing has been removed yet).  The
        singleton rule of Section 4.3 — ``{v}`` is maximal only when
        ``d(v) = 0`` in ``G`` — depends on this.
        """
        if self.original_degrees is not None and vertex in self.original_degrees:
            return self.original_degrees[vertex]
        return len(self.neighbor_lists[vertex])

    # ------------------------------------------------------------------
    # Derived vertex sets (Definitions 2-3)
    # ------------------------------------------------------------------
    @property
    def periphery(self) -> frozenset[int]:
        """``Hnb``: neighbors of core vertices that are not core (Def. 2)."""
        members: set[int] = set()
        for neighbors in self.neighbor_lists.values():
            members.update(neighbors)
        return frozenset(members - self.core)

    @property
    def extended(self) -> frozenset[int]:
        """``H+ = H ∪ Hnb`` (Definition 3)."""
        return self.core | self.periphery

    # ------------------------------------------------------------------
    # Derived graphs (Definitions 4-6)
    # ------------------------------------------------------------------
    def core_graph(self) -> AdjacencyGraph:
        """``G_H``: the subgraph induced by the core (Definition 4)."""
        graph = AdjacencyGraph()
        for v in self.core:
            graph.add_vertex(v)
        for v in self.core:
            for u in self.neighbor_lists[v] & self.core:
                graph.add_edge(v, u)
        return graph

    def star_graph(self) -> AdjacencyGraph:
        """``G_H*``: core, periphery, and all edges incident to the core
        (Definition 6).  Periphery-periphery edges are deliberately absent.
        """
        graph = AdjacencyGraph()
        for v in self.core:
            graph.add_vertex(v)
            for u in self.neighbor_lists[v]:
                graph.add_edge(v, u)
        return graph

    def core_compact(self):
        """``G_H`` as a :class:`~repro.kernel.compact.CompactGraph`.

        The bitset construction/enumeration paths build this once per
        step and then carve per-anchor subproblems out of it with subset
        masks, instead of materialising an induced ``AdjacencyGraph`` per
        periphery vertex.  Its CSR arrays are also the parallel engine's
        worker payload (:func:`repro.parallel.partition.serialize_star`).
        """
        from repro.kernel import CompactGraph

        return CompactGraph.from_neighbor_lists(
            {v: self.neighbor_lists[v] & self.core for v in self.core}
        )

    def core_neighbors(self, vertex: int) -> frozenset[int]:
        """``nb(v) ∩ H`` for a core vertex."""
        return self.neighbor_lists[vertex] & self.core

    def periphery_neighbors(self, vertex: int) -> frozenset[int]:
        """``nb(v) \\ H`` for a core vertex: its h-neighbors."""
        return self.neighbor_lists[vertex] - self.core

    def common_periphery(self, core_subset: Iterable[int]) -> frozenset[int]:
        """``HNB(X)``: periphery vertices adjacent to *every* member of
        ``core_subset`` (paper Table 1).  Empty input yields the whole
        periphery, matching the universal-intersection convention.
        """
        members = list(core_subset)
        if not members:
            return self.periphery
        common = set(self.periphery_neighbors(members[0]))
        for v in members[1:]:
            common &= self.periphery_neighbors(v)
            if not common:
                break
        return frozenset(common)

    def common_core_neighbors(self, core_subset: Iterable[int]) -> frozenset[int]:
        """Core vertices adjacent to every member of ``core_subset``
        (excluding the subset itself); empty means the subset is maximal
        in ``G_H``.
        """
        members = list(core_subset)
        if not members:
            return self.core
        common = set(self.core_neighbors(members[0]))
        for v in members[1:]:
            common &= self.core_neighbors(v)
            if not common:
                break
        return frozenset(common - set(members))

    def adjacent_in_star(self, a: int, b: int) -> bool:
        """Whether ``(a, b)`` is an edge of ``G_H*``.

        Periphery-periphery pairs are never adjacent here even if the edge
        exists in ``G`` — that edge belongs to ``G_Hnb`` and lives on disk.
        """
        if a in self.core:
            return b in self.neighbor_lists[a]
        if b in self.core:
            return a in self.neighbor_lists[b]
        return False

    # ------------------------------------------------------------------
    # Sizes (Section 3.2)
    # ------------------------------------------------------------------
    @property
    def size_edges(self) -> int:
        """``|G_H*|``: number of edges incident to at least one core vertex."""
        directed = sum(len(nbrs) for nbrs in self.neighbor_lists.values())
        internal = self.core_edge_count
        return directed - internal

    @property
    def core_edge_count(self) -> int:
        """``|G_H|``: number of core-core edges."""
        return (
            sum(len(self.neighbor_lists[v] & self.core) for v in self.core) // 2
        )

    @property
    def memory_units(self) -> int:
        """Accounting units to keep this structure resident: one per core
        vertex plus one per stored neighbor id (``O(|G_H*|)``)."""
        return sum(1 + len(nbrs) for nbrs in self.neighbor_lists.values())

    def restricted_to(self, kept_core: Iterable[int]) -> "StarGraph":
        """A smaller star graph on a core subset (the Section 4.1.3 shrink).

        Dropped core vertices leave the core entirely; if they remain
        adjacent to kept core vertices they become periphery, exactly as
        when the paper removes the lowest-degree vertices from ``H``.
        """
        kept = frozenset(kept_core)
        if not kept <= self.core:
            raise GraphError("can only restrict to a subset of the current core")
        original = None
        if self.original_degrees is not None:
            original = {v: self.original_degrees[v] for v in kept if v in self.original_degrees}
        return StarGraph(
            core=kept,
            neighbor_lists={v: self.neighbor_lists[v] for v in kept},
            h=len(kept),
            original_degrees=original,
        )


def extract_hstar_graph(
    source: "AdjacencyGraph | DiskGraph",
    memory: "MemoryModel | None" = None,
) -> StarGraph:
    """Compute the H*-graph of a graph (Algorithm 1 + Definition 6).

    Accepts an in-memory graph or a disk graph; the latter is read with a
    single metered sequential scan.
    """
    if isinstance(source, AdjacencyGraph):
        result = compute_h_vertices_of_graph(source, memory=memory)
    else:
        result = compute_h_vertices_of_disk(source, memory=memory)
    return star_graph_from_result(result)


def star_graph_from_result(result: HVertexResult) -> StarGraph:
    """Wrap Algorithm 1's output as a :class:`StarGraph`."""
    return StarGraph(
        core=result.h_vertices,
        neighbor_lists=dict(result.neighbor_lists),
        h=result.h,
    )
