"""L*-graph extraction for the recursive steps (paper Definition 10).

After the first step removes ``G_H*``, every residual vertex has degree at
most ``h``, so re-running Algorithm 1 would yield a uselessly tiny core
(``|G'_H*| <= h**2``, Section 4.3).  Instead the paper picks a *random*
vertex set ``L`` whose degree sum approximates ``|G_H*|`` and builds
``G_L*`` the same way ``G_H*`` is built from ``H``.

The selection here happens during one sequential scan of the residual
disk graph: each record is admitted with probability
``target / (2 * m')`` (so the expected admitted degree mass matches the
target), stopping early once the target is reached.  The RNG is seeded,
keeping runs reproducible.  When the entire residual graph fits the
target, every vertex is taken — this is how the recursion terminates and
how zero-degree leftovers get their singleton check (Section 4.3).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.errors import GraphError
from repro.core.hstar import StarGraph

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.diskgraph import DiskGraph


def extract_lstar_graph(
    residual: "DiskGraph",
    target_size_edges: int,
    seed: int = 0,
) -> StarGraph:
    """Select ``L`` and materialise ``G_L*`` from the residual graph.

    Parameters
    ----------
    residual:
        The on-disk residual graph ``G'``.
    target_size_edges:
        The size bound ``b`` of Algorithm 3 — ``|G_H*|`` from step one.
        The selected core's degree sum stays within the bound except that
        at least one vertex is always selected so progress is guaranteed.
    seed:
        Per-step RNG seed (the driver varies it by recursion depth).

    The caller (the ExtMCE driver) is responsible for charging the
    returned star graph's :attr:`~repro.core.hstar.StarGraph.memory_units`
    to its memory model for the duration of the step.
    """
    if target_size_edges < 0:
        raise GraphError(f"target size must be non-negative, got {target_size_edges}")

    total_degree_mass = 2 * residual.num_edges
    take_everything = total_degree_mass <= target_size_edges
    probability = 1.0 if take_everything else max(
        target_size_edges / total_degree_mass, 1e-9
    )
    rng = random.Random(seed)

    neighbor_lists: dict[int, frozenset[int]] = {}
    original_degrees: dict[int, int] = {}
    degree_mass = 0
    for record in residual.scan():
        if not take_everything:
            if degree_mass + record.degree > target_size_edges and neighbor_lists:
                # The bound b would be breached; the paper keeps |G_i|
                # within |G_H*|, so skip and let a later step take it.
                continue
            if rng.random() >= probability:
                continue
        neighbor_lists[record.vertex] = frozenset(record.neighbors)
        original_degrees[record.vertex] = record.original_degree
        degree_mass += record.degree
        if not take_everything and degree_mass >= target_size_edges:
            break

    if not neighbor_lists:
        # Random selection admitted nothing (tiny residual / unlucky draw):
        # fall back to the first record so the recursion always advances.
        for record in residual.scan():
            neighbor_lists[record.vertex] = frozenset(record.neighbors)
            original_degrees[record.vertex] = record.original_degree
            break
    if not neighbor_lists:
        raise GraphError("cannot extract an L*-graph from an empty residual graph")

    return StarGraph(
        core=frozenset(neighbor_lists),
        neighbor_lists=neighbor_lists,
        original_degrees=original_degrees,
    )
