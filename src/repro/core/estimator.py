"""Knuth-style estimation of ``|T_H*|`` before the tree exists
(paper Section 4.1.3).

Knuth's method estimates the size of a backtracking tree by probing random
root-to-leaf paths: along a path with branching factors ``f1, f2, ...`` the
quantity ``n(p) = 1 + f1 + f1*f2 + ...`` is an unbiased estimator of the
node count.  The paper's twist is probing *without* the tree: a path is
grown virtually from a random h-vertex, at each step picking uniformly
among the vertices that could extend the current path in the ``≺`` order —
all of which is answerable from ``NB_H`` alone.

When the estimate exceeds the available memory ``N``, the paper removes
the ``(1 - N / n(T_H*)) * h`` lowest-degree vertices from ``H`` and
re-estimates; :func:`shrink_core_to_budget` implements that loop.
"""

from __future__ import annotations

import math
import random

from repro.errors import EstimationError, MemoryBudgetExceeded
from repro.core.hstar import StarGraph


def estimate_tree_size(
    star: StarGraph,
    num_probes: int = 64,
    seed: int = 0,
) -> float:
    """Estimate the node count of ``T_H*`` (including the root λ).

    Parameters
    ----------
    star:
        The star graph whose clique tree is being sized.
    num_probes:
        Number of random paths; more probes cut the estimator's variance
        (Table 5 reports ratios of 0.93-1.01 against the real size).
    seed:
        Seed for the probe RNG; estimates are deterministic per seed.
    """
    if num_probes <= 0:
        raise EstimationError(f"need a positive probe count, got {num_probes}")
    core_list = sorted(star.core)
    if not core_list:
        return 1.0
    rng = random.Random(seed)
    total = 0.0
    for _ in range(num_probes):
        total += _probe_once(star, rng, core_list)
    return total / num_probes


def _probe_once(star: StarGraph, rng: random.Random, core_list: list[int]) -> float:
    """Grow one virtual root-to-leaf path and return its ``n(p)``."""
    estimate = 1.0  # the root λ
    multiplier = float(len(core_list))  # children of λ are the h-vertices
    estimate += multiplier
    vertex = core_list[rng.randrange(len(core_list))]
    candidates = _initial_candidates(star, vertex)
    while candidates:
        multiplier *= len(candidates)
        estimate += multiplier
        vertex = candidates[rng.randrange(len(candidates))]
        candidates = [
            w
            for w in candidates
            if _rank(star, w) > _rank(star, vertex) and star.adjacent_in_star(vertex, w)
        ]
    return estimate


def _initial_candidates(star: StarGraph, vertex: int) -> list[int]:
    """Vertices that can extend the path ``⟨λ, vertex⟩`` in ``≺`` order."""
    rank = _rank(star, vertex)
    return sorted(
        (w for w in star.neighbor_lists[vertex] if _rank(star, w) > rank),
        key=lambda w: _rank(star, w),
    )


def _rank(star: StarGraph, vertex: int) -> tuple[int, int]:
    return (0 if vertex in star.core else 1, vertex)


def count_backtrack_tree_nodes(star: StarGraph, max_nodes: int | None = None) -> int:
    """Exact node count of the ≺-ordered backtracking tree over ``G_H*``.

    This is the tree Knuth's method estimates: the root λ, one child per
    h-vertex, and below each node one child per higher-ranked ``G_H*``
    neighbor of the whole path — i.e., one node per clique of ``G_H*``
    (plus λ).  The paper's ``T_H*`` is "essentially" this tree
    (Section 4.1.2); the prefix tree the library stores keeps only the
    paths of *maximal* cliques, so this count upper-bounds
    :attr:`~repro.core.clique_tree.CliqueTree.num_nodes`.

    ``max_nodes`` aborts the (potentially exponential) count early and
    raises :class:`~repro.errors.EstimationError`; use it when calling on
    untrusted inputs.
    """
    count = 1  # λ
    # Iterative DFS.  candidate_sets[i] holds the candidates the node at
    # depth i was drawn from (all adjacent to the whole path above it);
    # frames[i] holds its not-yet-visited members.  The root's candidate
    # universe is every vertex of G_H*, but only core vertices are
    # children of λ (Lemma 2, statement 2) — matching the probe.
    candidate_sets: list[list[int]] = [
        sorted(star.core) + sorted(star.periphery)
    ]
    frames: list[list[int]] = [list(reversed(sorted(star.core)))]
    depth = 0
    while frames:
        frame = frames[-1]
        if not frame:
            frames.pop()
            candidate_sets.pop()
            depth -= 1
            continue
        vertex = frame.pop()
        count += 1
        if max_nodes is not None and count > max_nodes:
            raise EstimationError(
                f"backtracking tree exceeds {max_nodes} nodes; aborting count"
            )
        rank = _rank(star, vertex)
        next_candidates = [
            w
            for w in candidate_sets[-1]
            if _rank(star, w) > rank and star.adjacent_in_star(vertex, w)
        ]
        candidate_sets.append(next_candidates)
        frames.append(list(reversed(next_candidates)))
        depth += 1
    return count


def shrink_core_to_budget(
    star: StarGraph,
    available_units: int,
    num_probes: int = 64,
    seed: int = 0,
) -> tuple[StarGraph, float]:
    """Shrink the core until ``|G_H*| + n(T_H*)`` fits ``available_units``.

    Follows the paper's rule: remove approximately
    ``(1 - N / needed) * h`` lowest-degree core vertices per round, then
    re-estimate.  Returns the (possibly unchanged) star graph and the final
    tree-size estimate.

    Raises
    ------
    MemoryBudgetExceeded
        If even a single-vertex core cannot fit the budget.
    """
    current = star
    while True:
        estimate = estimate_tree_size(current, num_probes=num_probes, seed=seed)
        needed = current.memory_units + int(math.ceil(estimate))
        if needed <= available_units:
            return current, estimate
        if len(current.core) <= 1:
            raise MemoryBudgetExceeded(needed, 0, available_units)
        shrink_count = max(
            1,
            int(math.ceil((1.0 - available_units / needed) * len(current.core))),
        )
        shrink_count = min(shrink_count, len(current.core) - 1)
        by_degree = sorted(
            current.core,
            key=lambda v: (len(current.neighbor_lists[v]), v),
        )
        kept = frozenset(by_degree[shrink_count:])
        current = current.restricted_to(kept)
