"""Checkpoint/restart for ExtMCE runs.

An external-memory enumeration over a truly massive graph runs for hours;
Algorithm 3's structure makes it naturally resumable because all state
that crosses a recursion step is tiny and explicit: the residual graph
(already a file), the maximality hashtable, the step counter, the size
bound ``b``, and the RNG seed.  After each completed step the driver can
persist exactly that to ``checkpoint.json`` in the workdir; a crashed or
interrupted run resumes from the last completed step.

Semantics: the interrupted step re-runs from its beginning, so cliques it
already emitted are emitted again.  The checkpoint records
``cliques_emitted`` (the count through the last completed step) so a
file-backed consumer can truncate before resuming; counting consumers can
simply restart from that number.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import StorageError

CHECKPOINT_FILENAME = "checkpoint.json"

#: Format version; bump on layout changes so stale files fail loudly.
_VERSION = 1


@dataclass
class CheckpointState:
    """Everything needed to continue Algorithm 3 after a completed step."""

    completed_step: int
    residual_path: str
    target_size: int
    cliques_emitted: int
    estimated_recursions: float
    seed: int
    hashtable: list[list[int]] = field(default_factory=list)

    def to_json(self) -> dict:
        """Plain-JSON representation."""
        return {
            "version": _VERSION,
            "completed_step": self.completed_step,
            "residual_path": self.residual_path,
            "target_size": self.target_size,
            "cliques_emitted": self.cliques_emitted,
            "estimated_recursions": self.estimated_recursions,
            "seed": self.seed,
            "hashtable": self.hashtable,
        }

    @classmethod
    def from_json(cls, data: dict) -> "CheckpointState":
        """Parse and validate a checkpoint document."""
        if data.get("version") != _VERSION:
            raise StorageError(
                f"unsupported checkpoint version {data.get('version')!r} "
                f"(expected {_VERSION})"
            )
        try:
            return cls(
                completed_step=int(data["completed_step"]),
                residual_path=str(data["residual_path"]),
                target_size=int(data["target_size"]),
                cliques_emitted=int(data["cliques_emitted"]),
                estimated_recursions=float(data["estimated_recursions"]),
                seed=int(data["seed"]),
                hashtable=[[int(v) for v in entry] for entry in data["hashtable"]],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(f"malformed checkpoint document: {exc}") from exc


def write_checkpoint(workdir: str | Path, state: CheckpointState) -> Path:
    """Atomically persist a checkpoint into ``workdir``."""
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    target = workdir / CHECKPOINT_FILENAME
    scratch = workdir / (CHECKPOINT_FILENAME + ".tmp")
    scratch.write_text(json.dumps(state.to_json(), indent=2))
    os.replace(scratch, target)
    return target


def read_checkpoint(workdir: str | Path) -> CheckpointState:
    """Load the checkpoint from ``workdir``.

    Raises :class:`~repro.errors.StorageError` when absent or malformed.
    """
    path = Path(workdir) / CHECKPOINT_FILENAME
    if not path.exists():
        raise StorageError(f"no checkpoint found at {path}")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise StorageError(f"corrupt checkpoint at {path}: {exc}") from exc
    state = CheckpointState.from_json(data)
    if not Path(state.residual_path).exists():
        raise StorageError(
            f"checkpoint references missing residual graph {state.residual_path}"
        )
    return state


def clear_checkpoint(workdir: str | Path) -> None:
    """Remove the checkpoint file (called when a run completes)."""
    path = Path(workdir) / CHECKPOINT_FILENAME
    if path.exists():
        path.unlink()
