"""Checkpoint/restart for ExtMCE runs.

An external-memory enumeration over a truly massive graph runs for hours;
Algorithm 3's structure makes it naturally resumable because all state
that crosses a recursion step is tiny and explicit: the residual graph
(already a file), the maximality hashtable, the step counter, the size
bound ``b``, and the RNG seed.  After each completed step the driver can
persist exactly that to ``checkpoint.json`` in the workdir; a crashed or
interrupted run resumes from the last completed step.

Semantics: the interrupted step re-runs from its beginning, so cliques it
already emitted are emitted again.  The checkpoint records
``cliques_emitted`` (the count through the last completed step) so a
file-backed consumer can truncate before resuming; counting consumers can
simply restart from that number.

Durability: the checkpoint is what a crashed run resumes from, so it gets
the strongest guarantees in the library — the scratch file is fsynced
before the atomic rename, the directory is fsynced after it, and the
document carries a CRC32 so a damaged file is rejected as
:class:`~repro.errors.CorruptDataError` rather than silently resuming
from garbage.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import CorruptDataError, StorageError

CHECKPOINT_FILENAME = "checkpoint.json"

#: Format version; bump on layout changes so stale files fail loudly.
#: Version 2 adds the document CRC32; version-1 files (written before
#: checksumming existed) are still accepted, without verification.
_VERSION = 2
_ACCEPTED_VERSIONS = (1, 2)


def _document_crc(payload: dict) -> int:
    """CRC32 over the canonical serialisation of the state document.

    ``sort_keys`` plus JSON's shortest-round-trip float repr make the
    serialisation deterministic, so writer and reader always agree.
    """
    return zlib.crc32(json.dumps(payload, sort_keys=True).encode("utf-8"))


@dataclass
class CheckpointState:
    """Everything needed to continue Algorithm 3 after a completed step."""

    completed_step: int
    residual_path: str
    target_size: int
    cliques_emitted: int
    estimated_recursions: float
    seed: int
    hashtable: list[list[int]] = field(default_factory=list)

    def to_json(self) -> dict:
        """Plain-JSON representation."""
        return {
            "version": _VERSION,
            "completed_step": self.completed_step,
            "residual_path": self.residual_path,
            "target_size": self.target_size,
            "cliques_emitted": self.cliques_emitted,
            "estimated_recursions": self.estimated_recursions,
            "seed": self.seed,
            "hashtable": self.hashtable,
        }

    @classmethod
    def from_json(cls, data: dict) -> "CheckpointState":
        """Parse and validate a checkpoint document."""
        if data.get("version") not in _ACCEPTED_VERSIONS:
            raise StorageError(
                f"unsupported checkpoint version {data.get('version')!r} "
                f"(expected one of {_ACCEPTED_VERSIONS})"
            )
        try:
            return cls(
                completed_step=int(data["completed_step"]),
                residual_path=str(data["residual_path"]),
                target_size=int(data["target_size"]),
                cliques_emitted=int(data["cliques_emitted"]),
                estimated_recursions=float(data["estimated_recursions"]),
                seed=int(data["seed"]),
                hashtable=[[int(v) for v in entry] for entry in data["hashtable"]],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(f"malformed checkpoint document: {exc}") from exc


def write_checkpoint(workdir: str | Path, state: CheckpointState) -> Path:
    """Durably and atomically persist a checkpoint into ``workdir``.

    Write order: scratch file → ``fsync(scratch)`` → ``os.replace`` →
    ``fsync(directory)``.  Without the first fsync the rename can land
    before the data, leaving a valid-looking empty/partial checkpoint
    after a power loss; without the second, the rename itself may not
    survive.  The CRC32 covers the state document, so even a torn write
    that slips through is detected at read time.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    target = workdir / CHECKPOINT_FILENAME
    scratch = workdir / (CHECKPOINT_FILENAME + ".tmp")
    payload = state.to_json()
    document = {**payload, "crc32": _document_crc(payload)}
    try:
        with open(scratch, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(document, indent=2))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, target)
        directory_fd = os.open(workdir, os.O_RDONLY)
        try:
            os.fsync(directory_fd)
        finally:
            os.close(directory_fd)
    except OSError as exc:
        raise StorageError(f"failed to persist checkpoint at {target}: {exc}") from exc
    return target


def read_checkpoint(workdir: str | Path) -> CheckpointState:
    """Load the checkpoint from ``workdir``.

    Raises :class:`~repro.errors.StorageError` when absent or malformed,
    and :class:`~repro.errors.CorruptDataError` when the document's CRC32
    does not match its contents.
    """
    path = Path(workdir) / CHECKPOINT_FILENAME
    if not path.exists():
        raise StorageError(f"no checkpoint found at {path}")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise StorageError(f"corrupt checkpoint at {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise StorageError(f"corrupt checkpoint at {path}: not a JSON object")
    stored_crc = data.pop("crc32", None)
    if data.get("version") == 2:
        if stored_crc is None:
            raise CorruptDataError(f"checkpoint at {path} is missing its crc32 field")
        computed = _document_crc(data)
        if stored_crc != computed:
            raise CorruptDataError(
                f"checkpoint checksum mismatch at {path}: "
                f"stored {stored_crc:#010x}, computed {computed:#010x}"
            )
    state = CheckpointState.from_json(data)
    if not Path(state.residual_path).exists():
        raise StorageError(
            f"checkpoint references missing residual graph {state.residual_path}"
        )
    return state


def clear_checkpoint(workdir: str | Path) -> None:
    """Remove the checkpoint file and any stale scratch file.

    Called when a run completes; also the cleanup point for a scratch
    file left behind by a write interrupted before its atomic rename.
    """
    workdir = Path(workdir)
    for name in (CHECKPOINT_FILENAME, CHECKPOINT_FILENAME + ".tmp"):
        path = workdir / name
        if path.exists():
            path.unlink()
