"""Algorithm 3: the recursive external-memory MCE driver (Section 4).

The driver owns the full per-step pipeline::

    extract star graph  ->  estimate / shrink  ->  build T_H*  ->
    spill h-neighbor partitions  ->  Algorithm 2 (M1 ∪ M2 ∪ M3)  ->
    global-maximality filter via the hashtable  ->  emit  ->
    rewrite residual graph on disk  ->  recurse

Step 1 uses the H*-graph (Algorithm 1); every later step uses a random
L*-graph of at most the same size (Definition 10).  The hashtable keeps
the periphery parts ``C ∩ Hnb`` (``|·| > 1``) of emitted cliques so a
later step can recognise — and suppress — a locally-maximal clique that a
previous step already covered (Section 4.3).  Theorem 5's soundness and
completeness are exercised in the test suite by comparing against
in-memory enumeration on hundreds of graphs.

Memory accounting: the star graph, the clique tree, resident h-neighbor
partitions, and the hashtable are all charged to the
:class:`~repro.storage.memory.MemoryModel`, so the reported peak is the
paper's ``O(|G_H*| + |T_H*|)`` bound measured, not assumed.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path
from types import SimpleNamespace

from repro import metrics
from repro.core.categories import compute_core_plus_max_cliques
from repro.core.checkpoint import (
    CheckpointState,
    clear_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.core.clique_tree import build_clique_tree, build_clique_tree_from_cliques
from repro.core.estimator import estimate_tree_size, shrink_core_to_budget
from repro.errors import GraphError
from repro.faults import FaultPlan
from repro.core.hstar import StarGraph, extract_hstar_graph
from repro.core.lstar import extract_lstar_graph
from repro.storage.diskgraph import DiskGraph
from repro.storage.memory import MemoryModel
from repro.storage.partitions import HnbPartitionStore

Clique = frozenset

#: Driver-level totals.  ``emitted + suppressed - singletons`` always
#: equals ``m1 + m2 + m3`` (every category clique is either emitted or
#: suppressed; degenerate-step singletons bypass the categories), and
#: ``emitted`` equals the length of the clique stream — both invariants
#: are asserted by the differential test harness at every worker count.
_METRICS = metrics.bound(
    lambda registry: SimpleNamespace(
        steps=registry.counter(
            "repro_mce_steps_total", "completed recursion steps"
        ),
        emitted=registry.counter(
            "repro_mce_cliques_emitted_total", "globally maximal cliques emitted"
        ),
        suppressed=registry.counter(
            "repro_mce_cliques_suppressed_total",
            "locally maximal cliques suppressed by the hashtable filter",
        ),
        singletons=registry.counter(
            "repro_mce_singleton_cliques_total",
            "isolated-vertex cliques emitted by the degenerate step",
        ),
        categories={
            name: registry.counter(
                "repro_mce_category_cliques_total",
                "H+-max-cliques per Algorithm 2 category",
                labels={"category": name},
            )
            for name in ("m1", "m2", "m3")
        },
        hashtable=registry.gauge(
            "repro_mce_hashtable_entries", "live maximality-hashtable entries"
        ),
    )
)


@dataclass(frozen=True)
class ExtMCEConfig:
    """Tunable knobs of the ExtMCE driver.

    Attributes
    ----------
    memory_budget_units:
        Optional hard memory cap (accounting units).  When set, the
        Section 4.1.3 shrinking loop trims the h-vertex core until the
        estimated ``|G_H*| + |T_H*|`` fits.
    workdir:
        Directory for residual graphs and partition spill files; a
        temporary directory is created (and removed) when omitted.
    seed:
        Base RNG seed; the L-selection of step ``k`` uses ``seed + k``.
    estimator_probes:
        Path probes for the Knuth tree-size estimator.
    use_structure:
        Use the Lemma-2 structured enumeration when building the clique
        tree (the ablation bench flips this off).
    hashtable_cleanup:
        Apply the end-of-round hashtable purge of Section 4.3 (entries
        containing a consumed core vertex can never match again).
    partition_fraction:
        Fraction of ``|G_H*|`` used as the per-partition budget for the
        h-neighbor spill files — Section 4.2.3's available memory ``N``,
        which the paper sets to the space freed by discarding ``G_H*``
        after ``T_H*`` is built.
    checkpoint:
        Persist a resumable checkpoint into the workdir after every
        completed recursion step (see :mod:`repro.core.checkpoint`).
        Requires an explicit ``workdir``.
    trace_path:
        Append structured run telemetry to this JSON-lines file (see
        :mod:`repro.telemetry`).
    workers:
        Worker-process count for the parallel driver
        (:class:`repro.parallel.driver.ParallelExtMCE`).  The serial
        :class:`ExtMCE` ignores it; ``1`` means in-process execution even
        under the parallel driver.  Kept here (rather than on the driver)
        so checkpoints and :meth:`ExtMCE.resume` round-trip it.
    task_grain:
        Scheduling granularity of the parallel engine (``"coarse"`` or
        ``"fine"``, see :mod:`repro.parallel.scheduler`).  ``"fine"``
        (the default) cuts smaller task chunks and arms worker-side
        splitting — a worker holding a skewed subtree hands its
        unfinished tail back to the queue when the queue runs dry — so
        stragglers cannot serialize a step.  ``"coarse"`` reproduces the
        static oversubscribed chunking.  The clique stream is
        byte-identical across grains (asserted by the differential
        matrix); the serial driver ignores it.
    kernel:
        Enumeration kernel (``"set"`` or ``"bitset"``, see
        :mod:`repro.kernel`) used for tree construction and the M2/M3
        lifting.  The clique stream is byte-identical across kernels —
        asserted by the test suite — so the default is the fast bitset
        path; ``"set"`` remains for metered memory accounting and as the
        reference implementation.
    verify_checksums:
        Verify per-record CRC32s when reading checksummed (format v2)
        disk graphs; flipping this off trades integrity for a little
        decode speed.  Applies to the input graph and every residual
        derived from it.
    max_retries:
        Per-chunk resubmission budget of the parallel executor before a
        failing chunk degrades to inline recomputation (see
        :class:`repro.parallel.executor.StepExecutor`).
    reduction:
        Exact graph-reduction preprocessing (:mod:`repro.reduce`):
        ``"off"`` (default), ``"prune"`` (low-degree peeling against a
        greedy max-clique lower bound), or ``"full"`` (peeling plus
        true-twin folding).  The reduced graph is what H*/L* extraction,
        the kernels, and the parallel CSR payloads see; a reconstruction
        map re-emits the pruned-away cliques, so the final stream is the
        same set of maximal cliques at every level (asserted by the
        differential matrix).  Checkpointed runs persist the map in the
        workdir; :meth:`resume` reloads it.
    fault_plan:
        Deterministic fault-injection schedule for the parallel
        executor's ``"chunk"`` site (see :mod:`repro.faults`) and the
        reduction map's ``"reduce"`` site; storage faults are configured
        on the :class:`DiskGraph` itself.  ``None`` (production) injects
        nothing.
    metrics_path:
        Write a :mod:`repro.metrics` snapshot (JSON at this path, plus
        the Prometheus text exposition at ``<path>.prom``) when the run
        ends.  Setting this enables the process-wide metrics registry if
        it is not already enabled; worker-process metrics are merged in
        before the snapshot is written.
    """

    memory_budget_units: int | None = None
    workdir: str | Path | None = None
    seed: int = 0
    estimator_probes: int = 64
    use_structure: bool = True
    hashtable_cleanup: bool = True
    partition_fraction: float = 1.0
    checkpoint: bool = False
    trace_path: str | Path | None = None
    workers: int = 1
    task_grain: str = "fine"
    kernel: str = "bitset"
    reduction: str = "off"
    verify_checksums: bool = True
    max_retries: int = 2
    fault_plan: "FaultPlan | None" = None
    metrics_path: str | Path | None = None


@dataclass
class RecursionStats:
    """Measurements for one recursion step (feeds Tables 3 and 6)."""

    step: int
    core_size: int
    periphery_size: int
    star_edges: int
    tree_nodes: int
    tree_estimate: float
    cliques_emitted: int
    cliques_suppressed: int
    hashtable_entries: int
    elapsed_seconds: float
    residual_vertices: int
    residual_edges: int


@dataclass
class ExtMCEReport:
    """Run-level summary returned by :meth:`ExtMCE.run`."""

    steps: list[RecursionStats] = field(default_factory=list)
    total_cliques: int = 0
    peak_memory_units: int = 0
    pages_read: int = 0
    pages_written: int = 0
    sequential_scans: int = 0
    elapsed_seconds: float = 0.0
    estimated_recursions: float = 0.0

    @property
    def num_recursions(self) -> int:
        """Actual recursion count (Table 6, "# of recursions")."""
        return len(self.steps)

    @property
    def first_step_time_fraction(self) -> float:
        """Share of total time spent in step 1 (Table 6, last row)."""
        if not self.steps or self.elapsed_seconds == 0:
            return 0.0
        return self.steps[0].elapsed_seconds / self.elapsed_seconds


class ExtMCE:
    """External-memory maximal clique enumeration over a disk graph.

    Examples
    --------
    >>> import tempfile
    >>> from repro.graph import AdjacencyGraph
    >>> from repro.storage import DiskGraph
    >>> g = AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     dg = DiskGraph.create(f"{tmp}/g.bin", g)
    ...     algo = ExtMCE(dg, ExtMCEConfig(workdir=tmp))
    ...     sorted(sorted(c) for c in algo.enumerate_cliques())
    [[0, 1, 2], [2, 3]]
    """

    def __init__(
        self,
        disk_graph: DiskGraph,
        config: ExtMCEConfig | None = None,
        memory: MemoryModel | None = None,
        first_step: tuple[StarGraph, list[Clique]] | None = None,
    ) -> None:
        self._input = disk_graph
        self._config = config if config is not None else ExtMCEConfig()
        self._memory = memory if memory is not None else MemoryModel()
        self._first_step = first_step
        self._resume_state: CheckpointState | None = None
        self._reduced_input: DiskGraph | None = None
        if self._config.checkpoint and self._config.workdir is None:
            raise GraphError("checkpointing requires an explicit workdir")
        from repro.reduce import validate_reduction

        try:
            validate_reduction(self._config.reduction)
        except ValueError as exc:
            raise GraphError(str(exc)) from exc
        if not self._config.verify_checksums:
            # Propagates to every residual via DiskGraph.rewrite_without.
            disk_graph.verify_checksums = False
        self.report = ExtMCEReport()

    @classmethod
    def resume(
        cls,
        workdir: str | Path,
        config: ExtMCEConfig | None = None,
        memory: MemoryModel | None = None,
    ) -> "ExtMCE":
        """Continue an interrupted checkpointed run from its workdir.

        The returned instance's :meth:`enumerate_cliques` re-runs the
        step that was interrupted (its cliques are emitted again — see
        :mod:`repro.core.checkpoint` for the consumer contract) and then
        proceeds to completion.  The original input graph is not needed;
        the checkpointed residual graph carries everything.
        """
        state = read_checkpoint(workdir)
        if config is None:
            config = ExtMCEConfig(workdir=workdir, seed=state.seed, checkpoint=True)
        else:
            config = ExtMCEConfig(
                **{**config.__dict__, "workdir": workdir, "seed": state.seed,
                   "checkpoint": True}
            )
        residual = DiskGraph.open(
            state.residual_path, verify_checksums=config.verify_checksums
        )
        algo = cls(residual, config, memory=memory)
        algo._resume_state = state
        algo.report.estimated_recursions = state.estimated_recursions
        return algo

    @property
    def memory(self) -> MemoryModel:
        """The memory model charged during the run."""
        return self._memory

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, sink=None) -> ExtMCEReport:
        """Enumerate every maximal clique, optionally feeding a sink.

        ``sink`` is any object with an ``accept(clique)`` method (see
        :mod:`repro.core.result`).  Returns the run report.
        """
        for clique in self.enumerate_cliques():
            if sink is not None:
                sink.accept(clique)
        return self.report

    def enumerate_cliques(self) -> Iterator[Clique]:
        """Stream the maximal cliques of the input graph (Theorem 5)."""
        start = time.perf_counter()
        owns_workdir = self._config.workdir is None
        workdir = Path(
            tempfile.mkdtemp(prefix="extmce_")
            if owns_workdir
            else self._config.workdir
        )
        workdir.mkdir(parents=True, exist_ok=True)
        if self._config.metrics_path is not None:
            metrics.enable()
        if self._config.trace_path is not None:
            from repro.telemetry import TraceWriter

            # A resumed run continues the interrupted run's trace file;
            # a fresh run must not inherit a stale one (mode="truncate").
            self._trace = TraceWriter(
                self._config.trace_path,
                mode="append" if self._resume_state is not None else "truncate",
            )
            self._trace.emit(
                "run_started",
                vertices=self._input.num_vertices,
                edges=self._input.num_edges,
                resumed_from_step=(
                    self._resume_state.completed_step if self._resume_state else 0
                ),
            )
        else:
            self._trace = None
        try:
            yield from self._drive_maybe_reduced(workdir)
            if self._trace is not None:
                self._trace.emit(
                    "run_completed",
                    total_cliques=self.report.total_cliques,
                    steps=self.report.num_recursions,
                    peak_memory_units=self._memory.peak_units,
                )
        finally:
            self.report.elapsed_seconds = time.perf_counter() - start
            self.report.peak_memory_units = self._memory.peak_units
            io = self._input.io_stats
            self.report.pages_read = io.pages_read
            self.report.pages_written = io.pages_written
            self.report.sequential_scans = io.sequential_scans
            if self._reduced_input is not None:
                reduced_io = self._reduced_input.io_stats
                self.report.pages_read += reduced_io.pages_read
                self.report.pages_written += reduced_io.pages_written
                self.report.sequential_scans += reduced_io.sequential_scans
            if self._trace is not None:
                self._trace.close()
            if self._config.metrics_path is not None and metrics.enabled():
                metrics.write_exposition_files(
                    metrics.get_registry().snapshot(), self._config.metrics_path
                )
            if owns_workdir:
                shutil.rmtree(workdir, ignore_errors=True)

    # ------------------------------------------------------------------
    # Reduction preprocessing (repro.reduce)
    # ------------------------------------------------------------------
    def _drive_maybe_reduced(self, workdir: Path) -> Iterator[Clique]:
        """Dispatch to the plain recursion or wrap it in a reduction.

        A fresh reduced run peels/folds the input, persists the
        reconstruction map next to the checkpoint, drives the recursion
        over the *reduced* disk graph, and lifts the stream back through
        the map (direct emissions first, canonical order).  A resumed
        run recognises itself by the persisted map — its residual graph
        already lives in reduced vertex space and its direct emissions
        were delivered before the first checkpoint, so only the stream
        wrapper is reinstalled.
        """
        from repro.reduce import (
            REDUCTION_MAP_FILENAME,
            load_reduction_map,
            reduce_graph,
            save_reduction_map,
        )

        map_path = workdir / REDUCTION_MAP_FILENAME
        if self._resume_state is not None:
            if map_path.exists():
                rmap = load_reduction_map(map_path, fault_plan=self._config.fault_plan)
                yield from self._wrap_reduced(
                    rmap, self._drive(workdir), emit_direct=False
                )
            elif self._config.reduction != "off":
                raise GraphError(
                    "cannot resume with reduction enabled: no reduction map in "
                    f"{workdir} — the interrupted run was not reduced"
                )
            else:
                yield from self._drive(workdir)
            return
        if self._config.reduction == "off":
            yield from self._drive(workdir)
            return
        registry = metrics.get_registry()
        with registry.timer(
            "repro_reduce_phase_seconds", "reduction phase wall time",
            labels={"phase": "load"},
        ):
            adjacency = self._input.to_adjacency_graph()
        reduction = reduce_graph(adjacency, self._config.reduction)
        if self._config.checkpoint:
            save_reduction_map(
                reduction.map, map_path, fault_plan=self._config.fault_plan
            )
        with registry.timer(
            "repro_reduce_phase_seconds", "reduction phase wall time",
            labels={"phase": "rewrite"},
        ):
            self._reduced_input = DiskGraph.create(
                workdir / "reduced_input.bin",
                reduction.reduced,
                fault_plan=self._input.fault_plan,
                verify_checksums=self._config.verify_checksums,
            )
        if self._trace is not None:
            self._trace.emit(
                "reduction_applied",
                level=self._config.reduction,
                lower_bound=reduction.map.lower_bound,
                vertices_removed=reduction.map.vertices_removed,
                edges_removed=reduction.map.edges_removed,
                direct_cliques=len(reduction.map.direct),
            )
        yield from self._wrap_reduced(
            reduction.map,
            self._drive(workdir, source=self._reduced_input),
            emit_direct=True,
        )

    def _wrap_reduced(self, rmap, inner: Iterator[Clique], emit_direct: bool):
        """Reconstruction wrapper that keeps ``report.total_cliques`` exact.

        Direct emissions are counted in, stream suppressions counted
        out, *before* the recursion advances past them — so a checkpoint
        written after any step records the number of cliques actually
        delivered to the consumer, which is what resume truncation
        relies on.
        """

        def on_direct(_clique):
            self.report.total_cliques += 1

        def on_suppressed(_clique):
            self.report.total_cliques -= 1

        yield from rmap.reconstruct(
            inner,
            emit_direct=emit_direct,
            on_direct=on_direct,
            on_suppressed=on_suppressed,
        )

    # ------------------------------------------------------------------
    # The recursion
    # ------------------------------------------------------------------
    def _drive(self, workdir: Path, source: DiskGraph | None = None) -> Iterator[Clique]:
        origin = self._input if source is None else source
        current = origin
        hashtable: set[Clique] = set()
        target_size = 0
        step = 0
        if self._resume_state is not None:
            state = self._resume_state
            step = state.completed_step
            target_size = state.target_size
            for entry in state.hashtable:
                clique = frozenset(entry)
                hashtable.add(clique)
                self._memory.allocate(len(clique), label="maximality hashtable")
        while current.num_vertices > 0:
            step += 1
            step_start = time.perf_counter()
            if step == 1:
                if self._first_step is not None:
                    star = self._first_step[0]
                else:
                    star = extract_hstar_graph(current, memory=self._memory)
                if star.h == 0:
                    # Degenerate graph: every vertex is isolated.  Emit the
                    # singleton cliques directly and stop.
                    emitted = 0
                    for record in current.scan():
                        if record.original_degree == 0:
                            emitted += 1
                            yield frozenset((record.vertex,))
                    bundle = _METRICS()
                    bundle.singletons.inc(emitted)
                    bundle.emitted.inc(emitted)
                    self._finish_step(
                        step, star, 0, 0.0, emitted, 0, hashtable,
                        step_start, 0, 0,
                    )
                    break
                if self._config.memory_budget_units is not None:
                    # Reserve half the budget for what the star and tree do
                    # not cover: resident h-neighbor partitions, the
                    # maximality hashtable, and later steps' transients.
                    star, _ = shrink_core_to_budget(
                        star,
                        self._config.memory_budget_units // 2,
                        num_probes=self._config.estimator_probes,
                        seed=self._config.seed,
                    )
                target_size = max(star.size_edges, 1)
                if self.report.estimated_recursions == 0:
                    self.report.estimated_recursions = (
                        current.num_edges / max(star.size_edges, 1)
                    )
            else:
                step_target = target_size
                if self._config.memory_budget_units is not None:
                    # The hashtable grows across steps; size this step's
                    # L*-graph to the headroom it actually leaves (the
                    # tree and resident partitions scale with the star).
                    headroom = self._memory.available_units
                    if headroom is not None:
                        step_target = max(16, min(target_size, headroom // 4))
                star = extract_lstar_graph(
                    current, step_target, seed=self._config.seed + step
                )
            yield from self._process_step(step, star, current, workdir, hashtable, step_start)
            with metrics.get_registry().timer(
                "repro_mce_phase_seconds", "per-step phase wall time",
                labels={"phase": "residual_rewrite"},
            ):
                residual = current.rewrite_without(
                    star.core, workdir / f"residual_{step:04d}.bin"
                )
            if self._config.checkpoint:
                write_checkpoint(
                    workdir,
                    CheckpointState(
                        completed_step=step,
                        residual_path=str(residual.path),
                        target_size=target_size,
                        cliques_emitted=self.report.total_cliques,
                        estimated_recursions=self.report.estimated_recursions,
                        seed=self._config.seed,
                        hashtable=[sorted(entry) for entry in hashtable],
                    ),
                )
                if self._trace is not None:
                    self._trace.emit(
                        "checkpoint_written",
                        step=step,
                        cliques_emitted=self.report.total_cliques,
                    )
            if current is not origin:
                current.delete()
            current = residual
        if current is not origin:
            current.delete()
        if self._config.checkpoint:
            clear_checkpoint(workdir)

    def _process_step(
        self,
        step: int,
        star: StarGraph,
        current: DiskGraph,
        workdir: Path,
        hashtable: set[Clique],
        step_start: float,
    ) -> Iterator[Clique]:
        registry = metrics.get_registry()
        tree_estimate = estimate_tree_size(
            star, num_probes=self._config.estimator_probes, seed=self._config.seed
        )
        with self._memory.allocation(star.memory_units, label="star graph"):
            with registry.timer(
                "repro_mce_phase_seconds", "per-step phase wall time",
                labels={"phase": "tree_build"},
            ):
                tree, core_maximal = self._build_step_tree(step, star)
            partition_budget = max(
                int(star.size_edges * self._config.partition_fraction), 64
            )
            max_resident = 4
            headroom = self._memory.available_units
            if headroom is not None:
                # Resident partitions must fit what the budget leaves after
                # the star and tree; shrink the per-partition size (more,
                # smaller partitions) rather than overshooting.
                partition_budget = min(
                    partition_budget, max(headroom // (max_resident + 1), 16)
                )
            periphery_order = self._periphery_leaf_order(tree, star)
            with registry.timer(
                "repro_mce_phase_seconds", "per-step phase wall time",
                labels={"phase": "partition_build"},
            ):
                store = HnbPartitionStore.build(
                    current,
                    periphery_order,
                    workdir / f"partitions_{step:04d}",
                    partition_budget,
                    memory=self._memory,
                    max_resident=max_resident,
                )
            try:
                with registry.timer(
                    "repro_mce_phase_seconds", "per-step phase wall time",
                    labels={"phase": "lift"},
                ):
                    categories = self._compute_categories(star, core_maximal, store)
                bundle = _METRICS()
                bundle.categories["m1"].inc(len(categories.m1))
                bundle.categories["m2"].inc(len(categories.m2))
                bundle.categories["m3"].inc(len(categories.m3))
                emitted = 0
                suppressed = 0
                for clique in categories.all_cliques():
                    verdict = self._globally_maximal(clique, star, hashtable)
                    if verdict:
                        emitted += 1
                        yield clique
                    else:
                        suppressed += 1
                bundle.emitted.inc(emitted)
                bundle.suppressed.inc(suppressed)
                if self._config.hashtable_cleanup:
                    self._purge_hashtable(hashtable, star.core)
            finally:
                store.close()
                tree_nodes = tree.num_nodes
                tree.release()
        self._finish_step(
            step, star, tree_nodes, tree_estimate, emitted, suppressed,
            hashtable, step_start, current.num_vertices, current.num_edges,
        )

    # ------------------------------------------------------------------
    # Step hooks (overridden by repro.parallel.driver.ParallelExtMCE)
    # ------------------------------------------------------------------
    def _build_step_tree(self, step: int, star: StarGraph):
        """Build this step's ``T_H*`` and ``M_H`` (Algorithm 3, Line 6).

        The parallel driver overrides this to enumerate the H*-max-cliques
        on a worker pool; it must return the same ``(tree, core_maximal)``
        pair with tree nodes charged to ``self._memory``.
        """
        if step == 1 and self._first_step is not None:
            return build_clique_tree_from_cliques(
                star,
                self._first_step[1],
                memory=self._memory,
                kernel=self._config.kernel,
            )
        return build_clique_tree(
            star,
            memory=self._memory,
            use_structure=self._config.use_structure,
            kernel=self._config.kernel,
        )

    def _compute_categories(self, star: StarGraph, core_maximal, store):
        """Run Algorithm 2 (the M1/M2/M3 lifting) for one step.

        The parallel driver overrides this to fan the phase-2 disk
        partitions out to workers; the hashtable filter downstream always
        stays in the driver process.
        """
        return compute_core_plus_max_cliques(
            star, core_maximal, store, kernel=self._config.kernel
        )

    # ------------------------------------------------------------------
    # Global maximality bookkeeping (Section 4.3)
    # ------------------------------------------------------------------
    def _globally_maximal(
        self,
        clique: Clique,
        star: StarGraph,
        hashtable: set[Clique],
    ) -> bool:
        if len(clique) == 1:
            (vertex,) = clique
            return star.original_degree(vertex) == 0
        emit = clique not in hashtable
        if not emit:
            # A previous step covered this clique (it equals the surviving
            # shadow of a strictly larger clique); it will never recur.
            hashtable.discard(clique)
            self._memory.release(len(clique), label="maximality hashtable")
        # Register the clique's periphery part *whether or not it was
        # emitted*: it is the clique's shadow in the next residual graph,
        # and a later step may compute exactly that shadow as a locally
        # maximal clique.  (The paper's Section 4.3 prose registers it only
        # on emission; the inductive invariant — every non-maximal clique
        # that is locally maximal in the residual graph has its shadow in
        # the hashtable — requires registration on suppression too, and
        # the equivalence tests fail without it.)
        periphery_part = clique - star.core
        if len(periphery_part) > 1 and periphery_part not in hashtable:
            hashtable.add(periphery_part)
            self._memory.allocate(len(periphery_part), label="maximality hashtable")
        return emit

    def _purge_hashtable(self, hashtable: set[Clique], consumed: frozenset[int]) -> None:
        for entry in [entry for entry in hashtable if entry & consumed]:
            hashtable.discard(entry)
            self._memory.release(len(entry), label="maximality hashtable")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _periphery_leaf_order(tree, star: StarGraph) -> list[int]:
        """H-neighbor leaves in DFS order (Section 4.2.3's partition order).

        Periphery vertices that appear in no clique path cannot occur in
        any ``HNB`` set, but they are appended at the end defensively so
        every periphery vertex is covered by some partition.
        """
        order: list[int] = []
        seen: set[int] = set()
        for _, leaf in tree.periphery_leaves():
            if leaf not in seen:
                seen.add(leaf)
                order.append(leaf)
        for vertex in sorted(star.periphery):
            if vertex not in seen:
                order.append(vertex)
        return order

    def _finish_step(
        self,
        step: int,
        star: StarGraph,
        tree_nodes: int,
        tree_estimate: float,
        emitted: int,
        suppressed: int,
        hashtable: set[Clique],
        step_start: float,
        residual_vertices: int,
        residual_edges: int,
    ) -> None:
        elapsed = time.perf_counter() - step_start
        bundle = _METRICS()
        bundle.steps.inc()
        bundle.hashtable.set(len(hashtable))
        self.report.steps.append(
            RecursionStats(
                step=step,
                core_size=len(star.core),
                periphery_size=len(star.periphery),
                star_edges=star.size_edges,
                tree_nodes=tree_nodes,
                tree_estimate=tree_estimate,
                cliques_emitted=emitted,
                cliques_suppressed=suppressed,
                hashtable_entries=len(hashtable),
                elapsed_seconds=elapsed,
                residual_vertices=residual_vertices,
                residual_edges=residual_edges,
            )
        )
        self.report.total_cliques += emitted
        if self._trace is not None:
            self._trace.emit(
                "step_completed",
                step=step,
                core_size=len(star.core),
                periphery_size=len(star.periphery),
                star_edges=star.size_edges,
                tree_nodes=tree_nodes,
                tree_estimate=tree_estimate,
                emitted=emitted,
                suppressed=suppressed,
                hashtable_entries=len(hashtable),
                elapsed=elapsed,
            )
