"""Algorithm 1: one-scan extraction of the h-vertices and their adjacency.

Definition 1 of the paper: ``H`` is a set of ``h`` vertices each with degree
at least ``h`` such that every vertex outside ``H`` has degree at most ``h``
— the graph analogue of Hirsch's h-index.  Algorithm 1 computes ``H``
together with the neighbor lists ``NB_H`` (which *are* the H*-graph) in a
single sequential scan of ``G`` using a min-heap keyed by degree
(Theorem 1: ``O(h log h + n)`` time, ``O(|G_H*|)`` space).

The scan maintains the invariant that every heap entry has degree at least
the current heap size.  A vertex is pushed when its degree exceeds the heap
size (it could raise ``h``); if the push breaks the invariant the minimum
entry is evicted — it can never belong to a larger ``H``.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.graph.adjacency import AdjacencyGraph

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.diskgraph import DiskGraph
    from repro.storage.memory import MemoryModel


@dataclass(frozen=True)
class HVertexResult:
    """Output of Algorithm 1: ``H`` and the adjacency lists ``NB_H``."""

    h: int
    h_vertices: frozenset[int]
    neighbor_lists: dict[int, frozenset[int]]

    @property
    def star_size_edges(self) -> int:
        """``|G_H*|``: edges incident to at least one h-vertex.

        Edges with both endpoints in ``H`` appear in two lists, hence the
        correction term (Eq. (5)'s double-count argument).
        """
        directed = sum(len(nbrs) for nbrs in self.neighbor_lists.values())
        internal = sum(
            1
            for v, nbrs in self.neighbor_lists.items()
            for u in nbrs
            if u in self.h_vertices and u > v
        )
        return directed - internal


def compute_h_vertices(
    records: Iterable[tuple[int, Sequence[int]]],
    memory: "MemoryModel | None" = None,
) -> HVertexResult:
    """Run Algorithm 1 over ``(vertex, neighbors)`` records.

    ``records`` may come from any single pass over the graph — an in-memory
    adjacency or a :class:`~repro.storage.diskgraph.DiskGraph` scan.  When a
    memory model is given, live heap entries are charged ``1 + degree``
    units each, so peak usage reflects the ``O(|G_H*|)`` space bound.
    """
    heap: list[tuple[int, int, tuple[int, ...]]] = []

    def charge(degree: int) -> None:
        if memory is not None:
            memory.allocate(1 + degree, label="h-vertex heap")

    def refund(degree: int) -> None:
        if memory is not None:
            memory.release(1 + degree, label="h-vertex heap")

    for vertex, neighbors in records:
        degree = len(neighbors)
        if degree <= len(heap):
            continue
        charge(degree)
        heapq.heappush(heap, (degree, vertex, tuple(neighbors)))
        if heap[0][0] < len(heap):
            evicted_degree, _, _ = heapq.heappop(heap)
            refund(evicted_degree)

    result = HVertexResult(
        h=len(heap),
        h_vertices=frozenset(vertex for _, vertex, _ in heap),
        neighbor_lists={vertex: frozenset(nbrs) for _, vertex, nbrs in heap},
    )
    for degree, _, _ in heap:
        refund(degree)
    return result


def compute_h_vertices_of_graph(
    graph: AdjacencyGraph,
    memory: "MemoryModel | None" = None,
) -> HVertexResult:
    """Algorithm 1 driven by an in-memory graph (vertices in id order)."""
    records = ((v, sorted(graph.neighbors(v))) for v in sorted(graph.vertices()))
    return compute_h_vertices(records, memory=memory)


def compute_h_vertices_of_disk(
    disk_graph: "DiskGraph",
    memory: "MemoryModel | None" = None,
) -> HVertexResult:
    """Algorithm 1 driven by one sequential scan of a disk graph."""
    records = ((record.vertex, record.neighbors) for record in disk_graph.scan())
    return compute_h_vertices(records, memory=memory)


def compute_h_index_reference(degrees: Iterable[int]) -> int:
    """Sort-based h-index used as an independent oracle in tests.

    The largest ``h`` such that at least ``h`` of the given degrees are
    ``>= h``.
    """
    ordered = sorted(degrees, reverse=True)
    h = 0
    for rank, degree in enumerate(ordered, start=1):
        if degree >= rank:
            h = rank
        else:
            break
    return h
