"""Clique output sinks.

ExtMCE *streams* maximal cliques — the paper outputs each H+/L+-max-clique
as soon as its recursion step proves it globally maximal (Algorithm 3,
Lines 10 and 13) precisely so the result set never has to sit in memory.
These sinks are the supported consumers of that stream.
"""

from __future__ import annotations

from pathlib import Path

Clique = frozenset


class CliqueCollector:
    """Accumulates every clique in memory.

    Convenient for tests and small graphs; for massive runs prefer
    :class:`CliqueCounter` or :class:`CliqueFileSink`, which keep O(1)
    state per clique.
    """

    def __init__(self) -> None:
        self.cliques: set[Clique] = set()

    def accept(self, clique: Clique) -> None:
        """Record one maximal clique."""
        self.cliques.add(clique)

    def __len__(self) -> int:
        return len(self.cliques)


class CliqueCounter:
    """Streams cliques into summary statistics.

    Tracks the counts Table 5 reports: the total number of maximal
    cliques and how many intersect a designated vertex set (the paper
    counts cliques containing h-vertices and h-neighbors).
    """

    def __init__(self, tracked_sets: dict[str, frozenset[int]] | None = None) -> None:
        self.total = 0
        self.size_histogram: dict[int, int] = {}
        self.max_size = 0
        self._tracked = tracked_sets or {}
        self.tracked_counts = {name: 0 for name in self._tracked}

    def accept(self, clique: Clique) -> None:
        """Fold one clique into the running statistics."""
        self.total += 1
        size = len(clique)
        self.size_histogram[size] = self.size_histogram.get(size, 0) + 1
        if size > self.max_size:
            self.max_size = size
        for name, members in self._tracked.items():
            if clique & members:
                self.tracked_counts[name] += 1

    @property
    def average_size(self) -> float:
        """Mean clique cardinality over everything seen so far."""
        if self.total == 0:
            return 0.0
        weighted = sum(size * count for size, count in self.size_histogram.items())
        return weighted / self.total


class CliqueFileSink:
    """Writes each clique as a sorted, space-separated line.

    The file handle stays open between accepts; use as a context manager
    or call :meth:`close`.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._handle = open(self._path, "w", encoding="ascii")
        self.count = 0

    def accept(self, clique: Clique) -> None:
        """Append one clique line to the file."""
        self._handle.write(" ".join(str(v) for v in sorted(clique)))
        self._handle.write("\n")
        self.count += 1

    def close(self) -> None:
        """Flush and close the output file."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "CliqueFileSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
