"""Clique output sinks.

ExtMCE *streams* maximal cliques — the paper outputs each H+/L+-max-clique
as soon as its recursion step proves it globally maximal (Algorithm 3,
Lines 10 and 13) precisely so the result set never has to sit in memory.
These sinks are the supported consumers of that stream.
"""

from __future__ import annotations

import os
from collections.abc import Iterable
from pathlib import Path

Clique = frozenset


def canonical_clique_order(cliques: Iterable[Clique]) -> list[tuple[int, ...]]:
    """Sort cliques into the canonical report order.

    Each clique becomes its sorted vertex tuple and the tuples are sorted
    lexicographically — a total order that depends only on the clique
    *set*, never on enumeration order, worker count, or interleaving.
    This is the order every worker-count-invariance guarantee is stated
    against: ``workers=1`` and ``workers=4`` runs must produce
    byte-identical canonical reports.
    """
    return sorted(tuple(sorted(clique)) for clique in cliques)


def render_clique_lines(cliques: Iterable[Clique]) -> str:
    """The canonical textual report: one sorted clique per line.

    The exact bytes :class:`CliqueFileSink` writes in canonical mode; kept
    as a separate function so tests and tools can canonicalize an
    in-memory clique set without touching the filesystem.
    """
    return "".join(
        " ".join(str(v) for v in clique) + "\n"
        for clique in canonical_clique_order(cliques)
    )


class CliqueCollector:
    """Accumulates every clique in memory.

    Convenient for tests and small graphs; for massive runs prefer
    :class:`CliqueCounter` or :class:`CliqueFileSink`, which keep O(1)
    state per clique.
    """

    def __init__(self) -> None:
        self.cliques: set[Clique] = set()

    def accept(self, clique: Clique) -> None:
        """Record one maximal clique."""
        self.cliques.add(clique)

    def canonical(self) -> list[tuple[int, ...]]:
        """The collected cliques in canonical report order."""
        return canonical_clique_order(self.cliques)

    def __len__(self) -> int:
        return len(self.cliques)


class CliqueCounter:
    """Streams cliques into summary statistics.

    Tracks the counts Table 5 reports: the total number of maximal
    cliques and how many intersect a designated vertex set (the paper
    counts cliques containing h-vertices and h-neighbors).
    """

    def __init__(self, tracked_sets: dict[str, frozenset[int]] | None = None) -> None:
        self.total = 0
        self.size_histogram: dict[int, int] = {}
        self.max_size = 0
        self._tracked = tracked_sets or {}
        self.tracked_counts = {name: 0 for name in self._tracked}

    def accept(self, clique: Clique) -> None:
        """Fold one clique into the running statistics."""
        self.total += 1
        size = len(clique)
        self.size_histogram[size] = self.size_histogram.get(size, 0) + 1
        if size > self.max_size:
            self.max_size = size
        for name, members in self._tracked.items():
            if clique & members:
                self.tracked_counts[name] += 1

    @property
    def average_size(self) -> float:
        """Mean clique cardinality over everything seen so far."""
        if self.total == 0:
            return 0.0
        weighted = sum(size * count for size, count in self.size_histogram.items())
        return weighted / self.total


class CliqueFileSink:
    """Writes each clique as a sorted, space-separated line, atomically.

    With ``canonical=False`` (the default) cliques are written in arrival
    order — O(1) state, suitable for massive streams.  With
    ``canonical=True`` the sink buffers every clique and writes the
    canonical report (see :func:`canonical_clique_order`) at close, so
    the output bytes are independent of enumeration order and worker
    count.

    Crash safety follows the checkpoint conventions: all writing goes to
    a scratch ``<name>.tmp`` next to the target; :meth:`close` flushes,
    fsyncs, and atomically renames it into place, then fsyncs the
    directory.  A crash mid-run leaves any previous complete output file
    untouched and at worst a stale ``.tmp`` (which the next sink for the
    same path overwrites) — never a torn, half-written clique file that
    a downstream consumer could mistake for the full result.  Use as a
    context manager or call :meth:`close`.
    """

    def __init__(self, path: str | Path, canonical: bool = False) -> None:
        self._path = Path(path)
        self._scratch = self._path.with_name(self._path.name + ".tmp")
        self._handle = open(self._scratch, "w", encoding="ascii")
        self._canonical = canonical
        self._buffer: list[Clique] | None = [] if canonical else None
        self._committed = False
        self.count = 0

    @property
    def path(self) -> Path:
        """The target path (only present after a successful close)."""
        return self._path

    def accept(self, clique: Clique) -> None:
        """Append one clique line to the file (buffered when canonical)."""
        if self._buffer is not None:
            self._buffer.append(clique)
        else:
            self._handle.write(" ".join(str(v) for v in sorted(clique)))
            self._handle.write("\n")
        self.count += 1

    def close(self) -> None:
        """Commit the output: flush, fsync, rename scratch over target."""
        if self._committed or self._handle.closed:
            return
        if self._buffer is not None:
            self._handle.write(render_clique_lines(self._buffer))
            self._buffer = None
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        os.replace(self._scratch, self._path)
        directory_fd = os.open(self._path.parent, os.O_RDONLY)
        try:
            os.fsync(directory_fd)
        finally:
            os.close(directory_fd)
        self._committed = True

    def abort(self) -> None:
        """Discard the scratch file without touching the target."""
        if not self._handle.closed:
            self._handle.close()
        if not self._committed and self._scratch.exists():
            self._scratch.unlink()

    def __enter__(self) -> "CliqueFileSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        # A failed producer must not commit a partial file as if it were
        # the complete result; the scratch file is discarded instead.
        if exc_info and exc_info[0] is not None:
            self.abort()
        else:
            self.close()
