"""The paper's contribution: H*-graph machinery and the ExtMCE algorithm.

Module map (paper section in parentheses):

* :mod:`repro.core.hindex` — Algorithm 1: one-scan h-vertex extraction (3.4)
* :mod:`repro.core.hstar` — H/Hnb/G_H/G_H*/G_H+ structures (3.1)
* :mod:`repro.core.clique_tree` — the H*-max-clique tree ``T_H*`` (4.1)
* :mod:`repro.core.estimator` — Knuth-style ``|T_H*|`` estimation (4.1.3)
* :mod:`repro.core.categories` — Algorithm 2: ``M1 ∪ M2 ∪ M3`` (4.2)
* :mod:`repro.core.lstar` — L*-graph extraction, Definition 10 (4.3)
* :mod:`repro.core.extmce` — Algorithm 3: the recursive driver (4.4)
* :mod:`repro.core.result` — clique sinks/collectors for streaming output
"""

from repro.core.categories import CategorizedCliques, compute_core_plus_max_cliques
from repro.core.checkpoint import (
    CheckpointState,
    clear_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.core.clique_tree import CliqueTree, build_clique_tree, enumerate_star_cliques
from repro.core.estimator import (
    count_backtrack_tree_nodes,
    estimate_tree_size,
    shrink_core_to_budget,
)
from repro.core.extmce import ExtMCE, ExtMCEConfig, ExtMCEReport, RecursionStats
from repro.core.hindex import compute_h_index_reference, compute_h_vertices
from repro.core.hstar import StarGraph, extract_hstar_graph
from repro.core.lstar import extract_lstar_graph
from repro.core.result import CliqueCollector, CliqueCounter, CliqueFileSink

__all__ = [
    "CategorizedCliques",
    "CheckpointState",
    "CliqueCollector",
    "CliqueCounter",
    "CliqueFileSink",
    "CliqueTree",
    "ExtMCE",
    "ExtMCEConfig",
    "ExtMCEReport",
    "RecursionStats",
    "StarGraph",
    "build_clique_tree",
    "compute_core_plus_max_cliques",
    "compute_h_index_reference",
    "clear_checkpoint",
    "compute_h_vertices",
    "count_backtrack_tree_nodes",
    "enumerate_star_cliques",
    "estimate_tree_size",
    "extract_hstar_graph",
    "extract_lstar_graph",
    "read_checkpoint",
    "shrink_core_to_budget",
    "write_checkpoint",
]
