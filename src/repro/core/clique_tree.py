"""The H*-max-clique tree ``T_H*`` (paper Section 4.1).

``T_H*`` is a prefix tree over the maximal cliques of the star graph
``G_H*``, laid out along the total order ``≺`` of Definition 8 (core
vertices before periphery vertices, ids ascending within each class).
Root-to-terminal paths correspond one-to-one to H*-max-cliques; by
Lemma 1/2 a periphery vertex can only appear as a leaf and every child of
the root is a core vertex.

Construction exploits the structure the paper's two Lemma-2 optimisations
point at: because the periphery is an independent set in ``G_H*``, the
H*-max-cliques are exactly

* the maximal cliques ``K`` of the core graph ``G_H`` with no common
  periphery neighbor (``HNB(K) = ∅``), plus
* ``K ∪ {w}`` for each periphery vertex ``w`` and each maximal clique
  ``K`` of ``G_H`` restricted to ``nb(w) ∩ H``.

:func:`enumerate_star_cliques` implements that specialised enumeration;
setting ``use_structure=False`` falls back to running the generic pivoted
algorithm on ``G_H*`` (the ablation bench compares the two).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from types import SimpleNamespace
from typing import TYPE_CHECKING

from repro import metrics
from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.errors import GraphError
from repro.core.hstar import StarGraph

#: Per-step ``T_H*`` construction totals (Table 3's tree-size column).
_METRICS = metrics.bound(
    lambda registry: SimpleNamespace(
        trees=registry.counter(
            "repro_tree_builds_total", "clique trees assembled (one per step)"
        ),
        nodes=registry.counter(
            "repro_tree_nodes_total", "prefix-tree nodes across all assembled trees"
        ),
        cliques=registry.counter(
            "repro_tree_cliques_total", "H*-max-cliques stored across all trees"
        ),
    )
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.memory import MemoryModel

Clique = frozenset


class _Node:
    """One prefix-tree node; the root carries ``vertex = None``."""

    __slots__ = ("vertex", "children", "is_terminal", "core_maximal")

    def __init__(self, vertex: int | None) -> None:
        self.vertex = vertex
        self.children: dict[int, _Node] = {}
        self.is_terminal = False
        self.core_maximal = False


class CliqueTree:
    """Prefix tree over ranked cliques with metered node count.

    The rank order must place every core vertex before every periphery
    vertex (Definition 8); :meth:`for_star` wires that up from a
    :class:`~repro.core.hstar.StarGraph`.
    """

    def __init__(
        self,
        core: frozenset[int],
        memory: "MemoryModel | None" = None,
    ) -> None:
        self._core = core
        self._root = _Node(None)
        self._num_nodes = 1  # the root λ
        self._num_cliques = 0
        self._memory = memory
        if memory is not None:
            memory.allocate(1, label="clique tree")

    @classmethod
    def for_star(
        cls,
        star: StarGraph,
        memory: "MemoryModel | None" = None,
    ) -> "CliqueTree":
        """A tree whose rank order matches the star graph's core."""
        return cls(star.core, memory=memory)

    # ------------------------------------------------------------------
    # Order ≺ (Definition 8)
    # ------------------------------------------------------------------
    def rank_key(self, vertex: int) -> tuple[int, int]:
        """Sort key realising ``≺``: core first, then ids ascending."""
        return (0 if vertex in self._core else 1, vertex)

    def ordered(self, clique: Iterable[int]) -> list[int]:
        """The members of ``clique`` sorted by ``≺``."""
        return sorted(clique, key=self.rank_key)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, clique: Iterable[int]) -> bool:
        """Insert a clique; returns ``False`` if it was already present."""
        path = self.ordered(clique)
        if not path:
            raise GraphError("cannot insert an empty clique")
        node = self._root
        for vertex in path:
            child = node.children.get(vertex)
            if child is None:
                child = _Node(vertex)
                node.children[vertex] = child
                self._num_nodes += 1
                if self._memory is not None:
                    self._memory.allocate(1, label="clique tree")
            node = child
        if node.is_terminal:
            return False
        node.is_terminal = True
        self._num_cliques += 1
        return True

    def remove(self, clique: Iterable[int]) -> bool:
        """Remove a clique and prune now-useless nodes; ``False`` if absent."""
        path = self.ordered(clique)
        nodes = [self._root]
        for vertex in path:
            child = nodes[-1].children.get(vertex)
            if child is None:
                return False
            nodes.append(child)
        terminal = nodes[-1]
        if not terminal.is_terminal:
            return False
        terminal.is_terminal = False
        self._num_cliques -= 1
        # Prune upward: a node survives if it still ends or routes cliques.
        for index in range(len(nodes) - 1, 0, -1):
            node = nodes[index]
            if node.children or node.is_terminal:
                break
            del nodes[index - 1].children[node.vertex]
            self._num_nodes -= 1
            if self._memory is not None:
                self._memory.release(1, label="clique tree")
        return True

    def mark_core_maximal(self, core_clique: Iterable[int]) -> None:
        """Flag the node ending ``core_clique`` as a maximal clique of
        ``G_H`` (the marking used by Algorithm 2, Line 7)."""
        node = self._find(core_clique)
        if node is None:
            raise GraphError(f"clique {sorted(core_clique)} is not a path in the tree")
        node.core_maximal = True

    def release(self) -> None:
        """Return all tree nodes to the memory model and detach from it
        (end of a recursion step: "GH* and TH* are discarded", Section
        4.3).  The tree resets to an empty, unaccounted state."""
        if self._memory is not None:
            self._memory.release(self._num_nodes, label="clique tree")
            self._memory = None
        self._root = _Node(None)
        self._num_nodes = 1
        self._num_cliques = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Node count including the root λ — the paper's ``|T_H*|``."""
        return self._num_nodes

    @property
    def num_cliques(self) -> int:
        """Number of stored cliques (terminal paths)."""
        return self._num_cliques

    def __contains__(self, clique: Iterable[int]) -> bool:
        node = self._find(clique)
        return node is not None and node.is_terminal

    def is_core_maximal(self, core_clique: Iterable[int]) -> bool:
        """Whether the path for ``core_clique`` is marked as ``G_H``-maximal."""
        node = self._find(core_clique)
        return node is not None and node.core_maximal

    def cliques(self) -> Iterator[Clique]:
        """Iterate all stored cliques (root-to-terminal paths), DFS order."""
        yield from self._walk(self._root, [])

    def cliques_containing(self, vertices: Iterable[int]) -> Iterator[Clique]:
        """Stored cliques that contain every vertex of ``vertices``.

        This is the traversal behind the paper's update sets ``S`` and
        ``S'`` (Section 5).
        """
        wanted = frozenset(vertices)
        for clique in self.cliques():
            if wanted <= clique:
                yield clique

    def periphery_leaves(self) -> Iterator[tuple[Clique, int]]:
        """Yield ``(core part, periphery leaf)`` for every stored clique
        ending in a periphery vertex — the h-neighbor leaves of Lemma 2."""
        for clique in self.cliques():
            path = self.ordered(clique)
            last = path[-1]
            if last not in self._core:
                yield frozenset(path[:-1]), last

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _find(self, clique: Iterable[int]) -> _Node | None:
        node = self._root
        for vertex in self.ordered(clique):
            node = node.children.get(vertex)
            if node is None:
                return None
        return node

    def _walk(self, node: _Node, prefix: list[int]) -> Iterator[Clique]:
        if node.is_terminal:
            yield frozenset(prefix)
        for vertex in sorted(node.children, key=self.rank_key):
            prefix.append(vertex)
            yield from self._walk(node.children[vertex], prefix)
            prefix.pop()


def enumerate_star_cliques(
    star: StarGraph,
    use_structure: bool = True,
    kernel: str = "set",
) -> Iterator[Clique]:
    """Enumerate the maximal cliques of ``G_H*`` (the H*-max-cliques).

    With ``use_structure=True`` (default) the independent-periphery
    structure is exploited as described in the module docstring; otherwise
    the generic pivoted enumerator runs on the materialised star graph.
    Both yield the same set — a property the test suite asserts.

    ``kernel="bitset"`` compacts the core graph once and carves each
    periphery vertex's anchor subproblem out of it with a subset mask,
    instead of materialising one induced ``AdjacencyGraph`` per periphery
    vertex; the emitted stream is byte-identical to the set path.
    """
    from repro.kernel import validate_kernel

    if not use_structure:
        yield from tomita_maximal_cliques(star.star_graph(), kernel=kernel)
        return

    if validate_kernel(kernel) == "bitset":
        from repro.kernel import maximal_cliques_bitset

        compact = star.core_compact()
        for core_clique in maximal_cliques_bitset(compact):
            if not star.common_periphery(core_clique):
                yield core_clique
        for w, anchors in _anchor_items(star):
            subset = compact.subset_mask(anchors)
            for core_clique in maximal_cliques_bitset(compact, subset):
                yield core_clique | {w}
        return

    core_graph = star.core_graph()
    for core_clique in tomita_maximal_cliques(core_graph):
        if not star.common_periphery(core_clique):
            yield core_clique
    for w, anchors in _anchor_items(star):
        induced = core_graph.induced_subgraph(anchors)
        for core_clique in tomita_maximal_cliques(induced):
            yield core_clique | {w}


def _anchor_items(star: StarGraph) -> list[tuple[int, set[int]]]:
    """``(w, anchors)`` per periphery vertex ``w``, ascending by ``w``.

    The anchors of ``w`` are its core neighbors — the vertex set whose
    induced maximal cliques become ``K ∪ {w}`` leaves (Lemma 2).
    """
    anchors_of: dict[int, set[int]] = {}
    for v in star.core:
        for w in star.periphery_neighbors(v):
            anchors_of.setdefault(w, set()).add(v)
    return sorted(anchors_of.items())


def assemble_clique_tree(
    star: StarGraph,
    cliques: Iterable[Clique],
    core_maximal: Iterable[Clique],
    memory: "MemoryModel | None" = None,
) -> CliqueTree:
    """Build ``T_H*`` from pre-enumerated cliques and mark ``M_H`` paths.

    The shared tail of every construction route: the serial builders below
    and the parallel driver (which enumerates the cliques on a worker pool
    and only assembles here, in the driver process, so tree-node memory is
    charged to the one authoritative :class:`MemoryModel`).
    """
    tree = CliqueTree.for_star(star, memory=memory)
    for clique in cliques:
        tree.insert(clique)
    for kernel in core_maximal:
        node = tree._find(kernel)
        if node is not None:
            node.core_maximal = True
    bundle = _METRICS()
    bundle.trees.inc()
    bundle.nodes.inc(tree.num_nodes)
    bundle.cliques.inc(tree.num_cliques)
    return tree


def build_clique_tree_from_cliques(
    star: StarGraph,
    cliques: Iterable[Clique],
    memory: "MemoryModel | None" = None,
    kernel: str = "set",
) -> tuple[CliqueTree, set[Clique]]:
    """Construct ``T_H*`` from an already-known H*-max-clique set.

    Used when a dynamically maintained ``M_H*`` is available (Section 5's
    "compute the whole set of maximal cliques on demand"): inserting known
    cliques skips the backtracking enumeration entirely, which is exactly
    the saving Table 7's "Time w/ T_H*" column measures.  ``M_H`` is still
    recomputed from the (small) core graph for the Algorithm 2 markings.
    """
    core_maximal = set(tomita_maximal_cliques(star.core_graph(), kernel=kernel))
    tree = assemble_clique_tree(star, cliques, core_maximal, memory=memory)
    return tree, core_maximal


def build_clique_tree(
    star: StarGraph,
    memory: "MemoryModel | None" = None,
    use_structure: bool = True,
    kernel: str = "set",
) -> tuple[CliqueTree, set[Clique]]:
    """Construct ``T_H*`` and the core-maximal clique set ``M_H``.

    Returns the populated tree and ``M_H`` (the maximal cliques of the
    core graph), with the tree's ``M_H`` paths marked per Algorithm 2's
    requirement.  Memory for every tree node is charged to ``memory``.
    ``kernel`` selects the enumeration hot path; the tree is identical.
    """
    core_maximal = set(tomita_maximal_cliques(star.core_graph(), kernel=kernel))
    tree = assemble_clique_tree(
        star,
        enumerate_star_cliques(star, use_structure=use_structure, kernel=kernel),
        core_maximal,
        memory=memory,
    )
    return tree, core_maximal
