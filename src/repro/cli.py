"""Command-line interface: ``repro-mce``.

Subcommands::

    repro-mce convert edges.txt graph.bin      # edge list -> disk graph
    repro-mce stats graph.bin                  # n, m, h, H*-graph sizes
    repro-mce enumerate graph.bin -o out.txt   # ExtMCE over a disk graph
    repro-mce enumerate graph.bin --index-out idx/   # + build a query index
    repro-mce serve idx/ --port 7777           # query service over an index
    repro-mce live store/ --stream stream.txt  # continuously maintained serving
    repro-mce verify-index idx/                # offline index integrity audit
    repro-mce generate blogs edges.txt         # synthesize a dataset
    repro-mce maintain graph.bin stream.txt    # replay a dynamic stream
    repro-mce experiments table4 figure3       # paper tables

``enumerate`` accepts either a binary DiskGraph or a plain text edge list
(converted on the fly); memory budgets are expressed in accounting units
(8 bytes each, see ``repro.storage.memory``).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis.tables import render_table
from repro.core.estimator import estimate_tree_size
from repro.core.extmce import ExtMCE, ExtMCEConfig
from repro.core.hstar import extract_hstar_graph
from repro.core.result import CliqueCounter, CliqueFileSink
from repro.dynamic.maintainer import HStarMaintainer
from repro.errors import ReproError, StorageError
from repro.parallel import ParallelExtMCE
from repro.generators.datasets import DATASETS
from repro.graph.powerlaw import fit_rank_exponent
from repro.storage.convert import edge_list_file_to_disk_graph
from repro.storage.diskgraph import DiskGraph
from repro.storage.edgelist import (
    read_timestamped_edge_list,
    write_edge_list,
)
from repro.storage.memory import MemoryModel


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-mce`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-mce",
        description="External-memory maximal clique enumeration (SIGMOD 2010 H*-graph).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    convert = sub.add_parser("convert", help="convert a text edge list to a DiskGraph")
    convert.add_argument("edge_list", type=Path)
    convert.add_argument("output", type=Path)
    convert.add_argument("--run-pairs", type=int, default=1 << 18,
                         help="external-sort buffer size in directed pairs")

    stats = sub.add_parser(
        "stats",
        help="summarise a graph and its H*-graph, or render a metrics snapshot",
    )
    stats.add_argument("graph", type=Path,
                       help="DiskGraph (.bin), text edge list, or a metrics "
                            "snapshot JSON written by enumerate --metrics-out")

    enumerate_ = sub.add_parser("enumerate", help="run ExtMCE over a graph")
    enumerate_.add_argument("graph", type=Path,
                            help="DiskGraph (.bin) or text edge list")
    enumerate_.add_argument("-o", "--output", type=Path,
                            help="write cliques here (one sorted line each)")
    enumerate_.add_argument("--budget", type=int,
                            help="memory budget in accounting units")
    enumerate_.add_argument("--min-size", type=int, default=1,
                            help="only output cliques of at least this size")
    enumerate_.add_argument("--seed", type=int, default=0)
    enumerate_.add_argument("--checkpoint-dir", type=Path,
                            help="persist a resumable checkpoint after every "
                                 "recursion step into this directory")
    enumerate_.add_argument("--resume", action="store_true",
                            help="resume an interrupted run from "
                                 "--checkpoint-dir instead of starting over")
    enumerate_.add_argument("--trace", type=Path,
                            help="append JSONL run telemetry to this file "
                                 "and print a per-step summary")
    enumerate_.add_argument("--workers", type=int, default=1,
                            help="worker processes for the parallel engine "
                                 "(1 = serial driver; output is identical "
                                 "for every worker count)")
    enumerate_.add_argument("--task-grain", choices=("coarse", "fine"),
                            default="fine",
                            help="parallel scheduling granularity: 'fine' "
                                 "(default) cuts smaller chunks and lets "
                                 "workers split skewed subtrees back into "
                                 "the queue (work stealing); 'coarse' is "
                                 "the static oversubscribed split; the "
                                 "clique stream is identical either way")
    enumerate_.add_argument("--canonical", action="store_true",
                            help="write the output file in canonical sorted "
                                 "order (byte-identical across runs and "
                                 "worker counts; buffers all cliques)")
    enumerate_.add_argument("--kernel", choices=("set", "bitset"),
                            default="bitset",
                            help="enumeration hot path: 'bitset' (big-int "
                                 "adjacency masks, default) or 'set' "
                                 "(frozenset reference); the clique stream "
                                 "is identical either way")
    enumerate_.add_argument("--reduction", choices=("off", "prune", "full"),
                            default="off",
                            help="exact graph reduction before enumeration "
                                 "(repro.reduce): 'prune' peels low-degree "
                                 "vertices against a greedy clique lower "
                                 "bound, 'full' adds true-twin folding; the "
                                 "clique set is identical at every level")
    enumerate_.add_argument("--max-retries", type=int, default=2,
                            help="per-chunk resubmissions before the parallel "
                                 "engine recomputes a failing chunk inline")
    enumerate_.add_argument("--verify-checksums",
                            action=argparse.BooleanOptionalAction, default=True,
                            help="verify per-record CRC32s when reading "
                                 "checksummed (v2) disk graphs")
    enumerate_.add_argument("--fault-plan", type=Path,
                            help="JSON fault-injection spec (testing only; "
                                 "see repro.faults.FaultPlan.to_spec)")
    enumerate_.add_argument("--metrics-out", type=Path,
                            help="enable the metrics registry and write its "
                                 "final snapshot here (JSON), plus the "
                                 "Prometheus text exposition at PATH.prom")
    enumerate_.add_argument("--index-out", type=Path,
                            help="also build a persisted clique query index "
                                 "(repro.index) in this directory")

    serve = sub.add_parser(
        "serve", help="answer clique queries over a persisted index (TCP/JSON lines)"
    )
    serve.add_argument("index", type=Path,
                       help="index directory built by enumerate --index-out")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default: any free port, printed at start)")
    serve.add_argument("--cache-entries", type=int, default=1024,
                       help="postings LRU cache capacity (entries)")
    serve.add_argument("--cache-pages", type=int, default=64,
                       help="buffer-pool page cache capacity per index file")
    serve.add_argument("--timeout", type=float, default=None,
                       help="default per-query timeout in seconds")
    serve.add_argument("--max-in-flight", type=int, default=64,
                       help="admission limit: requests past this many "
                            "concurrently executing queries are shed with a "
                            "typed overloaded reply")
    serve.add_argument("--max-request-bytes", type=int, default=1 << 20,
                       help="request lines longer than this are rejected with "
                            "a typed error instead of buffered")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       help="SIGTERM grace: seconds to wait for in-flight "
                            "requests before closing")
    serve.add_argument("--metrics-out", type=Path,
                       help="write a metrics snapshot here on shutdown")

    live = sub.add_parser(
        "live",
        help="continuously maintained clique serving over an update stream",
    )
    live.add_argument("store", type=Path,
                      help="live store directory (created when missing)")
    live.add_argument("--graph", type=Path,
                      help="starting graph (DiskGraph or edge list); enumerated "
                           "into generation 0 when the store is created, and "
                           "used to seed the in-memory maintainer either way")
    live.add_argument("--stream", type=Path,
                      help="update stream: 'timestamp u v' insertion lines or "
                           "'timestamp op u v' with op in {insert, delete}")
    live.add_argument("--serve", action=argparse.BooleanOptionalAction,
                      default=False,
                      help="answer queries over TCP/JSON lines while (and "
                           "after) the stream is ingested")
    live.add_argument("--host", default="127.0.0.1")
    live.add_argument("--port", type=int, default=0,
                      help="TCP port (default: any free port, printed at start)")
    live.add_argument("--cache-entries", type=int, default=1024,
                      help="postings LRU cache capacity (entries)")
    live.add_argument("--cache-pages", type=int, default=64,
                      help="buffer-pool page cache capacity per index file")
    live.add_argument("--timeout", type=float, default=None,
                      help="default per-query timeout in seconds")
    live.add_argument("--compact-threshold", type=int, default=256,
                      help="background compaction folds the delta tail once it "
                           "exceeds this many deltas")
    live.add_argument("--compact-on-exit",
                      action=argparse.BooleanOptionalAction, default=True,
                      help="fold any remaining delta tail into a fresh "
                           "generation before exiting")
    live.add_argument("--max-in-flight", type=int, default=64,
                      help="admission limit: requests past this many "
                           "concurrently executing queries are shed with a "
                           "typed overloaded reply")
    live.add_argument("--max-request-bytes", type=int, default=1 << 20,
                      help="request lines longer than this are rejected with "
                           "a typed error instead of buffered")
    live.add_argument("--drain-timeout", type=float, default=10.0,
                      help="SIGTERM grace: seconds to wait for in-flight "
                           "requests before flushing the WAL and closing")
    live.add_argument("--supervise", action=argparse.BooleanOptionalAction,
                      default=True,
                      help="run the watchdog that restarts dead ingest / "
                           "compaction workers through WAL replay (serving "
                           "mode only)")
    live.add_argument("--metrics-out", type=Path,
                      help="write a metrics snapshot here on shutdown")

    verify_index = sub.add_parser(
        "verify-index",
        help="offline integrity audit of a clique index or live store",
    )
    verify_index.add_argument("index", type=Path,
                              help="index directory (enumerate --index-out) or "
                                   "live store directory (repro-mce live)")

    generate = sub.add_parser("generate", help="synthesize a dataset stand-in")
    generate.add_argument("dataset", choices=sorted(DATASETS))
    generate.add_argument("output", type=Path, help="edge list destination")

    maintain = sub.add_parser("maintain", help="replay a timestamped update stream")
    maintain.add_argument("graph", type=Path, help="initial DiskGraph (.bin)")
    maintain.add_argument("stream", type=Path, help="'timestamp u v' lines")

    verify = sub.add_parser("verify", help="audit a clique file against a graph")
    verify.add_argument("graph", type=Path, help="DiskGraph (.bin) or text edge list")
    verify.add_argument("cliques", type=Path,
                        help="clique file (one space-separated clique per line)")
    verify.add_argument("--soundness-only", action="store_true",
                        help="skip the completeness check (no full enumeration)")

    experiments = sub.add_parser("experiments", help="print the paper's tables")
    experiments.add_argument("names", nargs="*",
                             help="table2..table7, figure3 (default: all)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    handler = {
        "convert": _cmd_convert,
        "stats": _cmd_stats,
        "enumerate": _cmd_enumerate,
        "generate": _cmd_generate,
        "maintain": _cmd_maintain,
        "serve": _cmd_serve,
        "live": _cmd_live,
        "verify": _cmd_verify,
        "verify-index": _cmd_verify_index,
        "experiments": _cmd_experiments,
    }[args.command]
    try:
        return handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------
def _cmd_convert(args: argparse.Namespace) -> int:
    with tempfile.TemporaryDirectory(prefix="repro_convert_") as tmp:
        disk = edge_list_file_to_disk_graph(
            args.edge_list, args.output, tmp, run_pairs=args.run_pairs
        )
    print(f"wrote {args.output}: {disk.num_vertices} vertices, {disk.num_edges} edges")
    return 0


def _open_graph(path: Path, fault_plan=None, verify_checksums: bool = True) -> DiskGraph:
    """Open a DiskGraph, converting a text edge list transparently."""
    try:
        return DiskGraph.open(
            path, fault_plan=fault_plan, verify_checksums=verify_checksums
        )
    except StorageError:
        converted = path.with_suffix(path.suffix + ".converted.bin")
        with tempfile.TemporaryDirectory(prefix="repro_convert_") as tmp:
            disk = edge_list_file_to_disk_graph(path, converted, tmp)
        if fault_plan is None and verify_checksums:
            return disk
        return DiskGraph.open(
            disk.path, fault_plan=fault_plan, verify_checksums=verify_checksums
        )


def _cmd_stats(args: argparse.Namespace) -> int:
    snapshot = _try_load_metrics_snapshot(args.graph)
    if snapshot is not None:
        from repro.metrics import render_metrics_table
        from repro.service.stats import summarize_query_metrics

        summary = summarize_query_metrics(snapshot)
        if summary is not None:
            print(summary)
            print()
        print(render_metrics_table(snapshot))
        return 0
    disk = _open_graph(args.graph)
    star = extract_hstar_graph(disk)
    graph = disk.to_adjacency_graph()
    fit = fit_rank_exponent(graph) if graph.num_edges else None
    estimate = estimate_tree_size(star) if star.core else 1.0
    rows = [
        ("vertices (n)", disk.num_vertices),
        ("edges (m = |G|)", disk.num_edges),
        ("h-index (|H|)", star.h),
        ("h-neighbors (|Hnb|)", len(star.periphery)),
        ("|G_H| edges", star.core_edge_count),
        ("|G_H*| edges", star.size_edges),
        ("|G_H*| / |G|", f"{star.size_edges / disk.num_edges:.1%}" if disk.num_edges else "-"),
        ("rank exponent R", f"{fit.rank_exponent:.3f}" if fit else "-"),
        ("estimated |T_H*| nodes", f"{estimate:.0f}"),
    ]
    print(render_table(f"Graph statistics: {args.graph}", ["metric", "value"], rows))
    return 0


def _try_load_metrics_snapshot(path: Path):
    """The parsed snapshot if ``path`` holds one, else ``None``.

    Sniffing by content (the ``schema`` key), not extension, keeps
    ``stats`` backward compatible: anything that is not a metrics
    snapshot falls through to the graph-statistics path untouched.
    """
    import json

    from repro.metrics import is_snapshot

    try:
        payload = json.loads(path.read_text(encoding="ascii"))
    except (OSError, UnicodeError, ValueError):
        return None
    return payload if is_snapshot(payload) else None


def _cmd_enumerate(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    fault_plan = None
    if args.fault_plan is not None:
        import json

        from repro.faults import FaultPlan

        try:
            fault_plan = FaultPlan.from_spec(json.loads(args.fault_plan.read_text()))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read fault plan {args.fault_plan}: {exc}",
                  file=sys.stderr)
            return 2
    if args.metrics_out is not None:
        # Enable before the graph is opened so conversion/open I/O counts.
        from repro import metrics

        metrics.enable()
    memory = MemoryModel(budget=args.budget)
    counter = CliqueCounter()
    sink = CliqueFileSink(args.output, canonical=args.canonical) if args.output else None
    index_sink = None
    if args.index_out is not None:
        from repro.index import CliqueIndexSink

        args.index_out.mkdir(parents=True, exist_ok=True)
        index_sink = CliqueIndexSink(args.index_out)
    driver_cls = ParallelExtMCE if args.workers > 1 else ExtMCE
    started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro_mce_") as tmp:
        if args.resume:
            algo = driver_cls.resume(
                args.checkpoint_dir,
                config=ExtMCEConfig(
                    memory_budget_units=args.budget, trace_path=args.trace,
                    workers=args.workers, task_grain=args.task_grain,
                    kernel=args.kernel, reduction=args.reduction,
                    verify_checksums=args.verify_checksums,
                    max_retries=args.max_retries, fault_plan=fault_plan,
                    metrics_path=args.metrics_out,
                ),
                memory=memory,
            )
        else:
            disk = _open_graph(
                args.graph,
                fault_plan=fault_plan,
                verify_checksums=args.verify_checksums,
            )
            workdir = args.checkpoint_dir if args.checkpoint_dir else tmp
            config = ExtMCEConfig(
                workdir=workdir,
                seed=args.seed,
                memory_budget_units=args.budget,
                checkpoint=args.checkpoint_dir is not None,
                trace_path=args.trace,
                workers=args.workers,
                task_grain=args.task_grain,
                kernel=args.kernel,
                reduction=args.reduction,
                verify_checksums=args.verify_checksums,
                max_retries=args.max_retries,
                fault_plan=fault_plan,
                metrics_path=args.metrics_out,
            )
            algo = driver_cls(disk, config, memory=memory)
        try:
            for clique in algo.enumerate_cliques():
                if len(clique) < args.min_size:
                    continue
                counter.accept(clique)
                if sink is not None:
                    sink.accept(clique)
                if index_sink is not None:
                    index_sink.accept(clique)
        except BaseException:
            # A failed run must not commit partial output as the result.
            if sink is not None:
                sink.abort()
            if index_sink is not None:
                index_sink.abort()
            raise
        if sink is not None:
            sink.close()
        if index_sink is not None:
            index_sink.close()
            if args.metrics_out is not None:
                # The engine wrote its snapshot before the index build ran;
                # rewrite it so the repro_index_* build counters are included.
                from repro import metrics

                metrics.write_exposition_files(
                    metrics.get_registry().snapshot(), args.metrics_out
                )
    elapsed = time.perf_counter() - started
    print(f"maximal cliques : {counter.total}"
          + (f" (size >= {args.min_size})" if args.min_size > 1 else ""))
    print(f"largest clique  : {counter.max_size}")
    print(f"time            : {elapsed:.2f} s")
    print(f"peak memory     : {memory.peak_units} units ({memory.peak_megabytes:.3f} MB)")
    print(f"recursions      : {algo.report.num_recursions}")
    print(f"graph scans     : {algo.report.sequential_scans}")
    if args.workers > 1:
        print(f"workers         : {args.workers} (task grain: {args.task_grain})")
    if args.output:
        print(f"cliques written : {args.output}")
    if index_sink is not None:
        report = index_sink.report
        print(f"index written   : {args.index_out} "
              f"({report.num_cliques} cliques, {report.total_bytes} bytes)")
    if args.metrics_out:
        print(f"metrics written : {args.metrics_out} "
              f"(+ {args.metrics_out.name}.prom)")
    if args.trace:
        from repro.telemetry import load_trace, summarize_trace

        print()
        print(summarize_trace(load_trace(args.trace)))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    spec = DATASETS[args.dataset]
    count = write_edge_list(args.output, spec.edges())
    print(
        f"wrote {args.output}: {args.dataset} stand-in, "
        f"{spec.num_vertices} vertices, {count} edges "
        f"(paper original: {spec.paper_vertices} / {spec.paper_edges})"
    )
    return 0


def _cmd_maintain(args: argparse.Namespace) -> int:
    disk = _open_graph(args.graph)
    maintainer = HStarMaintainer(disk.to_adjacency_graph())
    print(f"initial graph: {maintainer.graph.num_edges} edges, h = {maintainer.h}")
    started = time.perf_counter()
    maintainer.apply_stream(read_timestamped_edge_list(args.stream))
    elapsed = time.perf_counter() - started
    stats = maintainer.stats
    print(f"applied {stats.updates_total} updates in {elapsed:.2f} s")
    print(f"updates touching the H*-graph: {stats.updates_hitting_star} "
          f"({100 * stats.hit_fraction:.1f}%)")
    print(f"avg cost per core-touching update: {stats.average_hit_milliseconds:.2f} ms")
    print(f"core rebuilds: {stats.core_rebuilds}")
    print(f"h is now {maintainer.h}; {len(maintainer.star_cliques())} core cliques maintained")
    return 0


def _install_drain_signals(stop_event) -> None:
    """Route SIGTERM/SIGINT into ``stop_event`` for a graceful drain.

    The serve loop runs on a background thread precisely so the main
    thread is free to sit in ``stop_event.wait()`` — a signal handler
    that called ``server.shutdown()`` directly from the thread running
    ``serve_forever`` would deadlock against it.
    """
    import signal

    def _on_signal(_signum, _frame):
        stop_event.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading

    from repro.index import CliqueIndex
    from repro.service import CliqueQueryEngine, CliqueQueryServer

    if args.metrics_out is not None:
        from repro import metrics

        metrics.enable()
    with CliqueIndex(args.index, cache_pages=args.cache_pages) as index:
        stats = index.stats()
        engine = CliqueQueryEngine(
            index,
            cache_entries=args.cache_entries,
            timeout_seconds=args.timeout,
        )
        server = CliqueQueryServer(
            engine,
            host=args.host,
            port=args.port,
            max_in_flight=args.max_in_flight,
            max_request_bytes=args.max_request_bytes,
            drain_timeout_seconds=args.drain_timeout,
        )
        host, port = server.address
        print(f"index           : {args.index} "
              f"({stats['num_cliques']} cliques, "
              f"{stats['num_vertices']} vertices)")
        print(f"listening on    : {host}:{port}")
        print(f"admission       : {args.max_in_flight} in flight, "
              f"{args.max_request_bytes} B/request, "
              f"drain {args.drain_timeout:.0f}s")
        print("protocol        : one JSON request per line; "
              'e.g. {"id": 1, "op": "cliques_containing", "args": {"v": 0}}')
        stop = threading.Event()
        _install_drain_signals(stop)
        server.start()
        try:
            stop.wait()
        except KeyboardInterrupt:
            pass
        print("draining        : stopped accepting, finishing in-flight")
        completed = server.drain(args.drain_timeout)
        print(f"drained         : {'clean' if completed else 'timed out'}")
    if args.metrics_out is not None:
        from repro import metrics

        metrics.dump_snapshot(metrics.get_registry().snapshot(), args.metrics_out)
        print(f"metrics written : {args.metrics_out}")
    return 0


def _read_update_stream(path: Path):
    """Yield ingestable events from a stream file.

    Accepts the ``timestamp u v`` insertion shape that
    :func:`read_timestamped_edge_list` defines, extended with
    ``timestamp op u v`` lines (``op`` in ``{insert, delete}``) for
    mixed dynamic workloads.
    """
    from repro.errors import StorageFormatError

    with open(path, "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            try:
                if len(parts) == 3:
                    yield int(parts[0]), int(parts[1]), int(parts[2])
                    continue
                if len(parts) == 4 and parts[1] in ("insert", "delete"):
                    yield int(parts[0]), parts[1], int(parts[2]), int(parts[3])
                    continue
            except ValueError as exc:
                raise StorageFormatError(
                    f"{path}:{line_number}: non-integer field in {stripped!r}"
                ) from exc
            raise StorageFormatError(
                f"{path}:{line_number}: expected 'timestamp u v' or "
                f"'timestamp insert|delete u v', got {stripped!r}"
            )


def _cmd_live(args: argparse.Namespace) -> int:
    import threading

    from repro.live import LIVE_MANIFEST_FILENAME, LiveCliqueStore, LiveIngestor
    from repro.live.ingest import bootstrap_live_store, maintainer_from_store
    from repro.service import CliqueQueryEngine, CliqueQueryServer

    if args.metrics_out is not None:
        from repro import metrics

        metrics.enable()
    graph = None
    if args.graph is not None:
        graph = _open_graph(args.graph).to_adjacency_graph()
    existing = (args.store / LIVE_MANIFEST_FILENAME).exists()
    if existing:
        store = LiveCliqueStore.open(args.store, cache_pages=args.cache_pages)
    elif graph is not None:
        with tempfile.TemporaryDirectory(prefix="repro_live_") as tmp:
            store = bootstrap_live_store(
                args.store, graph, tmp, cache_pages=args.cache_pages
            )
    else:
        store = LiveCliqueStore.initialize(args.store, cache_pages=args.cache_pages)
    maintainer = HStarMaintainer(graph) if graph is not None else HStarMaintainer()
    ingestor = LiveIngestor(maintainer, store)
    store.start_compactor(tail_threshold=args.compact_threshold)
    print(f"live store      : {args.store} "
          f"({'opened' if existing else 'created'}, "
          f"generation {store.generation or '-'}, "
          f"{store.num_cliques} cliques, tail {store.tail_length})")
    server = None
    supervisor = None
    drained = False
    try:
        if args.serve:
            from repro.live import LiveSupervisor

            engine = CliqueQueryEngine(
                store,
                cache_entries=args.cache_entries,
                timeout_seconds=args.timeout,
            )
            if args.supervise:
                supervisor = LiveSupervisor(
                    store,
                    lambda: LiveIngestor(maintainer_from_store(store), store),
                    compactor_tail_threshold=args.compact_threshold,
                ).start()
            server = CliqueQueryServer(
                engine,
                host=args.host,
                port=args.port,
                max_in_flight=args.max_in_flight,
                max_request_bytes=args.max_request_bytes,
                drain_timeout_seconds=args.drain_timeout,
                supervisor=supervisor,
            )
            host, port = server.address
            server.start()
            # Arm the drain signals before ingestion: an operator's
            # SIGTERM must drain cleanly no matter when it lands.
            stop = threading.Event()
            _install_drain_signals(stop)
            print(f"listening on    : {host}:{port}"
                  + (" (supervised)" if supervisor is not None else ""))
            print("protocol        : one JSON request per line; subscriptions "
                  'via {"op": "subscribe", "args": {"v": 0}}')
        if args.stream is not None:
            if supervisor is not None:
                # Feed the supervised worker: each event is durably
                # applied (WAL-first) before it counts as acked, and the
                # watchdog restarts the worker if it dies mid-stream.
                started = time.perf_counter()
                submitted = 0
                unsubmitted = 0
                for event in _read_update_stream(args.stream):
                    if supervisor.submit(event, timeout=60.0):
                        submitted += 1
                    else:
                        unsubmitted += 1
                        if "ingest" in supervisor.gave_up:
                            # The watchdog abandoned ingest after its
                            # crash-loop budget; stop feeding a pipeline
                            # that cannot ack.  Serving continues in the
                            # degraded state health/ready report.
                            print("stream ABANDONED: ingest worker gave up; "
                                  "remaining events skipped (degraded)")
                            break
                supervisor.wait_idle(timeout=300.0)
                elapsed = time.perf_counter() - started
                dropped = supervisor.dropped_events
                print(f"stream ingested : {submitted} edge updates in "
                      f"{elapsed:.2f} s ({supervisor.acked_events} acked"
                      + (f", {dropped} poison dropped" if dropped else "")
                      + (f", {unsubmitted} unsubmitted" if unsubmitted else "")
                      + f"); tail {store.tail_length}, seq {store.last_seq}")
            else:
                applied = ingestor.ingest(_read_update_stream(args.stream))
                report = ingestor.report
                print(f"stream ingested : {applied} edge updates "
                      f"({report.insertions} inserts, {report.deletions} deletes) "
                      f"in {report.seconds:.2f} s "
                      f"({report.updates_per_second:.0f} updates/s)")
                print(f"clique deltas   : {report.deltas_emitted} "
                      f"(+{report.cliques_added} / -{report.cliques_removed}); "
                      f"tail {store.tail_length}, seq {store.last_seq}")
        if args.serve:
            try:
                stop.wait()
            except KeyboardInterrupt:
                pass
            print("draining        : stopped accepting, finishing in-flight")
            completed = server.drain(args.drain_timeout)
            drained = True
            print(f"drained         : {'clean' if completed else 'timed out'}; "
                  f"WAL flushed at seq {store.last_seq}")
    finally:
        if supervisor is not None:
            supervisor.stop()
        if server is not None and not drained:
            server.stop()
        if args.compact_on_exit and store.tail_length:
            generation = store.compact()
            if generation is not None:
                print(f"compacted       : {generation} "
                      f"({store.num_cliques} cliques)")
        print(f"final state     : generation {store.generation_number}, "
              f"{store.num_cliques} live cliques")
        store.close()
    if args.metrics_out is not None:
        from repro import metrics

        metrics.dump_snapshot(metrics.get_registry().snapshot(), args.metrics_out)
        print(f"metrics written : {args.metrics_out}")
    return 0


def _cmd_verify_index(args: argparse.Namespace) -> int:
    from repro.index import CliqueIndex
    from repro.live import LIVE_MANIFEST_FILENAME, LiveCliqueStore

    if (args.index / LIVE_MANIFEST_FILENAME).exists():
        with LiveCliqueStore.open(args.index) as store:
            summary = store.verify()
        kind = "live store"
    else:
        with CliqueIndex(args.index) as index:
            summary = index.verify()
        kind = "index"
    print(f"{kind} {args.index}: OK")
    for key in sorted(summary):
        print(f"  {key}: {summary[key]}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verification import verify_clique_set

    disk = _open_graph(args.graph)
    graph = disk.to_adjacency_graph()
    cliques = (
        frozenset(int(token) for token in line.split())
        for line in args.cliques.read_text().splitlines()
        if line.strip()
    )
    report = verify_clique_set(
        graph, cliques, check_completeness=not args.soundness_only
    )
    print(report.summary())
    for label, offenders in (
        ("not a clique", report.not_cliques),
        ("not maximal", report.not_maximal),
        ("missing", report.missing),
    ):
        for clique in offenders[:5]:
            print(f"  {label}: {sorted(clique)}")
    return 0 if report.ok else 1


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.__main__ import main as experiments_main

    return experiments_main(list(args.names))


if __name__ == "__main__":
    raise SystemExit(main())
