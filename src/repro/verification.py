"""Verification of maximal clique sets (Theorem 5 as a library service).

External-memory results are exactly the kind a downstream user should be
able to audit: this module checks a clique collection against a graph for
the three ways it can be wrong — a member that is not a clique, a member
that is not *maximal*, and a maximal clique that is *missing* — and
returns a structured report rather than a bare boolean.

The full completeness check enumerates the graph's cliques with the
in-memory oracle, so it is meant for graphs that fit in memory (tests,
spot-audits of samples); soundness checking alone is linear in the
output and usable at any size.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.graph.adjacency import AdjacencyGraph

Clique = frozenset


@dataclass
class VerificationReport:
    """Outcome of checking a clique collection against a graph."""

    total_checked: int = 0
    duplicates: int = 0
    not_clique_count: int = 0
    not_maximal_count: int = 0
    missing_count: int = 0
    not_cliques: list[Clique] = field(default_factory=list)
    not_maximal: list[Clique] = field(default_factory=list)
    missing: list[Clique] = field(default_factory=list)
    completeness_checked: bool = False

    @property
    def sound(self) -> bool:
        """Every reported clique is a maximal clique, reported once."""
        return not (self.duplicates or self.not_clique_count or self.not_maximal_count)

    @property
    def complete(self) -> bool:
        """No maximal clique is missing (only meaningful when checked)."""
        return self.completeness_checked and self.missing_count == 0

    @property
    def ok(self) -> bool:
        """Sound, and complete when completeness was checked."""
        return self.sound and (
            not self.completeness_checked or self.missing_count == 0
        )

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.ok:
            scope = "sound and complete" if self.completeness_checked else "sound"
            return f"OK: {self.total_checked} cliques, {scope}"
        problems = []
        if self.duplicates:
            problems.append(f"{self.duplicates} duplicates")
        if self.not_clique_count:
            problems.append(f"{self.not_clique_count} non-cliques")
        if self.not_maximal_count:
            problems.append(f"{self.not_maximal_count} non-maximal")
        if self.missing_count:
            problems.append(f"{self.missing_count} missing")
        return f"FAILED: {', '.join(problems)}"


def verify_clique_set(
    graph: AdjacencyGraph,
    cliques: Iterable[Iterable[int]],
    check_completeness: bool = True,
    max_reported: int = 20,
) -> VerificationReport:
    """Audit a clique collection against ``graph``.

    Parameters
    ----------
    graph:
        The graph the cliques claim to describe.
    cliques:
        The collection under audit (any iterable of vertex iterables).
    check_completeness:
        Also enumerate the graph's true maximal cliques and report any
        that are absent.  Requires the graph to fit in memory.
    max_reported:
        Cap on the offending cliques listed per failure category (the
        counts are exact regardless).
    """
    report = VerificationReport(completeness_checked=check_completeness)
    seen: set[Clique] = set()
    for raw in cliques:
        clique = frozenset(raw)
        report.total_checked += 1
        if clique in seen:
            report.duplicates += 1
            continue
        seen.add(clique)
        if not clique or not _is_clique_of(graph, clique):
            report.not_clique_count += 1
            if len(report.not_cliques) < max_reported:
                report.not_cliques.append(clique)
            continue
        if graph.common_neighbors(clique):
            report.not_maximal_count += 1
            if len(report.not_maximal) < max_reported:
                report.not_maximal.append(clique)
    if check_completeness:
        for clique in tomita_maximal_cliques(graph):
            if clique not in seen:
                report.missing_count += 1
                if len(report.missing) < max_reported:
                    report.missing.append(clique)
    return report


def _is_clique_of(graph: AdjacencyGraph, clique: Clique) -> bool:
    """Clique test that treats unknown vertices as a failure, not an error."""
    if any(v not in graph for v in clique):
        return False
    return graph.is_clique(clique)
