"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still
distinguishing the specific failure modes that matter operationally
(memory-budget exhaustion, malformed on-disk data, invalid graph input).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """An operation received an invalid graph or vertex argument."""


class VertexNotFoundError(GraphError):
    """A vertex referenced by an operation is not present in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError):
    """An edge referenced by an operation is not present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class MemoryBudgetExceeded(ReproError):
    """A memory-model allocation would exceed the configured budget.

    This is the reproduction's analogue of the paper's in-memory baseline
    "running out of memory" on the larger datasets (Figure 3(b)).
    """

    def __init__(self, requested: int, in_use: int, budget: int) -> None:
        super().__init__(
            f"allocation of {requested} units would exceed the memory budget: "
            f"{in_use} units in use of {budget} available"
        )
        self.requested = requested
        self.in_use = in_use
        self.budget = budget


class StorageError(ReproError):
    """The on-disk graph store is malformed or was used incorrectly."""


class StorageFormatError(StorageError):
    """A binary record on disk failed to decode."""


class StorageIOError(StorageError):
    """An underlying I/O operation failed (really or by injection).

    Wraps ``OSError`` from the filesystem — and stands in for it under
    fault injection — so callers catching :class:`ReproError` see every
    disk failure as a typed library error, never a raw builtin.
    """

    def __init__(self, operation: str, path: object, detail: str = "") -> None:
        message = f"{operation} failed on {path}"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.operation = operation
        self.path = path


class CorruptDataError(StorageError):
    """Stored data failed its integrity check (CRC32 mismatch).

    Raised instead of returning silently wrong bytes: a flipped bit in a
    page-store or disk-graph block must become a typed error, never a
    wrong clique stream.
    """


class SharedMemoryError(StorageError):
    """A shared-memory graph segment is missing, stale, or unattachable.

    Raised by the parallel engine's zero-copy path
    (:mod:`repro.parallel.shm`): a worker that cannot attach the
    published CSR segment — or attaches a segment from a different
    publication generation — must fail loudly so the chunk is retried
    or recomputed inline, never silently read from the wrong graph.
    """


class InjectedFaultError(ReproError):
    """A deterministic fault-injection rule fired (see :mod:`repro.faults`).

    Only ever raised when a :class:`~repro.faults.FaultPlan` is threaded
    into a component; production runs without a plan never see it.
    """


class ReductionError(ReproError):
    """The graph-reduction reconstruction map is damaged or inconsistent.

    Raised by :mod:`repro.reduce` when a persisted reconstruction map
    fails its CRC32, its structural replay validation, or an expansion
    invariant at emission time.  The contract mirrors the storage layer:
    a damaged map must become a typed error, never a wrong clique in the
    output stream.
    """


class EstimationError(ReproError):
    """The clique-tree size estimator was invoked on an unusable input."""


class ServiceError(ReproError):
    """The clique query service failed (engine, server, or client side)."""


class QueryTimeoutError(ServiceError):
    """A query exceeded its per-query deadline.

    Raised by :class:`~repro.service.engine.CliqueQueryEngine` instead of
    letting one slow disk read stall a service thread indefinitely; the
    server maps it to an error response, so the connection survives.
    """


class ServiceProtocolError(ServiceError):
    """A request or response violated the JSON-lines wire protocol."""


class ServiceUnavailableError(ServiceError):
    """The service could not be reached or stopped responding.

    Raised by :class:`~repro.service.client.CliqueQueryClient` for
    connect failures, connect/read timeouts, and mid-exchange resets —
    the transport-level failures a retry against a recovered (or
    different) server may fix — instead of hanging on a dead peer.
    """


class ServerOverloadedError(ServiceUnavailableError):
    """The server shed this request under admission control.

    Carries the server's ``retry_after_ms`` hint; the client's backoff
    honours it.  Shedding means the server is alive and answering, so
    this does not count toward the circuit breaker's failure streak.
    """

    def __init__(self, message: str, retry_after_ms: float | None = None) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class CircuitOpenError(ServiceUnavailableError):
    """The client's circuit breaker is open for this endpoint.

    Raised without touching the network: after enough consecutive
    transport failures the breaker fails fast until its half-open timer
    lets a probe through (see
    :class:`~repro.service.client.CircuitBreaker`).
    """
