"""repro — Finding Maximal Cliques in Massive Networks by H*-graph.

A from-scratch reproduction of Cheng, Ke, Fu, Yu & Zhu (SIGMOD 2010):
**ExtMCE**, the first external-memory maximal clique enumeration (MCE)
algorithm, built around the *H\\*-graph* — the h-index core of a scale-free
network plus every edge touching it.

Quick start::

    from repro import AdjacencyGraph, DiskGraph, ExtMCE, ExtMCEConfig

    graph = AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    disk = DiskGraph.create("graph.bin", graph)
    for clique in ExtMCE(disk).enumerate_cliques():
        print(sorted(clique))

Package layout:

* :mod:`repro.core` — the paper's contribution (H*-graph, ``T_H*``,
  Algorithms 1-3, the Knuth tree-size estimator).
* :mod:`repro.storage` — the external-memory substrate (metered disk
  graphs, spill partitions, the explicit memory model).
* :mod:`repro.baselines` — the in-memory (Tomita 2006) and streaming
  (Stix 2004) comparators plus extra oracles.
* :mod:`repro.parallel` — the shared-memory parallel enumeration engine
  (per-vertex search-tree decomposition on a worker pool, Das et al.
  2018 composed with the H*-graph recursion).
* :mod:`repro.dynamic` — Section 5's incremental maintenance of the
  H*-max-clique tree under edge updates.
* :mod:`repro.live` — continuously maintained serving: edge streams
  become durable clique deltas (WAL), folded by background compaction
  and overlaid on the query index in real time.
* :mod:`repro.generators` — deterministic scale-free workload generators
  standing in for the paper's proprietary datasets.
* :mod:`repro.analysis` — network statistics and table rendering.
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from repro.applications import (
    k_clique_communities,
    maximal_independent_sets,
    maximum_clique,
    top_k_cliques,
)
from repro.baselines import (
    StixDynamicMCE,
    bron_kerbosch_maximal_cliques,
    degeneracy_maximal_cliques,
    parallel_bron_kerbosch_maximal_cliques,
    tomita_maximal_cliques,
)
from repro.core import (
    CliqueCollector,
    CliqueCounter,
    CliqueFileSink,
    CliqueTree,
    ExtMCE,
    ExtMCEConfig,
    ExtMCEReport,
    StarGraph,
    build_clique_tree,
    compute_h_index_reference,
    enumerate_star_cliques,
    estimate_tree_size,
    extract_hstar_graph,
    extract_lstar_graph,
)
from repro.errors import (
    CorruptDataError,
    EdgeNotFoundError,
    EstimationError,
    GraphError,
    InjectedFaultError,
    MemoryBudgetExceeded,
    QueryTimeoutError,
    ReductionError,
    ReproError,
    ServiceError,
    ServiceProtocolError,
    StorageError,
    StorageFormatError,
    StorageIOError,
    VertexNotFoundError,
)
from repro.dynamic import HStarMaintainer
from repro.faults import FaultPlan, FaultRule
from repro.graph import AdjacencyGraph
from repro.index import CliqueIndex, CliqueIndexSink, IndexBuildReport, build_index
from repro.live import (
    CliqueDelta,
    LiveCliqueStore,
    LiveIngestor,
    SubscriptionEvent,
    bootstrap_live_store,
)
from repro.metrics import MetricsRegistry
from repro.kernel import (
    CompactGraph,
    maximal_cliques_bitset,
    subproblem_bitset,
)
from repro.storage import (
    BufferPool,
    DiskGraph,
    IOStats,
    MemoryModel,
    RandomAccessDiskGraph,
    edge_list_file_to_disk_graph,
    edge_list_to_disk_graph,
)
from repro.parallel import ParallelExtMCE
from repro.reduce import Reduction, ReductionMap, reduce_graph
from repro.service import (
    CliqueQueryClient,
    CliqueQueryEngine,
    CliqueQueryServer,
)
from repro.telemetry import TraceWriter, load_trace, merge_traces, summarize_trace
from repro.verification import VerificationReport, verify_clique_set

__version__ = "1.0.0"

__all__ = [
    "AdjacencyGraph",
    "BufferPool",
    "CliqueCollector",
    "CliqueCounter",
    "CliqueDelta",
    "CliqueFileSink",
    "CliqueIndex",
    "CliqueIndexSink",
    "CliqueQueryClient",
    "CliqueQueryEngine",
    "CliqueQueryServer",
    "CliqueTree",
    "CompactGraph",
    "CorruptDataError",
    "DiskGraph",
    "EdgeNotFoundError",
    "EstimationError",
    "ExtMCE",
    "ExtMCEConfig",
    "ExtMCEReport",
    "FaultPlan",
    "FaultRule",
    "GraphError",
    "HStarMaintainer",
    "IOStats",
    "IndexBuildReport",
    "InjectedFaultError",
    "LiveCliqueStore",
    "LiveIngestor",
    "MemoryBudgetExceeded",
    "MemoryModel",
    "MetricsRegistry",
    "ParallelExtMCE",
    "QueryTimeoutError",
    "RandomAccessDiskGraph",
    "Reduction",
    "ReductionError",
    "ReductionMap",
    "ReproError",
    "ServiceError",
    "ServiceProtocolError",
    "StarGraph",
    "StixDynamicMCE",
    "StorageError",
    "StorageFormatError",
    "StorageIOError",
    "SubscriptionEvent",
    "TraceWriter",
    "VerificationReport",
    "VertexNotFoundError",
    "__version__",
    "bootstrap_live_store",
    "bron_kerbosch_maximal_cliques",
    "build_clique_tree",
    "build_index",
    "compute_h_index_reference",
    "degeneracy_maximal_cliques",
    "edge_list_file_to_disk_graph",
    "edge_list_to_disk_graph",
    "enumerate_star_cliques",
    "estimate_tree_size",
    "extract_hstar_graph",
    "extract_lstar_graph",
    "k_clique_communities",
    "load_trace",
    "maximal_cliques_bitset",
    "maximal_independent_sets",
    "maximum_clique",
    "merge_traces",
    "parallel_bron_kerbosch_maximal_cliques",
    "reduce_graph",
    "subproblem_bitset",
    "summarize_trace",
    "tomita_maximal_cliques",
    "top_k_cliques",
    "verify_clique_set",
]
