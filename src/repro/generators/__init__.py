"""Deterministic workload generators.

The paper evaluates on four proprietary/offline datasets (HPRD protein
interactions, a Technorati blogs crawl, LiveJournal, and the Yahoo webspam
Web graph).  These generators produce seeded synthetic stand-ins with the
property the H*-graph analysis actually depends on — a power-law degree
distribution (Section 3.2) — plus enough triadic closure that maximal
cliques of non-trivial size exist, as they do in the real networks.
"""

from repro.generators.communities import (
    defective_clique_communities,
    fringed_clique_communities,
)
from repro.generators.datasets import (
    DATASETS,
    DatasetSpec,
    generate_dataset,
    list_datasets,
)
from repro.generators.rank_law import (
    rank_power_law_degrees,
    rank_power_law_graph,
)
from repro.generators.scale_free import (
    barabasi_albert_graph,
    powerlaw_cluster_graph,
    random_gnp_graph,
)
from repro.generators.streams import edge_stream, split_into_periods

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "barabasi_albert_graph",
    "defective_clique_communities",
    "edge_stream",
    "fringed_clique_communities",
    "generate_dataset",
    "list_datasets",
    "powerlaw_cluster_graph",
    "random_gnp_graph",
    "rank_power_law_degrees",
    "rank_power_law_graph",
    "split_into_periods",
]
