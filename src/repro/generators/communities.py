"""Dense-community benchmark graphs.

:func:`defective_clique_communities` generates the regime in which
bitmask candidate sets beat hash-set algebra by the widest margin: vertex
blocks that are *near*-cliques (a clique minus a few random "defect"
edges), stitched together by a sparse preferential-attachment background.
Every removed edge roughly doubles the number of maximal cliques inside
its block, so candidate sets stay block-sized deep into the Tomita
recursion instead of collapsing after one level the way they do on
triangle-closure power-law graphs.  Degrees remain heavy-tailed: block
sizes vary and the background hubs accumulate attachments.

This mirrors the community structure of the paper's web/social target
graphs (Section 6), where the expensive enumeration work concentrates in
dense subgraphs, and is the headline configuration of
``benchmarks/test_kernel_speedup.py``.
"""

from __future__ import annotations

import random

from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph


def defective_clique_communities(
    num_vertices: int,
    seed: int,
    community_min: int = 140,
    community_max: int = 200,
    defects: int = 8,
    background_edges: int = 2,
) -> AdjacencyGraph:
    """A graph of near-clique blocks over a preferential background.

    Vertices ``0..num_vertices-1`` are split into consecutive blocks of
    size uniform in ``[community_min, community_max]``.  Each block
    becomes a clique with ``defects`` random edges removed (each defect
    multiplies the block's maximal-clique count), then every vertex draws
    ``background_edges`` endpoints preferentially (each chosen endpoint
    re-enters the urn), producing heavy-tailed cross-block degrees.
    """
    if community_min < 3 or community_max < community_min:
        raise GraphError("community sizes must satisfy 3 <= min <= max")
    if defects < 0 or background_edges < 0:
        raise GraphError("defects and background_edges must be non-negative")
    rng = random.Random(seed)
    graph = AdjacencyGraph()
    for v in range(num_vertices):
        graph.add_vertex(v)
    start = 0
    while start < num_vertices:
        size = min(rng.randint(community_min, community_max), num_vertices - start)
        members = range(start, start + size)
        edges = [
            (a, b)
            for index, a in enumerate(members)
            for b in list(members)[index + 1 :]
        ]
        removed = set(rng.sample(edges, min(defects, len(edges))))
        for edge in edges:
            if edge not in removed:
                graph.add_edge(*edge)
        start += size
    urn = list(range(num_vertices))
    for v in range(num_vertices):
        for _ in range(background_edges):
            u = rng.choice(urn)
            if u != v:
                graph.add_edge(u, v)
            urn.append(v)
    return graph


def fringed_clique_communities(
    num_vertices: int,
    seed: int,
    core_fraction: float = 0.55,
    community_min: int = 10,
    community_max: int = 16,
    defects: int = 2,
    fringe_degree_max: int = 2,
) -> AdjacencyGraph:
    """Near-clique communities plus a preferential low-degree fringe.

    The regime the reduction pass (:mod:`repro.reduce`) targets — and
    the shape of the paper's real networks: a dense community core where
    the clique mass lives, surrounded by a large fringe of degree-1/2
    vertices attached preferentially (hubs accumulate leaves), with no
    cross-block background inside the core so true twins survive there.
    Roughly ``1 - core_fraction`` of the vertices are peelable fringe
    and the defect-free parts of each block fold as twins.
    """
    if not 0.0 < core_fraction <= 1.0:
        raise GraphError("core_fraction must be in (0, 1]")
    if fringe_degree_max < 1:
        raise GraphError("fringe_degree_max must be at least 1")
    core_vertices = min(num_vertices, max(3, int(num_vertices * core_fraction)))
    graph = defective_clique_communities(
        core_vertices,
        seed,
        community_min=community_min,
        community_max=community_max,
        defects=defects,
        background_edges=0,
    )
    rng = random.Random(seed + 1)
    urn = list(range(core_vertices))
    for v in range(core_vertices, num_vertices):
        graph.add_vertex(v)
        attachments: set[int] = set()
        for _ in range(rng.randint(1, fringe_degree_max)):
            u = rng.choice(urn)
            if u != v:
                attachments.add(u)
        for u in sorted(attachments):
            graph.add_edge(u, v)
            urn.append(u)
        urn.append(v)
    return graph


__all__ = ["defective_clique_communities", "fringed_clique_communities"]
