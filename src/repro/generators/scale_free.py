"""Scale-free graph generators (from scratch, seeded, reproducible).

* :func:`barabasi_albert_graph` — classic preferential attachment; yields a
  power-law degree distribution but little clustering.
* :func:`powerlaw_cluster_graph` — Holme-Kim: preferential attachment with
  triad-formation steps.  This is the workhorse behind the dataset
  stand-ins because real social/biological networks combine a heavy-tailed
  degree distribution with abundant triangles (hence non-trivial maximal
  cliques).
* :func:`random_gnp_graph` — Erdős–Rényi, used by tests and ablations as
  the non-scale-free contrast.

All generators also expose the edge *creation order*, which
:mod:`repro.generators.streams` turns into the timestamped update stream
of the Table 7 experiment.
"""

from __future__ import annotations

import random

from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph

Edge = tuple[int, int]


def barabasi_albert_graph(
    num_vertices: int,
    edges_per_vertex: int,
    seed: int = 0,
) -> AdjacencyGraph:
    """Preferential-attachment graph on ``num_vertices`` vertices."""
    return AdjacencyGraph.from_edges(
        barabasi_albert_edges(num_vertices, edges_per_vertex, seed),
        vertices=range(num_vertices),
    )


def barabasi_albert_edges(
    num_vertices: int,
    edges_per_vertex: int,
    seed: int = 0,
) -> list[Edge]:
    """The BA model's edges in creation order."""
    return powerlaw_cluster_edges(
        num_vertices, edges_per_vertex, triangle_probability=0.0, seed=seed
    )


def powerlaw_cluster_graph(
    num_vertices: int,
    edges_per_vertex: int,
    triangle_probability: float,
    seed: int = 0,
) -> AdjacencyGraph:
    """Holme-Kim powerlaw-cluster graph (power law + triangles)."""
    return AdjacencyGraph.from_edges(
        powerlaw_cluster_edges(num_vertices, edges_per_vertex, triangle_probability, seed),
        vertices=range(num_vertices),
    )


def powerlaw_cluster_edges(
    num_vertices: int,
    edges_per_vertex: int,
    triangle_probability: float,
    seed: int = 0,
) -> list[Edge]:
    """Holme-Kim edges in creation order.

    Each arriving vertex ``v`` makes ``edges_per_vertex`` connections: the
    first by preferential attachment; each further one is, with
    ``triangle_probability``, a *triad formation* step (connect to a random
    neighbor of the previously chosen target, closing a triangle) and
    otherwise another preferential attachment.

    Preferential attachment is implemented with the repeated-endpoints
    list: sampling uniformly from the list of all edge endpoints picks a
    vertex with probability proportional to its degree.
    """
    if edges_per_vertex < 1:
        raise GraphError(f"edges_per_vertex must be >= 1, got {edges_per_vertex}")
    if num_vertices <= edges_per_vertex:
        raise GraphError(
            f"need num_vertices > edges_per_vertex, got {num_vertices} <= {edges_per_vertex}"
        )
    if not 0.0 <= triangle_probability <= 1.0:
        raise GraphError(
            f"triangle_probability must be in [0, 1], got {triangle_probability}"
        )

    rng = random.Random(seed)
    edges: list[Edge] = []
    adjacency: dict[int, set[int]] = {v: set() for v in range(num_vertices)}
    endpoints: list[int] = []  # degree-weighted sampling pool

    def connect(u: int, v: int) -> bool:
        if u == v or v in adjacency[u]:
            return False
        adjacency[u].add(v)
        adjacency[v].add(u)
        endpoints.append(u)
        endpoints.append(v)
        edges.append((min(u, v), max(u, v)))
        return True

    # Seed component: a small clique so early attachments have targets
    # and the graph starts with at least one non-trivial clique.
    seed_size = edges_per_vertex + 1
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            connect(u, v)

    for vertex in range(seed_size, num_vertices):
        target = endpoints[rng.randrange(len(endpoints))]
        connect(vertex, target)
        last_target = target
        attempts = 0
        made = 1
        # Cap attempts so dense corner cases cannot loop forever.
        while made < edges_per_vertex and attempts < 20 * edges_per_vertex:
            attempts += 1
            if rng.random() < triangle_probability and adjacency[last_target]:
                candidates = sorted(adjacency[last_target] - adjacency[vertex] - {vertex})
                if candidates:
                    choice = candidates[rng.randrange(len(candidates))]
                    if connect(vertex, choice):
                        made += 1
                    continue
            target = endpoints[rng.randrange(len(endpoints))]
            if connect(vertex, target):
                made += 1
                last_target = target
    return edges


def random_gnp_graph(num_vertices: int, probability: float, seed: int = 0) -> AdjacencyGraph:
    """Erdős–Rényi ``G(n, p)`` graph with a seeded RNG."""
    if not 0.0 <= probability <= 1.0:
        raise GraphError(f"probability must be in [0, 1], got {probability}")
    rng = random.Random(seed)
    edges = [
        (u, v)
        for u in range(num_vertices)
        for v in range(u + 1, num_vertices)
        if rng.random() < probability
    ]
    return AdjacencyGraph.from_edges(edges, vertices=range(num_vertices))
