"""Timestamped edge streams for the dynamic-update experiment (Table 7).

The paper replays a 12-month blogs crawl whose edges carry timestamps,
reporting update statistics per two-month period P1-P6.  The stand-in uses
the *creation order* of a growing preferential-attachment network as the
timeline — the same "network grows over time" process the crawl captured —
and stamps edges with consecutive integers.
"""

from __future__ import annotations

from repro.errors import GraphError

Edge = tuple[int, int]
TimestampedEdge = tuple[int, int, int]


def edge_stream(edges: list[Edge]) -> list[TimestampedEdge]:
    """Stamp an ordered edge list with consecutive timestamps."""
    return [(stamp, u, v) for stamp, (u, v) in enumerate(edges)]


def split_into_periods(
    stream: list[TimestampedEdge],
    num_periods: int,
    warmup_fraction: float = 0.0,
) -> tuple[list[TimestampedEdge], list[list[TimestampedEdge]]]:
    """Split a stream into a warm-up prefix plus equal periods.

    Returns ``(warmup, periods)``.  The warm-up models the network that
    already exists when maintenance starts (the paper's initial 347K-edge
    snapshot); the remaining stream is divided into ``num_periods`` chunks
    of (nearly) equal size — the paper's P1-P6.
    """
    if num_periods < 1:
        raise GraphError(f"need at least one period, got {num_periods}")
    if not 0.0 <= warmup_fraction < 1.0:
        raise GraphError(f"warmup_fraction must be in [0, 1), got {warmup_fraction}")
    warmup_len = int(len(stream) * warmup_fraction)
    warmup = stream[:warmup_len]
    rest = stream[warmup_len:]
    base, extra = divmod(len(rest), num_periods)
    periods: list[list[TimestampedEdge]] = []
    start = 0
    for index in range(num_periods):
        size = base + (1 if index < extra else 0)
        periods.append(rest[start : start + size])
        start += size
    return warmup, periods
