"""Synthetic stand-ins for the paper's four datasets (Table 2).

Each spec scales a real dataset down to a size a pure-Python MCE run
completes in seconds while keeping its *shape*: the vertex-to-edge ratio
and the power-law-with-clustering structure the H*-graph machinery relies
on.  The ``paper_*`` fields carry the original Table 2 figures so the
experiment harness can print paper-vs-measured side by side.

=============  ==========================  =====================
spec           original network            original size (n / m)
=============  ==========================  =====================
``protein``    HPRD protein interactions   20K / 40K
``blogs``      Technorati blogs crawl      1M / 6.5M
``lj``         LiveJournal friendships     4.8M / 43M
``web``        Yahoo webspam Web graph     10M / 80M
=============  ==========================  =====================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph
from repro.generators.scale_free import powerlaw_cluster_edges


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic dataset."""

    name: str
    num_vertices: int
    edges_per_vertex: int
    triangle_probability: float
    seed: int
    paper_vertices: int
    paper_edges: int
    paper_storage_mb: float
    description: str

    def edges(self) -> list[tuple[int, int]]:
        """The dataset's edges in creation order (the update stream)."""
        return powerlaw_cluster_edges(
            self.num_vertices,
            self.edges_per_vertex,
            self.triangle_probability,
            seed=self.seed,
        )

    def graph(self) -> AdjacencyGraph:
        """Materialise the dataset as an in-memory graph."""
        return AdjacencyGraph.from_edges(self.edges(), vertices=range(self.num_vertices))


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="protein",
            num_vertices=2_000,
            edges_per_vertex=3,
            triangle_probability=0.8,
            seed=101,
            paper_vertices=20_000,
            paper_edges=40_000,
            paper_storage_mb=1.0,
            description="human protein-protein interaction network (HPRD)",
        ),
        DatasetSpec(
            name="blogs",
            num_vertices=6_000,
            edges_per_vertex=6,
            triangle_probability=0.75,
            seed=202,
            paper_vertices=1_000_000,
            paper_edges=6_500_000,
            paper_storage_mb=186.0,
            description="blog co-occurrence network (Technorati crawl)",
        ),
        DatasetSpec(
            name="lj",
            num_vertices=12_000,
            edges_per_vertex=9,
            triangle_probability=0.6,
            seed=303,
            paper_vertices=4_800_000,
            paper_edges=43_000_000,
            paper_storage_mb=1310.0,
            description="LiveJournal friendship network",
        ),
        DatasetSpec(
            name="web",
            num_vertices=20_000,
            edges_per_vertex=8,
            triangle_probability=0.5,
            seed=404,
            paper_vertices=10_000_000,
            paper_edges=80_000_000,
            paper_storage_mb=2613.0,
            description="Web hyperlink graph (Yahoo webspam corpus)",
        ),
    )
}


def list_datasets() -> list[str]:
    """Names of the available dataset specs, in Table 2 order."""
    return list(DATASETS)


def generate_dataset(name: str) -> AdjacencyGraph:
    """Generate a dataset stand-in by name.

    Raises :class:`~repro.errors.GraphError` for unknown names.
    """
    spec = DATASETS.get(name)
    if spec is None:
        raise GraphError(f"unknown dataset {name!r}; known: {', '.join(DATASETS)}")
    return spec.graph()
