"""Generator with an exact Faloutsos rank/degree power law.

The Section 3.2 bounds (Eq. (3) on ``h``, Eq. (7) on ``|G_H*| / |G|``)
assume the degree of the rank-``r`` vertex follows ``d(r) = (r/n) ** R``
exactly.  The Holme-Kim stand-ins only follow it approximately, so this
module provides a configuration-model generator whose *target* degree
sequence is the law itself — letting the bench check the paper's formulas
against graphs that actually satisfy their hypothesis.

Construction: compute the target degrees, then pair stubs uniformly at
random, discarding self-loops and duplicate edges (the standard simple-
graph projection; realised degrees land within a few percent of target,
which the tests assert).
"""

from __future__ import annotations

import random

from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph


def rank_power_law_degrees(num_vertices: int, rank_exponent: float) -> list[int]:
    """The target degree sequence ``d(r) = round((r/n) ** R)``, r = 1..n.

    Degrees are clamped to ``[1, n - 1]`` and the total is made even by
    incrementing the last vertex if needed (a configuration model needs
    an even stub count).
    """
    if num_vertices < 2:
        raise GraphError(f"need at least two vertices, got {num_vertices}")
    if rank_exponent >= 0:
        raise GraphError(f"rank exponent must be negative, got {rank_exponent}")
    degrees = [
        max(1, min(num_vertices - 1, round((r / num_vertices) ** rank_exponent)))
        for r in range(1, num_vertices + 1)
    ]
    if sum(degrees) % 2:
        if degrees[0] < num_vertices - 1:
            degrees[0] += 1  # grow the hub: keeps the sequence monotone
        else:
            # Hub at the simple-graph cap: shrink the *last* vertex with
            # degree >= 2 instead.  Its successor (if any) has degree 1,
            # so monotonicity survives.  At least one such vertex exists
            # whenever the hub is capped (cap >= 2 implies degrees[0] >= 2).
            for index in range(num_vertices - 1, -1, -1):
                if degrees[index] >= 2:
                    degrees[index] -= 1
                    break
            else:  # pragma: no cover - unreachable, kept as a guard
                raise GraphError(
                    "cannot balance the stub count for this degree sequence"
                )
    return degrees


def rank_power_law_graph(
    num_vertices: int,
    rank_exponent: float,
    seed: int = 0,
) -> AdjacencyGraph:
    """A simple graph whose degree sequence follows the rank law.

    Vertex ``0`` is the rank-1 (highest-degree) vertex, matching the
    paper's indexing.  Self-loops and parallel pairings are rejected and
    re-drawn a bounded number of times, then dropped — realised degrees
    are therefore at most the targets, and equal for all but a few
    high-degree vertices.
    """
    degrees = rank_power_law_degrees(num_vertices, rank_exponent)
    rng = random.Random(seed)
    stubs: list[int] = []
    for vertex, degree in enumerate(degrees):
        stubs.extend([vertex] * degree)

    graph = AdjacencyGraph.from_edges([], vertices=range(num_vertices))
    # A few reshuffle rounds let rejected stubs find new partners; the
    # residue after that is dropped (a small fraction of hub stubs).
    for _ in range(4):
        if len(stubs) < 2:
            break
        rng.shuffle(stubs)
        leftovers: list[int] = []
        for index in range(0, len(stubs) - 1, 2):
            u, v = stubs[index], stubs[index + 1]
            if u != v and not graph.has_edge(u, v):
                graph.add_edge(u, v)
            else:
                leftovers.append(u)
                leftovers.append(v)
        if len(stubs) % 2:
            leftovers.append(stubs[-1])
        stubs = leftovers
    return graph
