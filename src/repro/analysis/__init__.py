"""Network analysis helpers and text-table rendering for the experiments."""

from repro.analysis.metrics import (
    CliqueStatistics,
    HStarSizes,
    clique_statistics,
    hstar_sizes,
)
from repro.analysis.tables import format_quantity, render_table

__all__ = [
    "CliqueStatistics",
    "HStarSizes",
    "clique_statistics",
    "format_quantity",
    "hstar_sizes",
    "render_table",
]
