"""Plain-text table rendering in the paper's style.

The experiment harness prints the same rows the paper's tables report, so
a reader can put the two side by side.  Quantities use the paper's K/M
suffix convention (Table 2's caption: "K = 1,000 and M = 1,000,000").
"""

from __future__ import annotations

from collections.abc import Sequence


def format_quantity(value: float) -> str:
    """Format a count the way the paper's tables do (20K, 6.5M, 173M)."""
    if value >= 1_000_000:
        return _trim(value / 1_000_000) + "M"
    if value >= 1_000:
        return _trim(value / 1_000) + "K"
    if isinstance(value, float) and not float(value).is_integer():
        return f"{value:.2f}"
    return str(int(value))


def _trim(scaled: float) -> str:
    """Two/one/zero decimals depending on magnitude, no trailing zeros."""
    if scaled >= 100:
        text = f"{scaled:.0f}"
    elif scaled >= 10:
        text = f"{scaled:.1f}"
    else:
        text = f"{scaled:.2f}"
    return text.rstrip("0").rstrip(".") if "." in text else text


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render an aligned text table with a title rule."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = [title, "=" * max(len(title), sum(widths) + 2 * (len(widths) - 1))]
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("-" * len(lines[1]))
    return "\n".join(lines)
