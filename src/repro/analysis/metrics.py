"""Aggregate metrics behind Tables 4 and 5.

Table 4 reports the sizes of ``H``, ``Hnb``, ``G_H``, ``G_H*`` and
``G_H+`` (with their share of ``|G|``); Table 5 reports h-vertex
closeness/reachability and how the maximal cliques distribute over
h-vertices and h-neighbors.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.hstar import StarGraph
from repro.graph.adjacency import AdjacencyGraph

Clique = frozenset


@dataclass(frozen=True)
class HStarSizes:
    """The Table 4 row for one dataset."""

    h: int
    num_periphery: int
    core_graph_edges: int
    star_graph_edges: int
    extended_graph_edges: int
    total_edges: int

    @property
    def core_fraction(self) -> float:
        """``|G_H| / |G|``."""
        return self.core_graph_edges / self.total_edges if self.total_edges else 0.0

    @property
    def star_fraction(self) -> float:
        """``|G_H*| / |G|`` (the paper measures 4-31%)."""
        return self.star_graph_edges / self.total_edges if self.total_edges else 0.0

    @property
    def extended_fraction(self) -> float:
        """``|G_H+| / |G|`` (the paper measures 25-68%)."""
        return self.extended_graph_edges / self.total_edges if self.total_edges else 0.0


def hstar_sizes(graph: AdjacencyGraph, star: StarGraph) -> HStarSizes:
    """Measure the Table 4 size columns for a graph and its H*-graph."""
    extended = star.extended
    extended_edges = sum(
        1
        for v in extended
        for u in graph.neighbors(v)
        if u in extended and u > v
    )
    return HStarSizes(
        h=star.h,
        num_periphery=len(star.periphery),
        core_graph_edges=star.core_edge_count,
        star_graph_edges=star.size_edges,
        extended_graph_edges=extended_edges,
        total_edges=graph.num_edges,
    )


@dataclass(frozen=True)
class CliqueStatistics:
    """Clique-set breakdown for Table 5."""

    total: int
    containing_core: int
    containing_periphery: int
    max_size: int
    average_size: float


def clique_statistics(
    cliques: Iterable[Clique],
    core: frozenset[int],
    periphery: frozenset[int],
) -> CliqueStatistics:
    """Count cliques touching the h-vertices / h-neighbors (Table 5)."""
    total = 0
    with_core = 0
    with_periphery = 0
    max_size = 0
    size_sum = 0
    for clique in cliques:
        total += 1
        size = len(clique)
        size_sum += size
        if size > max_size:
            max_size = size
        if clique & core:
            with_core += 1
        if clique & periphery:
            with_periphery += 1
    return CliqueStatistics(
        total=total,
        containing_core=with_core,
        containing_periphery=with_periphery,
        max_size=max_size,
        average_size=size_sum / total if total else 0.0,
    )
