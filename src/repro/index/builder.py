"""Deterministic construction of an on-disk clique index.

:func:`build_index` consumes a maximal-clique stream (any iterable of
vertex sets — :meth:`repro.core.extmce.ExtMCE.enumerate_cliques`, a
collector, or a parsed clique file) and materialises the five-file index
layout of :mod:`repro.index.format`.  Cliques are assigned ids by their
rank in canonical order (sorted vertex tuples, lexicographic), so the
output bytes depend only on the clique *set*: the same graph indexed
from a ``workers=4`` bitset run and a serial set-kernel run produces
byte-identical files.  ``tests/index/`` pins this determinism guarantee.

The manifest is written last, with the checkpoint durability discipline
(scratch file → fsync → atomic rename → directory fsync): a crash
mid-build leaves a directory without a manifest, which
:meth:`repro.index.reader.CliqueIndex.open` rejects — never a
half-readable index.
"""

from __future__ import annotations

import json
import os
import zlib
from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import Path
from types import SimpleNamespace
from typing import TYPE_CHECKING

from repro import metrics
from repro.core.result import CliqueFileSink
from repro.errors import StorageError
from repro.index.format import (
    DIRECTORY_ENTRY,
    DIRECTORY_FILENAME,
    DIRECTORY_MAGIC,
    MANIFEST_FILENAME,
    MANIFEST_SCHEMA,
    OFFSET_ENTRY,
    OFFSETS_FILENAME,
    OFFSETS_MAGIC,
    POSTINGS_FILENAME,
    POSTINGS_MAGIC,
    RECORDS_FILENAME,
    RECORDS_MAGIC,
    encode_clique_record,
    encode_postings,
)
from repro.storage.iostats import IOStats
from repro.storage.pagestore import PageStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults import FaultPlan

_METRICS = metrics.bound(
    lambda registry: SimpleNamespace(
        cliques=registry.counter(
            "repro_index_build_cliques_total", "cliques folded into built indexes"
        ),
        postings=registry.counter(
            "repro_index_build_postings_total", "postings entries written by builds"
        ),
        bytes=registry.counter(
            "repro_index_build_bytes_total", "index bytes written by builds"
        ),
    )
)


@dataclass
class IndexBuildReport:
    """What one :func:`build_index` call produced."""

    directory: Path
    num_cliques: int
    num_vertices: int
    max_clique_size: int
    bytes_by_file: dict[str, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        """Total bytes across the index files (manifest included)."""
        return sum(self.bytes_by_file.values())


def build_index(
    cliques: Iterable[frozenset | tuple],
    directory: str | Path,
    io_stats: IOStats | None = None,
    fault_plan: "FaultPlan | None" = None,
) -> IndexBuildReport:
    """Build a clique index under ``directory`` from a clique stream.

    The stream is buffered, deduplicated and canonically ordered before
    serialisation — the id assignment must see the whole set.  Raises
    :class:`~repro.errors.StorageError` on an empty stream (an index
    with nothing to serve is almost certainly a wiring bug upstream).
    """
    ordered = sorted({tuple(sorted(clique)) for clique in cliques})
    if not ordered:
        raise StorageError("refusing to build an index from an empty clique stream")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    io_stats = io_stats if io_stats is not None else IOStats()

    # Record file + offsets directory: one pass over the canonical order.
    records = bytearray(RECORDS_MAGIC)
    offsets = bytearray(OFFSETS_MAGIC)
    postings_map: dict[int, list[int]] = {}
    size_histogram: dict[int, int] = {}
    for clique_id, vertices in enumerate(ordered):
        encoded = encode_clique_record(vertices)
        offsets += OFFSET_ENTRY.pack(len(records), len(encoded), len(vertices))
        records += encoded
        size_histogram[len(vertices)] = size_histogram.get(len(vertices), 0) + 1
        for v in vertices:
            postings_map.setdefault(v, []).append(clique_id)

    # Postings file + vertex directory, ascending by vertex id.
    postings = bytearray(POSTINGS_MAGIC)
    vertex_directory = bytearray(DIRECTORY_MAGIC)
    postings_entries = 0
    for vertex in sorted(postings_map):
        clique_ids = postings_map[vertex]
        encoded = encode_postings(clique_ids)
        vertex_directory += DIRECTORY_ENTRY.pack(
            vertex, len(postings), len(encoded), len(clique_ids)
        )
        postings += encoded
        postings_entries += len(clique_ids)

    blobs = {
        RECORDS_FILENAME: bytes(records),
        OFFSETS_FILENAME: bytes(offsets),
        POSTINGS_FILENAME: bytes(postings),
        DIRECTORY_FILENAME: bytes(vertex_directory),
    }
    for name, blob in blobs.items():
        PageStore(directory / name, io_stats, fault_plan).write_all(blob)

    manifest = {
        "schema": MANIFEST_SCHEMA,
        "num_cliques": len(ordered),
        "num_vertices": len(postings_map),
        "num_postings": postings_entries,
        "max_clique_size": max(size_histogram),
        "size_histogram": {str(size): count for size, count in size_histogram.items()},
        "files": {
            name: {"bytes": len(blob), "crc32": zlib.crc32(blob)}
            for name, blob in sorted(blobs.items())
        },
    }
    _write_manifest(directory, manifest)

    bundle = _METRICS()
    bundle.cliques.inc(len(ordered))
    bundle.postings.inc(postings_entries)
    bytes_by_file = {name: len(blob) for name, blob in blobs.items()}
    bytes_by_file[MANIFEST_FILENAME] = (directory / MANIFEST_FILENAME).stat().st_size
    bundle.bytes.inc(sum(bytes_by_file.values()))
    return IndexBuildReport(
        directory=directory,
        num_cliques=len(ordered),
        num_vertices=len(postings_map),
        max_clique_size=max(size_histogram),
        bytes_by_file=bytes_by_file,
    )


def _write_manifest(directory: Path, manifest: dict) -> None:
    """Durably commit the manifest (scratch → fsync → rename → dir fsync)."""
    target = directory / MANIFEST_FILENAME
    scratch = directory / (MANIFEST_FILENAME + ".tmp")
    try:
        with open(scratch, "w", encoding="ascii") as handle:
            handle.write(json.dumps(manifest, sort_keys=True, indent=2))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, target)
        directory_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(directory_fd)
        finally:
            os.close(directory_fd)
    except OSError as exc:
        raise StorageError(f"failed to commit index manifest at {target}: {exc}") from exc


class CliqueIndexSink:
    """A clique-stream sink that builds an index on :meth:`close`.

    Drop-in alongside :class:`~repro.core.result.CliqueFileSink` — the
    ``enumerate --index-out`` path feeds both from one enumeration pass.
    Optionally tees every clique into ``clique_file`` as well.
    """

    def __init__(
        self,
        directory: str | Path,
        clique_file: CliqueFileSink | None = None,
    ) -> None:
        self._directory = Path(directory)
        self._buffer: list[tuple[int, ...]] = []
        self._tee = clique_file
        self._report: IndexBuildReport | None = None
        self.count = 0

    def accept(self, clique: frozenset | tuple) -> None:
        """Buffer one maximal clique (and tee it, when configured)."""
        self._buffer.append(tuple(sorted(clique)))
        if self._tee is not None:
            self._tee.accept(clique)
        self.count += 1

    @property
    def report(self) -> IndexBuildReport | None:
        """The build report (``None`` until :meth:`close`)."""
        return self._report

    def close(self) -> IndexBuildReport:
        """Build the index from everything accepted; idempotent."""
        if self._tee is not None:
            self._tee.close()
        if self._report is None:
            self._report = build_index(self._buffer, self._directory)
            self._buffer = []
        return self._report

    def abort(self) -> None:
        """Discard everything buffered without building an index."""
        if self._tee is not None:
            self._tee.abort()
        self._buffer = []

    def __enter__(self) -> "CliqueIndexSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        # Only commit the index when the producing enumeration succeeded —
        # a half-streamed index would be silently incomplete.
        if exc_info and exc_info[0] is not None:
            self.abort()
            return
        self.close()
