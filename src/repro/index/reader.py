"""Memory-bounded queries over a persisted clique index.

:class:`CliqueIndex` opens the directory :func:`~repro.index.builder.build_index`
wrote and answers queries through :class:`~repro.storage.bufferpool.BufferPool`
page caches — the resident footprint is the manifest plus a fixed number
of cached pages, never the clique set.  Lookups follow the classic
inverted-index shape: a binary search over the fixed-width vertex
directory finds the postings extent, the postings list yields clique
ids, and the offsets directory turns ids into record-file extents.

Every payload CRC32 is verified on read (disable with
``verify_checksums=False``); a flipped bit raises
:class:`~repro.errors.CorruptDataError`.  :meth:`CliqueIndex.verify`
performs the full offline audit — every record, every postings list,
the file CRCs in the manifest, and the record/postings cross-counts.

Staleness: the index is a snapshot of one enumeration.  When the graph
changes underneath it, :meth:`mark_stale` (wired to
:class:`~repro.dynamic.maintainer.HStarMaintainer` via
:meth:`invalidation_hook`) flags the affected vertices so queries can
report possibly-outdated answers; full incremental maintenance is
deliberately out of scope.
"""

from __future__ import annotations

import heapq
import json
import zlib
from collections.abc import Iterable, Iterator
from pathlib import Path
from types import SimpleNamespace
from typing import TYPE_CHECKING

from repro import metrics
from repro.errors import CorruptDataError, GraphError, StorageError
from repro.index.format import (
    DIRECTORY_ENTRY,
    DIRECTORY_FILENAME,
    DIRECTORY_MAGIC,
    MANIFEST_FILENAME,
    MANIFEST_SCHEMA,
    OFFSET_ENTRY,
    OFFSETS_FILENAME,
    OFFSETS_MAGIC,
    POSTINGS_FILENAME,
    POSTINGS_MAGIC,
    RECORDS_FILENAME,
    RECORDS_MAGIC,
    check_magic,
    decode_clique_record,
    decode_postings,
)
from repro.storage.bufferpool import BufferPool
from repro.storage.iostats import IOStats
from repro.storage.pagestore import PageStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults import FaultPlan

#: Default page-cache capacity per index file.
DEFAULT_CACHE_PAGES = 64

_METRICS = metrics.bound(
    lambda registry: SimpleNamespace(
        postings_reads=registry.counter(
            "repro_index_postings_read_total", "postings lists fetched from disk"
        ),
        record_reads=registry.counter(
            "repro_index_records_read_total", "clique records fetched from disk"
        ),
        stale_marks=registry.counter(
            "repro_index_stale_marked_total", "vertices marked stale by invalidation"
        ),
    )
)


class CliqueIndex:
    """Read-only query interface over one index directory."""

    def __init__(
        self,
        directory: str | Path,
        cache_pages: int = DEFAULT_CACHE_PAGES,
        verify_checksums: bool = True,
        io_stats: IOStats | None = None,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        self._directory = Path(directory)
        self._verify = verify_checksums
        self._io = io_stats if io_stats is not None else IOStats()
        manifest_path = self._directory / MANIFEST_FILENAME
        if not manifest_path.exists():
            raise StorageError(
                f"{self._directory} is not a clique index (missing {MANIFEST_FILENAME}); "
                "an interrupted build leaves no manifest and must be rebuilt"
            )
        try:
            manifest = json.loads(manifest_path.read_text(encoding="ascii"))
        except (ValueError, UnicodeError) as exc:
            raise StorageError(f"malformed index manifest at {manifest_path}: {exc}") from exc
        if manifest.get("schema") != MANIFEST_SCHEMA:
            raise StorageError(
                f"unsupported index schema {manifest.get('schema')!r} "
                f"(expected {MANIFEST_SCHEMA})"
            )
        self._manifest = manifest
        self._stores: dict[str, PageStore] = {}
        self._pools: dict[str, BufferPool] = {}
        for name, magic in (
            (RECORDS_FILENAME, RECORDS_MAGIC),
            (OFFSETS_FILENAME, OFFSETS_MAGIC),
            (POSTINGS_FILENAME, POSTINGS_MAGIC),
            (DIRECTORY_FILENAME, DIRECTORY_MAGIC),
        ):
            store = PageStore(self._directory / name, self._io, fault_plan)
            declared = manifest["files"].get(name, {}).get("bytes")
            if not store.exists():
                raise StorageError(f"index file {store.path} is missing")
            if declared is not None and store.size_bytes() != declared:
                raise StorageError(
                    f"index file {store.path} is {store.size_bytes()} bytes, "
                    f"manifest says {declared}"
                )
            # Validate the magic straight off the store, not through the
            # pool: open-time checks must not pre-warm the page caches
            # (and must not draw from the fault plan's page-read budget).
            check_magic(Path(store.path).read_bytes()[: len(magic)], magic, name)
            self._stores[name] = store
            self._pools[name] = BufferPool(store, capacity_pages=cache_pages)
        self._num_cliques = int(manifest["num_cliques"])
        self._num_dir_entries = int(manifest["num_vertices"])
        self._stale: set[int] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, directory: str | Path, **kwargs) -> "CliqueIndex":
        """Open an index directory (alias for the constructor)."""
        return cls(directory, **kwargs)

    def close(self) -> None:
        """Release every cached page."""
        for pool in self._pools.values():
            pool.drop()

    def __enter__(self) -> "CliqueIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Core lookups
    # ------------------------------------------------------------------
    @property
    def directory(self) -> Path:
        """The index directory on disk."""
        return self._directory

    @property
    def num_cliques(self) -> int:
        """Number of indexed maximal cliques."""
        return self._num_cliques

    @property
    def io_stats(self) -> IOStats:
        """The I/O counters the index's page stores report to."""
        return self._io

    def _directory_entry(self, vertex: int) -> tuple[int, int, int] | None:
        """Binary-search ``postings.dir`` for ``vertex``.

        Returns ``(offset, length, count)`` into ``postings.dat`` or
        ``None`` when the vertex has no postings (not in any clique).
        """
        pool = self._pools[DIRECTORY_FILENAME]
        low, high = 0, self._num_dir_entries - 1
        base = len(DIRECTORY_MAGIC)
        while low <= high:
            mid = (low + high) // 2
            raw = pool.read(base + mid * DIRECTORY_ENTRY.size, DIRECTORY_ENTRY.size)
            entry_vertex, offset, length, count = DIRECTORY_ENTRY.unpack(raw)
            if entry_vertex == vertex:
                return offset, length, count
            if entry_vertex < vertex:
                low = mid + 1
            else:
                high = mid - 1
        return None

    def postings(self, vertex: int) -> tuple[int, ...]:
        """Clique ids containing ``vertex``, ascending (empty when absent)."""
        entry = self._directory_entry(vertex)
        if entry is None:
            return ()
        offset, length, count = entry
        raw = self._pools[POSTINGS_FILENAME].read(offset, length)
        clique_ids, _ = decode_postings(raw, verify=self._verify)
        if len(clique_ids) != count:
            raise CorruptDataError(
                f"postings for vertex {vertex} decoded {len(clique_ids)} ids, "
                f"directory says {count}"
            )
        _METRICS().postings_reads.inc()
        return clique_ids

    def clique(self, clique_id: int) -> tuple[int, ...]:
        """The sorted vertex tuple of clique ``clique_id``."""
        if not 0 <= clique_id < self._num_cliques:
            raise GraphError(
                f"clique id {clique_id} out of range [0, {self._num_cliques})"
            )
        offset, length, _size = self._offset_entry(clique_id)
        raw = self._pools[RECORDS_FILENAME].read(offset, length)
        vertices, _ = decode_clique_record(raw, verify=self._verify)
        _METRICS().record_reads.inc()
        return vertices

    def _offset_entry(self, clique_id: int) -> tuple[int, int, int]:
        base = len(OFFSETS_MAGIC)
        raw = self._pools[OFFSETS_FILENAME].read(
            base + clique_id * OFFSET_ENTRY.size, OFFSET_ENTRY.size
        )
        return OFFSET_ENTRY.unpack(raw)

    def clique_size(self, clique_id: int) -> int:
        """Cardinality of clique ``clique_id`` (offsets directory only)."""
        if not 0 <= clique_id < self._num_cliques:
            raise GraphError(
                f"clique id {clique_id} out of range [0, {self._num_cliques})"
            )
        return self._offset_entry(clique_id)[2]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def cliques_containing(self, vertex: int) -> tuple[int, ...]:
        """Ids of every maximal clique containing ``vertex``."""
        return self.postings(vertex)

    def cliques_containing_edge(self, u: int, v: int) -> tuple[int, ...]:
        """Ids of every maximal clique containing both endpoints.

        Postings intersection, smaller list probing the larger.
        """
        if u == v:
            raise GraphError(f"edge endpoints must differ, got ({u}, {v})")
        first, second = self.postings(u), self.postings(v)
        if not first or not second:
            return ()
        if len(first) > len(second):
            first, second = second, first
        other = set(second)
        return tuple(cid for cid in first if cid in other)

    def membership(self, vertices: Iterable[int]) -> tuple[int, ...]:
        """Ids of every maximal clique containing *all* of ``vertices``.

        A non-empty result for the full vertex set of a candidate clique
        means the candidate is a subset of some maximal clique.
        """
        wanted = sorted(set(vertices))
        if not wanted:
            raise GraphError("membership query needs at least one vertex")
        result: set[int] | None = None
        for vertex in wanted:
            postings = self.postings(vertex)
            if not postings:
                return ()
            result = set(postings) if result is None else result & set(postings)
            if not result:
                return ()
        return tuple(sorted(result))

    def top_k_largest(self, k: int) -> list[tuple[int, ...]]:
        """The ``k`` largest cliques (ties broken by canonical order).

        Scans only the fixed-width offsets directory for sizes, then
        fetches the ``k`` winning records.
        """
        if k <= 0:
            raise GraphError(f"k must be positive, got {k}")
        keys = (
            (-self._offset_entry(cid)[2], cid) for cid in range(self._num_cliques)
        )
        winners = heapq.nsmallest(k, keys)
        return [self.clique(cid) for _neg_size, cid in winners]

    def stats(self) -> dict:
        """Index-wide statistics (manifest counts plus staleness)."""
        manifest = self._manifest
        return {
            "num_cliques": int(manifest["num_cliques"]),
            "num_vertices": int(manifest["num_vertices"]),
            "num_postings": int(manifest["num_postings"]),
            "max_clique_size": int(manifest["max_clique_size"]),
            "size_histogram": {
                int(size): count for size, count in manifest["size_histogram"].items()
            },
            "stale_vertices": len(self._stale),
            "bytes_by_file": {
                name: entry["bytes"] for name, entry in manifest["files"].items()
            },
        }

    # ------------------------------------------------------------------
    # Sequential access (cold path / verification)
    # ------------------------------------------------------------------
    def scan_cliques(self) -> Iterator[tuple[int, tuple[int, ...]]]:
        """Stream ``(clique_id, vertices)`` pairs straight off the record file.

        Bypasses the page caches — this is the degraded path the query
        engine falls back to when a cached read fails, and the
        brute-force oracle the test suite compares every query against.
        """
        store = self._stores[RECORDS_FILENAME]
        buffer = b""
        offset_base = 0
        clique_id = 0
        first = True
        for chunk in store.scan_chunks():
            buffer += chunk
            if first:
                check_magic(buffer, RECORDS_MAGIC, RECORDS_FILENAME)
                buffer = buffer[len(RECORDS_MAGIC):]
                offset_base = len(RECORDS_MAGIC)
                first = False
            position = 0
            while position < len(buffer):
                try:
                    vertices, position = decode_clique_record(
                        buffer, position, verify=self._verify
                    )
                except StorageError as exc:
                    if isinstance(exc, CorruptDataError):
                        raise
                    break  # truncated mid-record: wait for the next chunk
                yield clique_id, vertices
                clique_id += 1
            buffer = buffer[position:]
            offset_base += position
        if buffer:
            raise CorruptDataError(
                f"{RECORDS_FILENAME} ends with {len(buffer)} trailing bytes "
                f"at offset {offset_base} that decode as no record"
            )
        if clique_id != self._num_cliques:
            raise CorruptDataError(
                f"{RECORDS_FILENAME} holds {clique_id} records, "
                f"manifest says {self._num_cliques}"
            )

    def verify(self) -> dict:
        """Full offline integrity audit; raises on the first defect.

        Checks file CRC32s against the manifest, decodes every record and
        postings list (payload CRCs), and cross-checks the postings
        counts against the records.  Returns a summary dict on success.
        """
        for name, declared in sorted(self._manifest["files"].items()):
            blob = PageStore(self._directory / name, self._io).read_all()
            crc = zlib.crc32(blob)
            if crc != declared["crc32"]:
                raise CorruptDataError(
                    f"index file {name} CRC32 {crc:#010x} does not match "
                    f"manifest {declared['crc32']:#010x}"
                )
        counted_postings: dict[int, int] = {}
        records = 0
        for _clique_id, vertices in self.scan_cliques():
            records += 1
            for v in vertices:
                counted_postings[v] = counted_postings.get(v, 0) + 1
        directory_total = 0
        for vertex in sorted(counted_postings):
            clique_ids = self.postings(vertex)
            directory_total += len(clique_ids)
            if len(clique_ids) != counted_postings[vertex]:
                raise CorruptDataError(
                    f"vertex {vertex} has {len(clique_ids)} postings, "
                    f"records imply {counted_postings[vertex]}"
                )
        return {
            "records_verified": records,
            "vertices_verified": len(counted_postings),
            "postings_verified": directory_total,
        }

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    @property
    def stale_vertices(self) -> frozenset[int]:
        """Vertices whose postings may be outdated by graph updates."""
        return frozenset(self._stale)

    def is_stale(self, *vertices: int) -> bool:
        """Whether any of ``vertices`` has been marked stale."""
        return any(v in self._stale for v in vertices)

    def mark_stale(self, *vertices: int) -> None:
        """Flag vertices as possibly outdated (idempotent)."""
        fresh = [v for v in vertices if v not in self._stale]
        if fresh:
            self._stale.update(fresh)
            _METRICS().stale_marks.inc(len(fresh))

    def clear_stale(self) -> None:
        """Reset the stale set (after a rebuild from a fresh stream)."""
        self._stale.clear()

    def invalidation_hook(self):
        """A callable for :meth:`HStarMaintainer.register_update_hook`.

        Every applied edge insertion or deletion can change which maximal
        cliques its endpoints belong to, so both endpoints' postings are
        flagged stale.  Full incremental index maintenance is future
        work; the hook guarantees staleness is at least *visible*.
        """

        def hook(kind: str, u: int, v: int) -> None:  # noqa: ARG001 — uniform signature
            self.mark_stale(u, v)

        return hook
