"""Persisted clique index over the ExtMCE stream.

The paper motivates maximal clique enumeration as a *reusable* result —
an index that downstream analyses query, not a one-shot report (Section
1).  This package is that index: :func:`build_index` streams cliques
into an on-disk layout (delta-encoded, CRC32-checksummed records plus an
inverted vertex→clique-id postings file), and :class:`CliqueIndex`
answers containment, edge, membership and top-k queries through bounded
page caches.  :mod:`repro.service` builds the concurrent query engine
and network server on top.
"""

from repro.index.builder import CliqueIndexSink, IndexBuildReport, build_index
from repro.index.format import MANIFEST_SCHEMA
from repro.index.reader import CliqueIndex

__all__ = [
    "CliqueIndex",
    "CliqueIndexSink",
    "IndexBuildReport",
    "MANIFEST_SCHEMA",
    "build_index",
]
