"""Binary layouts for the persisted clique index.

An index directory holds four binary files plus a JSON manifest::

    cliques.dat    clique records, one per maximal clique, in canonical
                   (lexicographic) order; clique ids are implicit ranks
    cliques.idx    fixed 16-byte directory entry per clique id
    postings.dat   per-vertex postings lists (ascending clique ids)
    postings.dir   fixed 24-byte directory entry per vertex, ascending
    manifest.json  counts, per-file CRC32s, size histogram (commit point)

All integers are little-endian; variable-width integers use unsigned
LEB128 ("varint").  Sorted sequences (clique vertices, postings lists)
are delta-encoded — the first element raw, then successive gaps — so
records stay small on the locally-dense id ranges community graphs
produce.  Every variable-length payload carries a trailing CRC32, the
same discipline as DiskGraph format v2: a flipped bit surfaces as a
typed :class:`~repro.errors.CorruptDataError`, never a silently wrong
query answer.

The layouts are fully deterministic: the same clique *set* always
serialises to the same bytes, independent of enumeration order, worker
count, or kernel.  ``tests/index/test_builder.py`` pins that guarantee.
"""

from __future__ import annotations

import struct
import zlib
from typing import Sequence

from repro.errors import CorruptDataError, StorageFormatError

#: Magic bytes opening each index file (8 bytes each, versioned).
RECORDS_MAGIC = b"RPXCLQ1\n"
OFFSETS_MAGIC = b"RPXIDX1\n"
POSTINGS_MAGIC = b"RPXPST1\n"
DIRECTORY_MAGIC = b"RPXDIR1\n"

#: Manifest schema identifier; bump on incompatible layout changes.
MANIFEST_SCHEMA = "repro.index/1"

#: Filenames inside an index directory.
RECORDS_FILENAME = "cliques.dat"
OFFSETS_FILENAME = "cliques.idx"
POSTINGS_FILENAME = "postings.dat"
DIRECTORY_FILENAME = "postings.dir"
MANIFEST_FILENAME = "manifest.json"

#: ``cliques.idx`` entry: byte offset (u64), byte length (u32), clique
#: size in vertices (u32).  The size rides in the directory so top-k
#: queries never touch the record file.
OFFSET_ENTRY = struct.Struct("<QII")

#: ``postings.dir`` entry: vertex (u64), byte offset (u64), byte length
#: (u32), postings count (u32), sorted ascending by vertex.
DIRECTORY_ENTRY = struct.Struct("<QQII")

_CRC = struct.Struct("<I")


# ---------------------------------------------------------------------------
# Varint + delta codecs
# ---------------------------------------------------------------------------
def encode_varint(value: int) -> bytes:
    """Unsigned LEB128 encoding of a non-negative integer."""
    if value < 0:
        raise StorageFormatError(f"varints are unsigned, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(buffer: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode one varint at ``offset``; return ``(value, next_offset)``.

    Raises :class:`~repro.errors.StorageFormatError` when the buffer ends
    mid-varint (a truncated record).
    """
    value = 0
    shift = 0
    while True:
        if offset >= len(buffer):
            raise StorageFormatError("truncated varint")
        byte = buffer[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7


def encode_delta_list(values: Sequence[int]) -> bytes:
    """Delta-encode a strictly ascending sequence of non-negative ints."""
    out = bytearray()
    previous = None
    for value in values:
        if previous is None:
            out += encode_varint(value)
        else:
            if value <= previous:
                raise StorageFormatError(
                    f"delta lists must be strictly ascending, got {value} after {previous}"
                )
            out += encode_varint(value - previous)
        previous = value
    return bytes(out)


def decode_delta_list(buffer: bytes, count: int, offset: int = 0) -> tuple[tuple[int, ...], int]:
    """Decode ``count`` delta-encoded values; return ``(values, next_offset)``."""
    values = []
    current = 0
    for position in range(count):
        delta, offset = decode_varint(buffer, offset)
        current = delta if position == 0 else current + delta
        values.append(current)
    return tuple(values), offset


# ---------------------------------------------------------------------------
# Clique records (cliques.dat)
# ---------------------------------------------------------------------------
def encode_clique_record(vertices: Sequence[int]) -> bytes:
    """Serialise one clique: varint size, delta-encoded vertices, CRC32."""
    if not vertices:
        raise StorageFormatError("cannot encode an empty clique")
    payload = encode_varint(len(vertices)) + encode_delta_list(vertices)
    return payload + _CRC.pack(zlib.crc32(payload))


def decode_clique_record(
    buffer: bytes, offset: int = 0, verify: bool = True
) -> tuple[tuple[int, ...], int]:
    """Decode one clique record at ``offset``; return ``(vertices, next_offset)``.

    Self-delimiting, so a sequential scan can walk the record file
    without the offsets directory.  Raises
    :class:`~repro.errors.StorageFormatError` on truncation and
    :class:`~repro.errors.CorruptDataError` on a CRC mismatch.
    """
    size, body = decode_varint(buffer, offset)
    if size == 0:
        raise StorageFormatError(f"empty clique record at offset {offset}")
    vertices, end = decode_delta_list(buffer, size, body)
    if end + _CRC.size > len(buffer):
        raise StorageFormatError(f"truncated clique record checksum at offset {offset}")
    if verify:
        (stored,) = _CRC.unpack_from(buffer, end)
        computed = zlib.crc32(buffer[offset:end])
        if stored != computed:
            raise CorruptDataError(
                f"clique record checksum mismatch at offset {offset}: "
                f"stored {stored:#010x}, computed {computed:#010x}"
            )
    return vertices, end + _CRC.size


# ---------------------------------------------------------------------------
# Postings lists (postings.dat)
# ---------------------------------------------------------------------------
def encode_postings(clique_ids: Sequence[int]) -> bytes:
    """Serialise one vertex's postings: varint count, deltas, CRC32."""
    payload = encode_varint(len(clique_ids)) + encode_delta_list(clique_ids)
    return payload + _CRC.pack(zlib.crc32(payload))


def decode_postings(
    buffer: bytes, offset: int = 0, verify: bool = True
) -> tuple[tuple[int, ...], int]:
    """Decode one postings list at ``offset``; return ``(ids, next_offset)``."""
    count, body = decode_varint(buffer, offset)
    clique_ids, end = decode_delta_list(buffer, count, body)
    if end + _CRC.size > len(buffer):
        raise StorageFormatError(f"truncated postings checksum at offset {offset}")
    if verify:
        (stored,) = _CRC.unpack_from(buffer, end)
        computed = zlib.crc32(buffer[offset:end])
        if stored != computed:
            raise CorruptDataError(
                f"postings checksum mismatch at offset {offset}: "
                f"stored {stored:#010x}, computed {computed:#010x}"
            )
    return clique_ids, end + _CRC.size


def check_magic(data: bytes, magic: bytes, filename: str) -> None:
    """Validate a file's opening magic bytes."""
    if data[: len(magic)] != magic:
        raise StorageFormatError(
            f"{filename} does not start with {magic!r} (got {data[:len(magic)]!r})"
        )
