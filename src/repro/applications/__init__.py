"""Applications built on maximal clique enumeration.

Section 1 of the paper motivates MCE through the problems it feeds:
maximal independent sets, clustering and community detection in social
networks, and dense-module detection in biological networks.  This package
implements those consumers on top of the library's enumerators, each in an
ExtMCE-friendly streaming form where the problem allows it.
"""

from repro.applications.cliques import (
    k_clique_communities,
    maximum_clique,
    top_k_cliques,
)
from repro.applications.independent_sets import (
    complement_graph,
    maximal_independent_sets,
    minimal_vertex_covers,
)

__all__ = [
    "complement_graph",
    "k_clique_communities",
    "maximal_independent_sets",
    "maximum_clique",
    "minimal_vertex_covers",
    "top_k_cliques",
]
