"""Clique-stream consumers: maximum clique, top-k, clique percolation.

All three operate on a *stream* of maximal cliques, so they compose with
:meth:`repro.core.extmce.ExtMCE.enumerate_cliques` without materialising
the full (possibly enormous) clique set — the same discipline the paper's
output model follows.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable

from repro.errors import GraphError

Clique = frozenset


def maximum_clique(cliques: Iterable[Clique]) -> Clique:
    """The largest clique in a maximal clique stream (smallest-id tiebreak).

    Raises :class:`~repro.errors.GraphError` on an empty stream.
    """
    best: Clique | None = None
    best_key: tuple[int, list] | None = None
    for clique in cliques:
        key = (-len(clique), sorted(clique))
        if best_key is None or key < best_key:
            best = clique
            best_key = key
    if best is None:
        raise GraphError("cannot take the maximum of an empty clique stream")
    return best


def top_k_cliques(cliques: Iterable[Clique], k: int) -> list[Clique]:
    """The ``k`` largest maximal cliques from a stream, in O(k) memory.

    Returned in descending size order (ascending vertex ids on ties).
    """
    if k <= 0:
        raise GraphError(f"k must be positive, got {k}")
    # Min-heap of (size, reversed-tiebreak) keeping the k best seen so far.
    heap: list[tuple[int, list, Clique]] = []
    for clique in cliques:
        entry = (len(clique), [-v for v in sorted(clique, reverse=True)], clique)
        if len(heap) < k:
            heapq.heappush(heap, entry)
        elif entry > heap[0]:
            heapq.heapreplace(heap, entry)
    ordered = sorted(heap, key=lambda e: (-e[0], sorted(e[2])))
    return [entry[2] for entry in ordered]


def k_clique_communities(cliques: Iterable[Clique], k: int) -> list[frozenset]:
    """Clique-percolation communities (Palla et al.) from maximal cliques.

    Two cliques of size >= ``k`` are *adjacent* when they share at least
    ``k - 1`` vertices; a community is the vertex union of a connected
    component of that clique-adjacency relation.  This is the social
    network analysis use-case the paper's introduction cites: overlapping
    communities anchored on dense groups.

    Returns communities as vertex sets, largest first.
    """
    if k < 2:
        raise GraphError(f"k must be at least 2, got {k}")
    qualified = [clique for clique in cliques if len(clique) >= k]
    if not qualified:
        return []

    # Union-find over clique indices.
    parent = list(range(len(qualified)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    # Index cliques by each (k-1)-subset would be exponential; instead use
    # the standard vertex-index: cliques sharing k-1 vertices share every
    # vertex of that overlap, so compare cliques that co-occur on a vertex.
    by_vertex: dict[int, list[int]] = {}
    for index, clique in enumerate(qualified):
        for v in clique:
            by_vertex.setdefault(v, []).append(index)
    for indices in by_vertex.values():
        for i, a in enumerate(indices):
            for b in indices[i + 1 :]:
                if find(a) == find(b):
                    continue
                if len(qualified[a] & qualified[b]) >= k - 1:
                    union(a, b)

    communities: dict[int, set] = {}
    for index, clique in enumerate(qualified):
        communities.setdefault(find(index), set()).update(clique)
    return sorted(
        (frozenset(members) for members in communities.values()),
        key=lambda c: (-len(c), sorted(c)),
    )
