"""Maximal independent sets and minimal vertex covers via MCE.

The oldest connection in the paper's Section 1: a maximal independent set
of ``G`` is a maximal clique of the complement graph (Tsukiyama et al.,
reference [28]), and its complement within ``V`` is a minimal vertex
cover.  Materialising the complement is Θ(n²), so these helpers are meant
for moderately sized graphs — the library enforces an explicit limit
rather than silently degrading.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph

Clique = frozenset

#: Complementing beyond this many vertices is refused (Θ(n²) blow-up).
MAX_COMPLEMENT_VERTICES = 3_000


def complement_graph(graph: AdjacencyGraph) -> AdjacencyGraph:
    """The complement of ``graph`` on the same vertex set.

    Raises :class:`~repro.errors.GraphError` above
    ``MAX_COMPLEMENT_VERTICES`` vertices.
    """
    if graph.num_vertices > MAX_COMPLEMENT_VERTICES:
        raise GraphError(
            f"refusing to complement a graph with {graph.num_vertices} vertices "
            f"(> {MAX_COMPLEMENT_VERTICES}); the complement would be dense"
        )
    vertices = sorted(graph.vertices())
    complement = AdjacencyGraph()
    for v in vertices:
        complement.add_vertex(v)
    for i, u in enumerate(vertices):
        neighbors = graph.neighbors(u)
        for v in vertices[i + 1 :]:
            if v not in neighbors:
                complement.add_edge(u, v)
    return complement


def maximal_independent_sets(graph: AdjacencyGraph) -> Iterator[Clique]:
    """Enumerate all maximal independent sets of ``graph``.

    Each yielded set is pairwise non-adjacent and cannot be extended.
    """
    yield from tomita_maximal_cliques(complement_graph(graph))


def minimal_vertex_covers(graph: AdjacencyGraph) -> Iterator[Clique]:
    """Enumerate all minimal vertex covers of ``graph``.

    A vertex set is a minimal cover iff its complement in ``V`` is a
    maximal independent set.
    """
    everything = frozenset(graph.vertices())
    for independent in maximal_independent_sets(graph):
        yield everything - independent
