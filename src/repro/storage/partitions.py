"""Neighbor-partition spill files (paper Section 4.2.3).

Computing ``maxCL(HNB(C1))`` in Algorithm 2 needs the edges *between*
h-neighbors, which the H*-graph deliberately omits.  The paper's solution:
order the h-neighbor leaves of ``T_H*`` by DFS traversal, split them into
partitions whose adjacency lists fit the available memory ``N``, write each
partition to consecutive disk pages in one pass over ``G``, and load one
partition at a time.

This module reproduces that machinery over :class:`DiskGraph`:

* :meth:`HnbPartitionStore.build` performs two sequential scans of ``G`` —
  one to learn each h-neighbor's within-``Hnb`` degree (needed to place
  partition boundaries; the paper assumes this is known), one to write the
  partition files.
* :meth:`HnbPartitionStore.induced_subgraph` serves an ``HNB`` set by
  loading the partitions that contain its members, charging resident
  partitions to the memory model and evicting least-recently-used ones.
"""

from __future__ import annotations

import struct
import zlib
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.errors import CorruptDataError, StorageError, StorageFormatError
from repro.graph.adjacency import AdjacencyGraph
from repro.storage.diskgraph import DiskGraph
from repro.storage.memory import MemoryModel
from repro.storage.pagestore import PageStore

#: Per-record header: vertex id, neighbor count, CRC32 over the neighbor
#: block.  Spill files are written and read within one run, so the layout
#: needs no version negotiation — but it does need integrity: a torn
#: write or flipped bit in a partition would otherwise surface as a wrong
#: ``maxCL`` result, i.e. a silently wrong clique stream.
_RECORD_HEADER = struct.Struct("<QII")


def encode_partition_record(vertex: int, neighbors: Sequence[int]) -> bytes:
    """Serialise one spill-file record (checksummed)."""
    body = struct.pack(f"<{len(neighbors)}Q", *neighbors)
    return _RECORD_HEADER.pack(vertex, len(neighbors), zlib.crc32(body)) + body


def parse_partition_records(
    data: bytes, verify: bool = True
) -> dict[int, frozenset[int]]:
    """Decode a partition file's record stream to ``vertex -> neighbors``.

    Raises :class:`~repro.errors.StorageFormatError` on truncation and
    :class:`~repro.errors.CorruptDataError` on a checksum mismatch —
    never returns a partial or damaged adjacency silently.
    """
    loaded: dict[int, frozenset[int]] = {}
    offset = 0
    while offset < len(data):
        try:
            vertex, degree, stored = _RECORD_HEADER.unpack_from(data, offset)
            offset += _RECORD_HEADER.size
            body = data[offset : offset + 8 * degree]
            if len(body) < 8 * degree:
                raise StorageFormatError(
                    f"truncated partition record for vertex {vertex}"
                )
            neighbors = struct.unpack(f"<{degree}Q", body)
        except struct.error as exc:
            raise StorageFormatError(f"malformed partition record: {exc}") from exc
        if verify:
            computed = zlib.crc32(body)
            if stored != computed:
                raise CorruptDataError(
                    f"partition record checksum mismatch for vertex {vertex}: "
                    f"stored {stored:#010x}, computed {computed:#010x}"
                )
        offset += 8 * degree
        loaded[vertex] = frozenset(neighbors)
    return loaded


def read_partition_file(
    path: str | Path, verify: bool = True
) -> dict[int, frozenset[int]]:
    """Read one spill file directly, bypassing :class:`PageStore`.

    This is the worker-side entry point of :mod:`repro.parallel`: worker
    processes must not share the driver's append-mode store handles or its
    :class:`~repro.storage.iostats.IOStats`, so they open the (read-only,
    already fully written) partition files themselves.  Pages read this
    way are reported back to the driver and merged into its I/O counters
    after the fan-out, keeping the metered totals honest.
    """
    path = Path(path)
    if not path.exists():
        raise StorageError(f"partition file {path} does not exist")
    return parse_partition_records(path.read_bytes(), verify=verify)


class HnbPartitionStore:
    """Partitioned on-disk adjacency among a designated vertex set."""

    def __init__(
        self,
        directory: Path,
        partitions: list[list[int]],
        stores: list[PageStore],
        memory: MemoryModel | None,
        max_resident: int,
    ) -> None:
        self._directory = directory
        self._partitions = partitions
        self._stores = stores
        self._memory = memory
        self._max_resident = max_resident
        self._partition_of = {
            v: index for index, members in enumerate(partitions) for v in members
        }
        # LRU order of resident partition indices (most recent last).
        self._resident: dict[int, dict[int, frozenset[int]]] = {}
        self._resident_units: dict[int, int] = {}
        self._lru: list[int] = []
        self.partition_loads = 0
        if memory is not None:
            memory.add_reclaimer(self._reclaim_one)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        disk_graph: DiskGraph,
        members: Sequence[int],
        directory: str | Path,
        memory_budget_units: int,
        memory: MemoryModel | None = None,
        max_resident: int = 4,
    ) -> "HnbPartitionStore":
        """Spill the within-``members`` adjacency of ``disk_graph``.

        ``members`` is the h-neighbor list in DFS-leaf order (duplicates
        allowed; first occurrence wins).  ``memory_budget_units`` bounds
        the size of each partition, measured in stored vertex ids.
        """
        if memory_budget_units <= 0:
            raise StorageError(
                f"partition memory budget must be positive, got {memory_budget_units}"
            )
        ordered = list(dict.fromkeys(members))
        member_set = set(ordered)

        # Pass 1: within-member degree of each member.
        inner_degree = {v: 0 for v in ordered}
        for record in disk_graph.scan():
            if record.vertex in member_set:
                inner_degree[record.vertex] = sum(
                    1 for u in record.neighbors if u in member_set
                )

        # Place partition boundaries along the DFS order.
        partitions: list[list[int]] = []
        current: list[int] = []
        current_units = 0
        for v in ordered:
            units = 1 + inner_degree[v]
            if current and current_units + units > memory_budget_units:
                partitions.append(current)
                current = []
                current_units = 0
            current.append(v)
            current_units += units
        if current:
            partitions.append(current)

        # Pass 2: write each member's within-member adjacency to its file.
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        partition_of = {
            v: index for index, group in enumerate(partitions) for v in group
        }
        stores = [
            PageStore(
                directory / f"hnb_part_{index:05d}.bin",
                disk_graph.io_stats,
                fault_plan=disk_graph.fault_plan,
            )
            for index in range(len(partitions))
        ]
        for store in stores:
            store.write_all(b"")
        buffers: list[bytearray] = [bytearray() for _ in partitions]
        for record in disk_graph.scan():
            index = partition_of.get(record.vertex)
            if index is None:
                continue
            inner = [u for u in record.neighbors if u in member_set]
            buffers[index] += encode_partition_record(record.vertex, inner)
            if len(buffers[index]) >= 1 << 20:
                stores[index].append(bytes(buffers[index]))
                buffers[index].clear()
        for store, buffer in zip(stores, buffers):
            if buffer:
                store.append(bytes(buffer))
        return cls(directory, partitions, stores, memory, max_resident)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        """Number of spill partitions."""
        return len(self._partitions)

    @property
    def io_stats(self):
        """The I/O counters the spill files report to (``None`` when the
        store has no partitions).  The parallel driver folds worker-side
        page reads back in here."""
        return self._stores[0].io_stats if self._stores else None

    def partition_paths(self) -> list[Path]:
        """Filesystem location of every spill file, by partition index.

        Workers re-open these read-only (:func:`read_partition_file`)
        instead of sharing the driver's store handles.
        """
        return [store.path for store in self._stores]

    def partitions_for(self, vertices: Iterable[int]) -> frozenset[int]:
        """Indices of the partitions covering ``vertices``.

        Callers batching many ``HNB`` queries sort them by this key so
        consecutive queries hit resident partitions (the locality the
        paper's DFS-leaf partition order provides).
        """
        indices: set[int] = set()
        for v in vertices:
            index = self._partition_of.get(v)
            if index is None:
                raise StorageError(f"vertex {v} is not covered by the partition store")
            indices.add(index)
        return frozenset(indices)

    def partition_sizes(self) -> list[int]:
        """Per-partition on-disk size in approximate units (8-byte ids)."""
        return [
            self._partition_units_on_disk(index)
            for index in range(len(self._partitions))
        ]

    def induced_subgraph(self, vertices: Iterable[int]) -> AdjacencyGraph:
        """The subgraph induced on ``vertices`` by within-member edges.

        Loads (and meters) every partition containing a requested vertex.
        Unknown vertices — ones outside the member set — raise
        :class:`~repro.errors.StorageError`, since silently returning an
        empty neighborhood would corrupt clique maximality decisions.
        """
        wanted = list(dict.fromkeys(vertices))
        needed_partitions: list[int] = []
        for v in wanted:
            index = self._partition_of.get(v)
            if index is None:
                raise StorageError(f"vertex {v} is not covered by the partition store")
            if index not in needed_partitions:
                needed_partitions.append(index)
        adjacency: dict[int, frozenset[int]] = {}
        for index in needed_partitions:
            loaded = self._load_raw(index)
            for v in wanted:
                if v in loaded:
                    adjacency[v] = loaded[v]
        wanted_set = set(wanted)
        graph = AdjacencyGraph()
        for v in wanted:
            graph.add_vertex(v)
        for v in wanted:
            for u in adjacency.get(v, frozenset()) & wanted_set:
                graph.add_edge(v, u)
        return graph

    def close(self) -> None:
        """Evict all resident partitions and delete the spill files."""
        for index in list(self._resident):
            self._evict(index)
        if self._memory is not None:
            self._memory.remove_reclaimer(self._reclaim_one)
        for store in self._stores:
            store.delete()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _load_raw(self, index: int) -> dict[int, frozenset[int]]:
        if index in self._resident:
            self._lru.remove(index)
            self._lru.append(index)
            return self._resident[index]
        while len(self._resident) >= self._max_resident:
            self._evict(self._lru[0])
        loaded = parse_partition_records(self._stores[index].read_all())
        units = sum(1 + len(neighbors) for neighbors in loaded.values())
        if self._memory is not None:
            # Memory pressure may reclaim resident partitions; the one
            # being loaded is not in the LRU yet and cannot be victimised.
            self._memory.allocate(units, label="hnb partition")
        self._resident[index] = loaded
        self._resident_units[index] = units
        self._lru.append(index)
        self.partition_loads += 1
        return loaded

    def _reclaim_one(self) -> bool:
        """Memory-pressure hook: drop the least-recently-used partition."""
        if not self._lru:
            return False
        self._evict(self._lru[0])
        return True

    def _evict(self, index: int) -> None:
        self._resident.pop(index, None)
        self._lru.remove(index)
        units = self._resident_units.pop(index, 0)
        if self._memory is not None:
            self._memory.release(units, label="hnb partition")

    def _partition_units_on_disk(self, index: int) -> int:
        size = self._stores[index].size_bytes()
        return size // 8  # ids are 8 bytes; headers approximate to ids
