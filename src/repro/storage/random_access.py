"""Random-access adjacency served from disk through a buffer pool.

This is the access path the paper says *not* to build (Section 1): an
algorithm that wants arbitrary neighborhoods of a disk-resident graph must
keep a vertex→offset index and fetch records through a bounded page cache,
paying a seek for every miss.  The library implements it anyway — it is
the honest comparator for the random-vs-sequential experiment, and a
useful tool in its own right for point lookups.
"""

from __future__ import annotations

from repro.errors import VertexNotFoundError
from repro.storage.bufferpool import BufferPool
from repro.storage.diskgraph import DiskGraph
from repro.storage.memory import MemoryModel

#: Accounting units per offset-index entry (vertex id + offset).
UNITS_PER_INDEX_ENTRY = 2


class RandomAccessDiskGraph:
    """Point-lookup view of a :class:`DiskGraph`.

    Construction performs one sequential scan to build the offset index
    (charged to the memory model, as is the page cache).  Every
    :meth:`neighbors` call reads the record's pages through the pool —
    a cache hit is free, a miss costs a metered seek + page read.
    """

    def __init__(
        self,
        disk_graph: DiskGraph,
        capacity_pages: int,
        policy: str = "lru",
        memory: MemoryModel | None = None,
    ) -> None:
        self._disk = disk_graph
        self._memory = memory
        self._index: dict[int, tuple[int, int]] = {}
        offset = disk_graph.header_bytes
        for record in disk_graph.scan():
            size = disk_graph.record_nbytes(record.degree)
            self._index[record.vertex] = (offset, size)
            offset += size
        if memory is not None:
            memory.allocate(
                UNITS_PER_INDEX_ENTRY * len(self._index), label="offset index"
            )
        self._pool = BufferPool(
            disk_graph.page_store, capacity_pages, policy=policy, memory=memory
        )

    # ------------------------------------------------------------------
    # Graph interface
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices in the underlying graph."""
        return self._disk.num_vertices

    def vertices(self):
        """Iterate all vertex ids (from the in-memory index)."""
        return iter(self._index)

    def neighbors(self, vertex: int) -> frozenset[int]:
        """The neighbor set of ``vertex``, fetched through the pool."""
        try:
            offset, size = self._index[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None
        record, _ = self._disk.decode_one(self._pool.read(offset, size))
        return frozenset(record.neighbors)

    def degree(self, vertex: int) -> int:
        """Degree of ``vertex`` (decoded through the pool)."""
        return len(self.neighbors(vertex))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pool(self) -> BufferPool:
        """The page cache (hit/miss statistics live here)."""
        return self._pool

    def close(self) -> None:
        """Drop the cache and release the index's memory charge."""
        self._pool.drop()
        if self._memory is not None:
            self._memory.release(
                UNITS_PER_INDEX_ENTRY * len(self._index), label="offset index"
            )
            self._memory = None
