"""External-memory conversion of raw edge lists into DiskGraph files.

The paper assumes ``G`` already sits on disk as adjacency lists sorted by
vertex id.  Real datasets arrive as unordered edge lists that may exceed
memory themselves, so this module provides the classic external-memory
build: edges are normalised into directed ``(vertex, neighbor)`` pairs,
sorted in memory-bounded runs spilled to disk, k-way merged, deduplicated,
and grouped into adjacency records — all with bounded memory and
sequential I/O, metered through the same accounting as everything else.
"""

from __future__ import annotations

import heapq
import struct
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.errors import StorageError
from repro.storage.diskgraph import DiskGraph
from repro.storage.iostats import IOStats
from repro.storage.memory import MemoryModel
from repro.storage.pagestore import PageStore

_PAIR = struct.Struct("<QQ")

#: Default cap on in-memory directed pairs per sort run (2 units each).
DEFAULT_RUN_PAIRS = 1 << 18


def edge_list_to_disk_graph(
    edges: Iterable[tuple[int, int]],
    path: str | Path,
    workdir: str | Path,
    run_pairs: int = DEFAULT_RUN_PAIRS,
    io_stats: IOStats | None = None,
    memory: MemoryModel | None = None,
    isolated_vertices: Iterable[int] = (),
) -> DiskGraph:
    """Build a sorted-adjacency DiskGraph from an unordered edge iterable.

    Parameters
    ----------
    edges:
        ``(u, v)`` pairs; duplicates and both orientations are tolerated,
        self-loops are rejected (a clique never contains one).
    path:
        Destination DiskGraph file.
    workdir:
        Directory for the temporary sort runs (removed on success).
    run_pairs:
        Maximum directed pairs held in memory per sort run — the external
        sort's memory bound.  Each undirected edge contributes two pairs.
    isolated_vertices:
        Vertices to register even when no edge mentions them (edge lists
        cannot express isolated vertices, but the paper's singleton rule
        needs them, Section 4.3).
    io_stats:
        Shared I/O counters; runs and the output are metered against it.
    memory:
        Memory model charged with the in-memory run buffer.
    """
    if run_pairs < 2:
        raise StorageError(f"run_pairs must be at least 2, got {run_pairs}")
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    stats = io_stats if io_stats is not None else IOStats()

    runs = _spill_sorted_runs(edges, workdir, run_pairs, stats, memory)
    try:
        merged = _merge_runs(runs)
        records = _group_records(merged, sorted(set(isolated_vertices)))
        return DiskGraph.from_records(path, records, io_stats=stats)
    finally:
        for run in runs:
            run.delete()


def _spill_sorted_runs(
    edges: Iterable[tuple[int, int]],
    workdir: Path,
    run_pairs: int,
    stats: IOStats,
    memory: MemoryModel | None,
) -> list[PageStore]:
    """Phase 1: sort directed pairs in bounded chunks, spill each run."""
    runs: list[PageStore] = []
    buffer: list[tuple[int, int]] = []
    if memory is not None:
        memory.allocate(2 * run_pairs, label="external sort run buffer")

    def flush() -> None:
        if not buffer:
            return
        buffer.sort()
        run = PageStore(workdir / f"sort_run_{len(runs):05d}.bin", stats)
        run.write_all(b"".join(_PAIR.pack(u, v) for u, v in buffer))
        runs.append(run)
        buffer.clear()

    try:
        for u, v in edges:
            if u == v:
                raise StorageError(f"self-loop on vertex {u} is not allowed")
            if u < 0 or v < 0:
                raise StorageError(f"vertex ids must be non-negative: ({u}, {v})")
            buffer.append((u, v))
            buffer.append((v, u))
            if len(buffer) >= run_pairs:
                flush()
        flush()
    finally:
        if memory is not None:
            memory.release(2 * run_pairs, label="external sort run buffer")
    return runs


def _scan_pairs(run: PageStore) -> Iterator[tuple[int, int]]:
    """Stream one run's sorted pairs."""
    pending = b""
    for chunk in run.scan_chunks():
        data = pending + chunk
        usable = len(data) - (len(data) % _PAIR.size)
        for offset in range(0, usable, _PAIR.size):
            yield _PAIR.unpack_from(data, offset)
        pending = data[usable:]
    if pending:
        raise StorageError(f"run file {run.path} has a truncated pair record")


def _merge_runs(runs: list[PageStore]) -> Iterator[tuple[int, int]]:
    """Phase 2: k-way merge of the sorted runs, dropping duplicates."""
    merged = heapq.merge(*(_scan_pairs(run) for run in runs))
    previous: tuple[int, int] | None = None
    for pair in merged:
        if pair != previous:
            yield pair
            previous = pair


def _group_records(
    pairs: Iterator[tuple[int, int]],
    isolated: list[int] | None = None,
) -> Iterator[tuple[int, list[int], int]]:
    """Phase 3: fold sorted unique pairs into per-vertex records,
    weaving in zero-degree records for the (sorted) isolated vertices."""
    pending_isolated = list(isolated) if isolated else []
    position = 0
    current_vertex: int | None = None
    neighbors: list[int] = []

    def drain_isolated_below(bound: int | None):
        nonlocal position
        while position < len(pending_isolated) and (
            bound is None or pending_isolated[position] < bound
        ):
            yield pending_isolated[position], [], 0
            position += 1

    for vertex, neighbor in pairs:
        if vertex != current_vertex:
            if current_vertex is not None:
                yield current_vertex, neighbors, len(neighbors)
            yield from drain_isolated_below(vertex)
            # The vertex may also appear in the isolated list; skip it.
            if position < len(pending_isolated) and pending_isolated[position] == vertex:
                position += 1
            current_vertex = vertex
            neighbors = []
        neighbors.append(neighbor)
    if current_vertex is not None:
        yield current_vertex, neighbors, len(neighbors)
    yield from drain_isolated_below(None)


def edge_list_file_to_disk_graph(
    edge_list_path: str | Path,
    path: str | Path,
    workdir: str | Path,
    run_pairs: int = DEFAULT_RUN_PAIRS,
    io_stats: IOStats | None = None,
    memory: MemoryModel | None = None,
) -> DiskGraph:
    """Convert a ``u v`` text edge list file (see
    :mod:`repro.storage.edgelist`) into a DiskGraph with bounded memory."""
    from repro.storage.edgelist import read_edge_list

    return edge_list_to_disk_graph(
        read_edge_list(edge_list_path),
        path,
        workdir,
        run_pairs=run_pairs,
        io_stats=io_stats,
        memory=memory,
    )
