"""Plain-text edge list I/O.

Real network datasets (the paper's protein / blogs / LJ / Web graphs) ship
as whitespace-separated edge lists, optionally with a per-edge timestamp —
the blogs crawl the Table 7 update experiment replays is exactly such a
stream.  These helpers read and write that format; binary storage for
algorithm input is handled by :class:`~repro.storage.diskgraph.DiskGraph`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.errors import StorageFormatError

Edge = tuple[int, int]
TimestampedEdge = tuple[int, int, int]


def write_edge_list(path: str | Path, edges: Iterable[Edge]) -> int:
    """Write ``u v`` lines; returns the number of edges written."""
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        for u, v in edges:
            handle.write(f"{u} {v}\n")
            count += 1
    return count


def read_edge_list(path: str | Path) -> Iterator[Edge]:
    """Yield ``(u, v)`` pairs; blank lines and ``#`` comments are skipped.

    Raises :class:`~repro.errors.StorageFormatError` on malformed lines.
    """
    with open(path, "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) != 2:
                raise StorageFormatError(
                    f"{path}:{line_number}: expected 'u v', got {stripped!r}"
                )
            try:
                yield int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise StorageFormatError(
                    f"{path}:{line_number}: non-integer vertex in {stripped!r}"
                ) from exc


def write_timestamped_edge_list(path: str | Path, edges: Iterable[TimestampedEdge]) -> int:
    """Write ``timestamp u v`` lines; returns the count written."""
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        for timestamp, u, v in edges:
            handle.write(f"{timestamp} {u} {v}\n")
            count += 1
    return count


def read_timestamped_edge_list(path: str | Path) -> Iterator[TimestampedEdge]:
    """Yield ``(timestamp, u, v)`` triples in file order."""
    with open(path, "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) != 3:
                raise StorageFormatError(
                    f"{path}:{line_number}: expected 'timestamp u v', got {stripped!r}"
                )
            try:
                yield int(parts[0]), int(parts[1]), int(parts[2])
            except ValueError as exc:
                raise StorageFormatError(
                    f"{path}:{line_number}: non-integer field in {stripped!r}"
                ) from exc
