"""Binary record layout for on-disk adjacency lists.

One record per vertex::

    vertex id        uint64
    current degree   uint32   (degree in the *residual* graph)
    original degree  uint32   (degree in the graph as first written)
    neighbors        current-degree x uint64
    crc32            uint32   (format v2 only; over header + neighbors)

The original degree is persisted because the paper's recursion needs it
long after the residual graph has shed edges: a singleton ``{v}`` is a
maximal clique of ``G`` only when ``d(v) = 0`` *in the original graph*
(Section 4.3).  Keeping it in the record preserves the external-memory
discipline — no in-memory map over all of ``V`` is required.

Format v2 (magic ``HSTARGR2``) appends a CRC32 to every record so a
flipped bit on disk surfaces as a typed
:class:`~repro.errors.CorruptDataError` instead of a silently wrong
neighbor list.  v1 files (``HSTARGR1``) remain readable — they simply
carry no checksums to verify.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Sequence

from repro import metrics
from repro.errors import CorruptDataError, StorageFormatError

_HEADER = struct.Struct("<QII")
_CRC = struct.Struct("<I")

#: Integrity counters: verified records and detected CRC mismatches.
_CHECKSUM_METRICS = metrics.bound(
    lambda registry: {
        "verified": registry.counter(
            "repro_storage_records_verified_total",
            "records whose CRC32 was checked on read",
        ),
        "failures": registry.counter(
            "repro_storage_checksum_failures_total",
            "record CRC32 mismatches detected on read",
        ),
    }
)

#: Magic bytes identifying a format-v1 DiskGraph file (no checksums).
FILE_MAGIC = b"HSTARGR1"

#: Magic bytes identifying a format-v2 DiskGraph file (per-record CRC32).
FILE_MAGIC_V2 = b"HSTARGR2"


@dataclass(frozen=True)
class VertexRecord:
    """A decoded on-disk adjacency record."""

    vertex: int
    original_degree: int
    neighbors: tuple[int, ...]

    @property
    def degree(self) -> int:
        """Degree in the residual graph (length of the stored list)."""
        return len(self.neighbors)


def encode_record(
    vertex: int,
    neighbors: Sequence[int],
    original_degree: int,
    checksum: bool = False,
) -> bytes:
    """Serialise one vertex record (format v2 when ``checksum`` is set).

    Raises :class:`~repro.errors.StorageFormatError` for ids that do not
    fit the fixed-width layout.
    """
    if vertex < 0:
        raise StorageFormatError(f"vertex ids must be non-negative, got {vertex}")
    if original_degree < 0:
        raise StorageFormatError(f"original degree must be non-negative, got {original_degree}")
    try:
        header = _HEADER.pack(vertex, len(neighbors), original_degree)
        body = struct.pack(f"<{len(neighbors)}Q", *neighbors)
    except struct.error as exc:
        raise StorageFormatError(f"record for vertex {vertex} failed to encode: {exc}") from exc
    if not checksum:
        return header + body
    return header + body + _CRC.pack(zlib.crc32(header + body))


def decode_record(
    buffer: bytes,
    offset: int = 0,
    checksum: bool = False,
    verify: bool = True,
) -> tuple[VertexRecord, int]:
    """Decode one record at ``offset``; return it and the next offset.

    ``checksum`` selects the format-v2 layout (trailing CRC32);
    ``verify`` controls whether a v2 checksum is actually checked.
    Raises :class:`~repro.errors.StorageFormatError` on truncation and
    :class:`~repro.errors.CorruptDataError` on a CRC mismatch.
    """
    end = offset + _HEADER.size
    if end > len(buffer):
        raise StorageFormatError("truncated record header")
    vertex, degree, original_degree = _HEADER.unpack_from(buffer, offset)
    body_end = end + 8 * degree
    if body_end > len(buffer):
        raise StorageFormatError(
            f"truncated record body for vertex {vertex}: "
            f"need {8 * degree} bytes, have {len(buffer) - end}"
        )
    neighbors = struct.unpack_from(f"<{degree}Q", buffer, end)
    if checksum:
        crc_end = body_end + _CRC.size
        if crc_end > len(buffer):
            raise StorageFormatError(f"truncated record checksum for vertex {vertex}")
        if verify:
            (stored,) = _CRC.unpack_from(buffer, body_end)
            computed = zlib.crc32(buffer[offset:body_end])
            bundle = _CHECKSUM_METRICS()
            bundle["verified"].inc()
            if stored != computed:
                bundle["failures"].inc()
                raise CorruptDataError(
                    f"checksum mismatch for vertex {vertex}: "
                    f"stored {stored:#010x}, computed {computed:#010x}"
                )
        body_end = crc_end
    record = VertexRecord(vertex=vertex, original_degree=original_degree, neighbors=neighbors)
    return record, body_end


def count_checksum_failure() -> None:
    """Count a checksum failure detected outside the record codec.

    Used by :meth:`repro.storage.diskgraph.DiskGraph.open` for header CRC
    mismatches, so ``repro_storage_checksum_failures_total`` covers every
    integrity check in the stack.
    """
    _CHECKSUM_METRICS()["failures"].inc()


def record_size(degree: int, checksum: bool = False) -> int:
    """Size in bytes of a record with the given current degree."""
    return _HEADER.size + 8 * degree + (_CRC.size if checksum else 0)
