"""Binary record layout for on-disk adjacency lists.

One record per vertex::

    vertex id        uint64
    current degree   uint32   (degree in the *residual* graph)
    original degree  uint32   (degree in the graph as first written)
    neighbors        current-degree x uint64

The original degree is persisted because the paper's recursion needs it
long after the residual graph has shed edges: a singleton ``{v}`` is a
maximal clique of ``G`` only when ``d(v) = 0`` *in the original graph*
(Section 4.3).  Keeping it in the record preserves the external-memory
discipline — no in-memory map over all of ``V`` is required.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Sequence

from repro.errors import StorageFormatError

_HEADER = struct.Struct("<QII")

#: Magic bytes identifying a DiskGraph file, followed by version.
FILE_MAGIC = b"HSTARGR1"


@dataclass(frozen=True)
class VertexRecord:
    """A decoded on-disk adjacency record."""

    vertex: int
    original_degree: int
    neighbors: tuple[int, ...]

    @property
    def degree(self) -> int:
        """Degree in the residual graph (length of the stored list)."""
        return len(self.neighbors)


def encode_record(vertex: int, neighbors: Sequence[int], original_degree: int) -> bytes:
    """Serialise one vertex record.

    Raises :class:`~repro.errors.StorageFormatError` for ids that do not
    fit the fixed-width layout.
    """
    if vertex < 0:
        raise StorageFormatError(f"vertex ids must be non-negative, got {vertex}")
    if original_degree < 0:
        raise StorageFormatError(f"original degree must be non-negative, got {original_degree}")
    try:
        header = _HEADER.pack(vertex, len(neighbors), original_degree)
        body = struct.pack(f"<{len(neighbors)}Q", *neighbors)
    except struct.error as exc:
        raise StorageFormatError(f"record for vertex {vertex} failed to encode: {exc}") from exc
    return header + body


def decode_record(buffer: bytes, offset: int = 0) -> tuple[VertexRecord, int]:
    """Decode one record at ``offset``; return it and the next offset.

    Raises :class:`~repro.errors.StorageFormatError` on truncation.
    """
    end = offset + _HEADER.size
    if end > len(buffer):
        raise StorageFormatError("truncated record header")
    vertex, degree, original_degree = _HEADER.unpack_from(buffer, offset)
    body_end = end + 8 * degree
    if body_end > len(buffer):
        raise StorageFormatError(
            f"truncated record body for vertex {vertex}: "
            f"need {8 * degree} bytes, have {len(buffer) - end}"
        )
    neighbors = struct.unpack_from(f"<{degree}Q", buffer, end)
    record = VertexRecord(vertex=vertex, original_degree=original_degree, neighbors=neighbors)
    return record, body_end


def record_size(degree: int) -> int:
    """Size in bytes of a record with the given current degree."""
    return _HEADER.size + 8 * degree
