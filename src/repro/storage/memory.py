"""Explicit main-memory accounting.

The paper's central claim is a *space* bound: ExtMCE needs only
``O(|G_H*| + |T_H*|)`` memory while in-memory MCE needs ``Ω(m + n)``
(Sections 1 and 4.4).  Measuring CPython RSS would mix interpreter noise
into that comparison, so the library instead charges every resident
structure to a :class:`MemoryModel` in *units* (one unit = one stored
vertex id: an adjacency entry, a clique-tree node, a hashtable member).

A model can enforce a budget, in which case an allocation that would
overflow raises :class:`~repro.errors.MemoryBudgetExceeded` — the
reproduction of "in-mem runs out of memory" in Figure 3(b).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import MemoryBudgetExceeded

#: Bytes per accounting unit when reporting MB figures.  One unit is one
#: stored vertex id; 8 bytes matches the 64-bit ids a C implementation
#: would store and keeps reported numbers comparable across algorithms.
BYTES_PER_UNIT = 8


@dataclass
class MemoryModel:
    """Tracks allocated memory units, their peak, and an optional budget.

    Parameters
    ----------
    budget:
        Maximum units that may be simultaneously live; ``None`` disables
        enforcement (the model still records the peak).

    Examples
    --------
    >>> model = MemoryModel(budget=10)
    >>> model.allocate(6)
    >>> model.release(6)
    >>> model.peak_units
    6
    """

    budget: int | None = None
    in_use_units: int = 0
    peak_units: int = 0
    by_label: dict[str, int] = field(default_factory=dict)
    reclaimers: list = field(default_factory=list, repr=False)

    def add_reclaimer(self, reclaim) -> None:
        """Register a cache-eviction callback for memory pressure.

        ``reclaim()`` must release some units through :meth:`release` and
        return ``True``, or return ``False`` when it has nothing left to
        give.  This is the buffer-pool discipline: under a budget, caches
        (the resident h-neighbor partitions) yield before an allocation
        fails.
        """
        self.reclaimers.append(reclaim)

    def remove_reclaimer(self, reclaim) -> None:
        """Unregister a pressure callback (idempotent)."""
        if reclaim in self.reclaimers:
            self.reclaimers.remove(reclaim)

    def allocate(self, units: int, label: str = "unlabeled") -> None:
        """Charge ``units`` to the model.

        Under budget pressure, registered reclaimers are asked to evict
        first; the allocation fails only when none can free enough.

        Raises
        ------
        MemoryBudgetExceeded
            If the allocation would push usage past the budget.
        ValueError
            If ``units`` is negative.
        """
        if units < 0:
            raise ValueError(f"cannot allocate a negative amount: {units}")
        while self.budget is not None and self.in_use_units + units > self.budget:
            before = self.in_use_units
            claimed = any(reclaim() for reclaim in list(self.reclaimers))
            if not claimed or self.in_use_units >= before:
                raise MemoryBudgetExceeded(units, self.in_use_units, self.budget)
        self.in_use_units += units
        self.by_label[label] = self.by_label.get(label, 0) + units
        if self.in_use_units > self.peak_units:
            self.peak_units = self.in_use_units

    def release(self, units: int, label: str = "unlabeled") -> None:
        """Return ``units`` to the model.

        Raises ``ValueError`` on negative amounts or over-release, which
        always indicates an accounting bug in the caller.
        """
        if units < 0:
            raise ValueError(f"cannot release a negative amount: {units}")
        if units > self.in_use_units:
            raise ValueError(
                f"releasing {units} units but only {self.in_use_units} are in use"
            )
        held = self.by_label.get(label, 0)
        if units > held:
            raise ValueError(
                f"releasing {units} units from label {label!r} but it holds {held}"
            )
        self.in_use_units -= units
        self.by_label[label] = held - units

    @contextmanager
    def allocation(self, units: int, label: str = "unlabeled") -> Iterator[None]:
        """Context manager pairing an allocate with its release."""
        self.allocate(units, label=label)
        try:
            yield
        finally:
            self.release(units, label=label)

    @property
    def available_units(self) -> int | None:
        """Remaining headroom, or ``None`` when no budget is set."""
        if self.budget is None:
            return None
        return self.budget - self.in_use_units

    @property
    def peak_bytes(self) -> int:
        """Peak usage expressed in bytes (``BYTES_PER_UNIT`` per unit)."""
        return self.peak_units * BYTES_PER_UNIT

    @property
    def peak_megabytes(self) -> float:
        """Peak usage in MB, the unit Figure 3(b) reports."""
        return self.peak_bytes / (1024 * 1024)

    def reset_peak(self) -> None:
        """Reset the peak to current usage (between experiment phases)."""
        self.peak_units = self.in_use_units
