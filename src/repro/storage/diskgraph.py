"""Disk-resident adjacency-list graph with sequential-scan access.

This is the ``G`` that ExtMCE reads: records sorted by vertex id, one per
vertex, streamed start-to-end.  The paper's algorithm touches it in exactly
three ways, all provided here:

* a full sequential scan (Algorithm 1's single pass, Section 4.2.3's
  partition-building pass);
* a rewrite dropping a vertex set and its incident edges (Algorithm 3,
  Line 15: "Remove ``G_H*`` (or ``G_L*``) from ``G``");
* targeted adjacency loads for a known vertex subset, implemented as one
  sequential pass rather than per-vertex seeks, which is the
  external-memory discipline the paper insists on.

Integrity: new files are written in format v2 (``HSTARGR2``), which adds
a CRC32 to every record; a flipped bit on disk is reported as a typed
:class:`~repro.errors.CorruptDataError` at scan time instead of flowing
into the clique stream as a wrong neighbor list.  v1 files open and scan
unchanged.  ``verify_checksums=False`` skips the check (for metered runs
where the CRC cost would distort timings); residual rewrites inherit the
source graph's verify setting and fault plan.
"""

from __future__ import annotations

import struct
import zlib
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import CorruptDataError, StorageError, StorageFormatError
from repro.graph.adjacency import AdjacencyGraph
from repro.storage.format import (
    FILE_MAGIC,
    FILE_MAGIC_V2,
    VertexRecord,
    count_checksum_failure,
    decode_record,
    encode_record,
    record_size,
)
from repro.storage.iostats import IOStats
from repro.storage.pagestore import PageStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults import FaultPlan

_COUNTS = struct.Struct("<QQ")
_CRC = struct.Struct("<I")


def _pack_counts(num_vertices: int, num_edges: int, checksum: bool) -> bytes:
    """The header's count block, with a trailing CRC32 in format v2."""
    counts = _COUNTS.pack(num_vertices, num_edges)
    if not checksum:
        return counts
    return counts + _CRC.pack(zlib.crc32(counts))
_HEADER_BYTES_V1 = len(FILE_MAGIC) + _COUNTS.size
#: The v2 header appends a CRC32 over the vertex/edge counts, so a
#: corrupted header block fails typed instead of yielding a wrong size.
_HEADER_BYTES_V2 = _HEADER_BYTES_V1 + _CRC.size


class DiskGraph:
    """An undirected graph stored on disk as sorted adjacency records."""

    def __init__(
        self,
        store: PageStore,
        num_vertices: int,
        num_edges: int,
        checksummed: bool = True,
        verify_checksums: bool = True,
    ) -> None:
        self._store = store
        self._num_vertices = num_vertices
        self._num_edges = num_edges
        self._checksummed = checksummed
        self._verify = verify_checksums

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str | Path,
        graph: AdjacencyGraph,
        io_stats: IOStats | None = None,
        fault_plan: "FaultPlan | None" = None,
        verify_checksums: bool = True,
    ) -> "DiskGraph":
        """Write an in-memory graph to ``path`` and return a handle.

        Vertex ids must be non-negative integers (enforced by the record
        codec).  Original degrees are captured from the graph as given.
        """
        records = (
            (v, sorted(graph.neighbors(v)), graph.degree(v))
            for v in sorted(graph.vertices())
        )
        return cls.from_records(
            path, records, io_stats=io_stats,
            fault_plan=fault_plan, verify_checksums=verify_checksums,
        )

    @classmethod
    def from_records(
        cls,
        path: str | Path,
        records: Iterable[tuple[int, list[int], int]],
        io_stats: IOStats | None = None,
        fault_plan: "FaultPlan | None" = None,
        verify_checksums: bool = True,
        checksum: bool = True,
    ) -> "DiskGraph":
        """Stream ``(vertex, sorted neighbors, original degree)`` records.

        Records must arrive in ascending vertex order; counts are patched
        into the header after the stream ends so nothing is buffered.
        ``checksum=False`` writes the legacy v1 layout (no per-record
        CRC) for compatibility tooling.
        """
        store = PageStore(path, io_stats, fault_plan=fault_plan)
        magic = FILE_MAGIC_V2 if checksum else FILE_MAGIC
        store.write_all(magic + _pack_counts(0, 0, checksum))
        num_vertices = 0
        directed_degree_total = 0
        previous_vertex = -1
        buffer = bytearray()
        for vertex, neighbors, original_degree in records:
            if vertex <= previous_vertex:
                raise StorageError(
                    f"records out of order: vertex {vertex} after {previous_vertex}"
                )
            previous_vertex = vertex
            num_vertices += 1
            directed_degree_total += len(neighbors)
            buffer += encode_record(vertex, neighbors, original_degree, checksum=checksum)
            if len(buffer) >= 1 << 20:
                store.append(bytes(buffer))
                buffer.clear()
        if buffer:
            store.append(bytes(buffer))
        if directed_degree_total % 2 != 0:
            raise StorageError("adjacency records are not symmetric: odd degree total")
        num_edges = directed_degree_total // 2
        store.patch(len(magic), _pack_counts(num_vertices, num_edges, checksum))
        return cls(
            store, num_vertices, num_edges,
            checksummed=checksum, verify_checksums=verify_checksums,
        )

    @classmethod
    def open(
        cls,
        path: str | Path,
        io_stats: IOStats | None = None,
        fault_plan: "FaultPlan | None" = None,
        verify_checksums: bool = True,
    ) -> "DiskGraph":
        """Open an existing graph file, validating its header.

        Accepts both the checksummed v2 format and legacy v1 files.
        """
        store = PageStore(path, io_stats, fault_plan=fault_plan)
        header = store.read_at(0, _HEADER_BYTES_V1)
        magic = header[: len(FILE_MAGIC)]
        if magic not in (FILE_MAGIC, FILE_MAGIC_V2):
            raise StorageFormatError(f"{path} is not a DiskGraph file")
        counts = header[len(magic) :]
        num_vertices, num_edges = _COUNTS.unpack(counts)
        checksummed = magic == FILE_MAGIC_V2
        if checksummed and verify_checksums:
            (stored,) = _CRC.unpack(store.read_at(_HEADER_BYTES_V1, _CRC.size))
            computed = zlib.crc32(counts)
            if stored != computed:
                count_checksum_failure()
                raise CorruptDataError(
                    f"header checksum mismatch in {path}: "
                    f"stored {stored:#010x}, computed {computed:#010x}"
                )
        return cls(
            store, num_vertices, num_edges,
            checksummed=checksummed,
            verify_checksums=verify_checksums,
        )

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        """Backing file path."""
        return self._store.path

    @property
    def io_stats(self) -> IOStats:
        """I/O counters for this graph's storage stack."""
        return self._store.io_stats

    @property
    def fault_plan(self) -> "FaultPlan | None":
        """The fault plan threaded through this graph's stores, if any."""
        return self._store.fault_plan

    @property
    def num_vertices(self) -> int:
        """Number of vertex records."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (the paper's ``|G|``)."""
        return self._num_edges

    @property
    def size_pages(self) -> int:
        """On-disk size in accounting pages."""
        return self._store.size_pages()

    @property
    def header_bytes(self) -> int:
        """Byte offset of the first vertex record."""
        return _HEADER_BYTES_V2 if self._checksummed else _HEADER_BYTES_V1

    @property
    def page_store(self) -> PageStore:
        """The underlying metered page store (for buffer-pool layering)."""
        return self._store

    @property
    def format_version(self) -> int:
        """On-disk format: 2 for checksummed records, 1 for legacy."""
        return 2 if self._checksummed else 1

    @property
    def verify_checksums(self) -> bool:
        """Whether v2 record checksums are verified on read."""
        return self._verify

    @verify_checksums.setter
    def verify_checksums(self, value: bool) -> None:
        self._verify = bool(value)

    def record_nbytes(self, degree: int) -> int:
        """On-disk size of a record with ``degree`` neighbors, this format."""
        return record_size(degree, checksum=self._checksummed)

    def decode_one(self, buffer: bytes, offset: int = 0) -> tuple[VertexRecord, int]:
        """Decode one record in this graph's format (verify per setting)."""
        return decode_record(
            buffer, offset, checksum=self._checksummed, verify=self._verify
        )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[VertexRecord]:
        """Stream all records in vertex order (one metered sequential scan)."""
        self._store.io_stats.record_scan()
        pending = bytearray()
        chunks = self._store.scan_chunks()
        # Drop the fixed-size header from the first chunk.
        to_skip = self.header_bytes
        for chunk in chunks:
            if to_skip:
                skip = min(to_skip, len(chunk))
                chunk = chunk[skip:]
                to_skip -= skip
                if not chunk:
                    continue
            pending += chunk
            offset = 0
            while True:
                record, next_offset = self._try_decode(pending, offset)
                if record is None:
                    break
                offset = next_offset
                yield record
            del pending[:offset]
        if pending:
            raise StorageFormatError(f"{len(pending)} trailing bytes after final record")

    def load_adjacency(self, vertices: Iterable[int]) -> dict[int, tuple[int, ...]]:
        """Adjacency lists for a vertex subset, via one sequential pass."""
        wanted = set(vertices)
        found: dict[int, tuple[int, ...]] = {}
        for record in self.scan():
            if record.vertex in wanted:
                found[record.vertex] = record.neighbors
                if len(found) == len(wanted):
                    break
        return found

    def original_degrees(self, vertices: Iterable[int]) -> dict[int, int]:
        """Original-graph degrees for a vertex subset (one pass)."""
        wanted = set(vertices)
        found: dict[int, int] = {}
        for record in self.scan():
            if record.vertex in wanted:
                found[record.vertex] = record.original_degree
                if len(found) == len(wanted):
                    break
        return found

    def rewrite_without(self, removed: Iterable[int], new_path: str | Path) -> "DiskGraph":
        """Write the residual graph after deleting a vertex set.

        Removes every vertex in ``removed`` and all incident edges — the
        per-recursion shrink step of Algorithm 3 — in one sequential read
        of this file and one sequential write of the new one.  Original
        degrees, the verify setting and any fault plan carry over.
        """
        removed_set = set(removed)

        def residual_records() -> Iterator[tuple[int, list[int], int]]:
            for record in self.scan():
                if record.vertex in removed_set:
                    continue
                survivors = [u for u in record.neighbors if u not in removed_set]
                yield record.vertex, survivors, record.original_degree

        return DiskGraph.from_records(
            new_path, residual_records(), io_stats=self.io_stats,
            fault_plan=self.fault_plan, verify_checksums=self._verify,
        )

    def to_adjacency_graph(self) -> AdjacencyGraph:
        """Materialise the whole graph in memory (tests and baselines)."""
        graph = AdjacencyGraph()
        for record in self.scan():
            graph.add_vertex(record.vertex)
            for u in record.neighbors:
                graph.add_edge(record.vertex, u)
        return graph

    def delete(self) -> None:
        """Remove the backing file."""
        self._store.delete()

    def __repr__(self) -> str:
        return (
            f"DiskGraph(path={str(self.path)!r}, n={self._num_vertices}, "
            f"m={self._num_edges})"
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _try_decode(
        self, buffer: bytearray, offset: int
    ) -> tuple[VertexRecord | None, int]:
        """Decode a record if the buffer holds it completely."""
        header_end = offset + 16  # <QII
        if header_end > len(buffer):
            return None, offset
        degree = int.from_bytes(buffer[offset + 8 : offset + 12], "little")
        nbytes = self.record_nbytes(degree)
        if offset + nbytes > len(buffer):
            return None, offset
        record, consumed = decode_record(
            bytes(buffer[offset : offset + nbytes]),
            checksum=self._checksummed,
            verify=self._verify,
        )
        return record, offset + consumed
