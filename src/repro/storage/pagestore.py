"""Page-granular file access with I/O accounting.

All disk traffic in the library flows through :class:`PageStore`, which
reads and writes real files but meters every operation in 4 KiB pages via
an :class:`~repro.storage.iostats.IOStats`.  Sequential scans stream the
file in large chunks; random reads additionally record a seek, matching the
cost model the paper argues from.

Failure model: every ``OSError`` from the filesystem is wrapped into a
typed :class:`~repro.errors.StorageIOError`, and an optional
:class:`~repro.faults.FaultPlan` can deterministically inject I/O errors,
short reads, torn writes, corrupted bytes and latency at the same sites —
the fault-injection suite drives the hardening above this layer through
exactly these hooks.
"""

from __future__ import annotations

import os
import time
from collections.abc import Iterator
from pathlib import Path
from typing import TYPE_CHECKING

from types import SimpleNamespace

from repro import metrics
from repro.errors import StorageError, StorageIOError
from repro.storage.iostats import IOStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults import Fault, FaultPlan

#: Page size used for I/O accounting (a common filesystem block size).
PAGE_SIZE_BYTES = 4096

#: Chunk size for sequential streaming (must be a multiple of the page size).
_SCAN_CHUNK_BYTES = 64 * PAGE_SIZE_BYTES


#: Byte-granular traffic counters (the page counters live in IOStats;
#: bytes expose the slack between payload and page-rounded accounting).
_METRICS = metrics.bound(
    lambda registry: SimpleNamespace(
        bytes_read=registry.counter(
            "repro_storage_bytes_read_total", "payload bytes fetched from disk"
        ),
        bytes_written=registry.counter(
            "repro_storage_bytes_written_total", "payload bytes written to disk"
        ),
    )
)


def _pages(num_bytes: int) -> int:
    """Number of pages touched by ``num_bytes`` of contiguous data."""
    return (num_bytes + PAGE_SIZE_BYTES - 1) // PAGE_SIZE_BYTES


def _span_pages(offset: int, length: int) -> int:
    """Pages spanned by ``length`` bytes at ``offset`` (0 for empty spans)."""
    if length <= 0:
        return 0
    first_page = offset // PAGE_SIZE_BYTES
    last_page = (offset + length - 1) // PAGE_SIZE_BYTES
    return last_page - first_page + 1


class PageStore:
    """A metered file: append-only writes, sequential scans, random reads."""

    def __init__(
        self,
        path: str | Path,
        io_stats: IOStats | None = None,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        self._path = Path(path)
        self._io = io_stats if io_stats is not None else IOStats()
        self._faults = fault_plan

    @property
    def path(self) -> Path:
        """Filesystem location of the store."""
        return self._path

    @property
    def io_stats(self) -> IOStats:
        """The counters this store reports to."""
        return self._io

    @property
    def fault_plan(self) -> "FaultPlan | None":
        """The fault plan consulted by this store (``None`` in production)."""
        return self._faults

    def exists(self) -> bool:
        """Whether the backing file exists."""
        return self._path.exists()

    def size_bytes(self) -> int:
        """Current file size in bytes (0 when absent)."""
        return self._path.stat().st_size if self._path.exists() else 0

    def size_pages(self) -> int:
        """Current file size in accounting pages."""
        return _pages(self.size_bytes())

    def write_all(self, data: bytes) -> None:
        """Replace the file contents with ``data`` (counted as page writes)."""
        self._path.parent.mkdir(parents=True, exist_ok=True)
        data = self._apply_write_fault("write_all", data)
        try:
            with open(self._path, "wb") as handle:
                handle.write(data)
        except OSError as exc:
            raise StorageIOError("write_all", self._path, str(exc)) from exc
        self._io.record_write(_pages(len(data)))
        _METRICS().bytes_written.inc(len(data))

    def append(self, data: bytes) -> None:
        """Append ``data`` (counted as page writes)."""
        self._path.parent.mkdir(parents=True, exist_ok=True)
        data = self._apply_write_fault("append", data)
        try:
            with open(self._path, "ab") as handle:
                handle.write(data)
        except OSError as exc:
            raise StorageIOError("append", self._path, str(exc)) from exc
        self._io.record_write(_pages(len(data)))
        _METRICS().bytes_written.inc(len(data))

    def read_all(self) -> bytes:
        """Read the whole file sequentially (one scan)."""
        return b"".join(self.scan_chunks())

    def scan_chunks(self) -> Iterator[bytes]:
        """Stream the file start-to-end in page-aligned chunks.

        Counts the pages read.  The *scan counter* is owned by
        :meth:`repro.storage.diskgraph.DiskGraph.scan`, so that Table 6's
        "scans of G" metric counts passes over the graph, not reads of
        small spill files.
        """
        if not self._path.exists():
            raise StorageError(f"page store {self._path} does not exist")
        fault = self._draw("scan")
        if fault is not None and fault.kind == "io_error":
            raise StorageIOError("scan", self._path, "injected I/O error")
        try:
            with open(self._path, "rb") as handle:
                first = True
                while True:
                    chunk = handle.read(_SCAN_CHUNK_BYTES)
                    if not chunk:
                        break
                    if first and fault is not None:
                        chunk = self._damage(fault, chunk)
                        first = False
                        if not chunk:
                            break
                    self._io.record_read(_pages(len(chunk)))
                    _METRICS().bytes_read.inc(len(chunk))
                    yield chunk
                    if fault is not None and fault.kind == "short_read" and not first:
                        break  # injected truncation: drop the file's tail
        except OSError as exc:
            raise StorageIOError("scan", self._path, str(exc)) from exc

    def read_at(self, offset: int, length: int) -> bytes:
        """Random read: seek to ``offset`` and read ``length`` bytes.

        Counts one seek plus the spanned pages (a read that straddles a
        page boundary touches both pages, as on a real device).  A
        zero-length read touches no device at all and records nothing.
        """
        if offset < 0 or length < 0:
            raise StorageError(f"invalid read at offset={offset} length={length}")
        if not self._path.exists():
            raise StorageError(f"page store {self._path} does not exist")
        if length == 0:
            return b""
        fault = self._draw("read")
        if fault is not None and fault.kind == "io_error":
            raise StorageIOError("read", self._path, "injected I/O error")
        try:
            with open(self._path, "rb") as handle:
                handle.seek(offset)
                data = handle.read(length)
        except OSError as exc:
            raise StorageIOError("read", self._path, str(exc)) from exc
        if fault is not None:
            data = self._damage(fault, data)
        if len(data) < length:
            raise StorageError(
                f"short read at offset {offset}: wanted {length} bytes, got {len(data)}"
            )
        self._io.record_seek()
        self._io.record_read(_span_pages(offset, length))
        _METRICS().bytes_read.inc(length)
        return data

    def patch(self, offset: int, data: bytes) -> None:
        """Overwrite ``len(data)`` bytes in place at ``offset``.

        Used to fix up a file header once streamed record counts are known;
        counts the spanned pages as writes (nothing for an empty patch).
        """
        if not self._path.exists():
            raise StorageError(f"page store {self._path} does not exist")
        if offset < 0 or offset + len(data) > self.size_bytes():
            raise StorageError(
                f"patch at offset {offset} of {len(data)} bytes exceeds file size"
            )
        if not data:
            return
        data = self._apply_write_fault("patch", data)
        try:
            with open(self._path, "r+b") as handle:
                handle.seek(offset)
                handle.write(data)
        except OSError as exc:
            raise StorageIOError("patch", self._path, str(exc)) from exc
        self._io.record_write(_span_pages(offset, len(data)))
        _METRICS().bytes_written.inc(len(data))

    def delete(self) -> None:
        """Remove the backing file if present."""
        if self._path.exists():
            os.remove(self._path)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def _draw(self, operation: str) -> "Fault | None":
        """Consult the plan; latency faults are absorbed here."""
        if self._faults is None:
            return None
        fault = self._faults.draw(operation, path=str(self._path))
        if fault is None:
            return None
        if fault.kind == "latency":
            time.sleep(fault.latency_seconds)
            return None
        return fault

    @staticmethod
    def _damage(fault: "Fault", data: bytes) -> bytes:
        """Apply a read-side fault to fetched bytes."""
        if fault.kind == "corrupt":
            from repro.faults import corrupt_bytes

            return corrupt_bytes(data, fault.fraction)
        if fault.kind == "short_read":
            return data[: int(fault.fraction * len(data))]
        return data

    def _apply_write_fault(self, operation: str, data: bytes) -> bytes:
        """Consult the plan before a write; may raise or truncate.

        A torn write persists only a deterministic prefix and *then*
        raises — the on-disk state is the half-written block a crashing
        writer leaves behind, and the caller still learns the write
        failed (crash-without-notice is the integration suite's SIGKILL
        test, not an injectable rule).
        """
        fault = self._draw("write")
        if fault is None:
            return data
        if fault.kind == "io_error":
            raise StorageIOError(operation, self._path, "injected I/O error")
        if fault.kind == "torn_write" and data:
            if operation == "patch":
                # An in-place patch is sub-page; model the tear as a
                # plain failure (nothing persisted) rather than tracking
                # partial offsets.
                raise StorageIOError(operation, self._path, "injected torn write")
            keep = int(fault.fraction * len(data))
            torn = data[:keep]
            try:
                with open(self._path, "ab" if operation == "append" else "wb") as handle:
                    handle.write(torn)
            except OSError as exc:
                raise StorageIOError(operation, self._path, str(exc)) from exc
            self._io.record_write(_pages(len(torn)))
            raise StorageIOError(
                operation, self._path,
                f"injected torn write: {len(torn)} of {len(data)} bytes persisted",
            )
        if fault.kind == "corrupt":
            from repro.faults import corrupt_bytes

            return corrupt_bytes(data, fault.fraction)
        return data
