"""Page-granular file access with I/O accounting.

All disk traffic in the library flows through :class:`PageStore`, which
reads and writes real files but meters every operation in 4 KiB pages via
an :class:`~repro.storage.iostats.IOStats`.  Sequential scans stream the
file in large chunks; random reads additionally record a seek, matching the
cost model the paper argues from.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from pathlib import Path

from repro.errors import StorageError
from repro.storage.iostats import IOStats

#: Page size used for I/O accounting (a common filesystem block size).
PAGE_SIZE_BYTES = 4096

#: Chunk size for sequential streaming (must be a multiple of the page size).
_SCAN_CHUNK_BYTES = 64 * PAGE_SIZE_BYTES


def _pages(num_bytes: int) -> int:
    """Number of pages touched by ``num_bytes`` of contiguous data."""
    return (num_bytes + PAGE_SIZE_BYTES - 1) // PAGE_SIZE_BYTES


class PageStore:
    """A metered file: append-only writes, sequential scans, random reads."""

    def __init__(self, path: str | Path, io_stats: IOStats | None = None) -> None:
        self._path = Path(path)
        self._io = io_stats if io_stats is not None else IOStats()

    @property
    def path(self) -> Path:
        """Filesystem location of the store."""
        return self._path

    @property
    def io_stats(self) -> IOStats:
        """The counters this store reports to."""
        return self._io

    def exists(self) -> bool:
        """Whether the backing file exists."""
        return self._path.exists()

    def size_bytes(self) -> int:
        """Current file size in bytes (0 when absent)."""
        return self._path.stat().st_size if self._path.exists() else 0

    def size_pages(self) -> int:
        """Current file size in accounting pages."""
        return _pages(self.size_bytes())

    def write_all(self, data: bytes) -> None:
        """Replace the file contents with ``data`` (counted as page writes)."""
        self._path.parent.mkdir(parents=True, exist_ok=True)
        with open(self._path, "wb") as handle:
            handle.write(data)
        self._io.record_write(_pages(len(data)))

    def append(self, data: bytes) -> None:
        """Append ``data`` (counted as page writes)."""
        self._path.parent.mkdir(parents=True, exist_ok=True)
        with open(self._path, "ab") as handle:
            handle.write(data)
        self._io.record_write(_pages(len(data)))

    def read_all(self) -> bytes:
        """Read the whole file sequentially (one scan)."""
        return b"".join(self.scan_chunks())

    def scan_chunks(self) -> Iterator[bytes]:
        """Stream the file start-to-end in page-aligned chunks.

        Counts the pages read.  The *scan counter* is owned by
        :meth:`repro.storage.diskgraph.DiskGraph.scan`, so that Table 6's
        "scans of G" metric counts passes over the graph, not reads of
        small spill files.
        """
        if not self._path.exists():
            raise StorageError(f"page store {self._path} does not exist")
        with open(self._path, "rb") as handle:
            while True:
                chunk = handle.read(_SCAN_CHUNK_BYTES)
                if not chunk:
                    break
                self._io.record_read(_pages(len(chunk)))
                yield chunk

    def read_at(self, offset: int, length: int) -> bytes:
        """Random read: seek to ``offset`` and read ``length`` bytes.

        Counts one seek plus the spanned pages (a read that straddles a
        page boundary touches both pages, as on a real device).
        """
        if offset < 0 or length < 0:
            raise StorageError(f"invalid read at offset={offset} length={length}")
        if not self._path.exists():
            raise StorageError(f"page store {self._path} does not exist")
        with open(self._path, "rb") as handle:
            handle.seek(offset)
            data = handle.read(length)
        if len(data) < length:
            raise StorageError(
                f"short read at offset {offset}: wanted {length} bytes, got {len(data)}"
            )
        first_page = offset // PAGE_SIZE_BYTES
        last_page = (offset + max(length, 1) - 1) // PAGE_SIZE_BYTES
        self._io.record_seek()
        self._io.record_read(last_page - first_page + 1)
        return data

    def patch(self, offset: int, data: bytes) -> None:
        """Overwrite ``len(data)`` bytes in place at ``offset``.

        Used to fix up a file header once streamed record counts are known;
        counts the spanned pages as writes.
        """
        if not self._path.exists():
            raise StorageError(f"page store {self._path} does not exist")
        if offset < 0 or offset + len(data) > self.size_bytes():
            raise StorageError(
                f"patch at offset {offset} of {len(data)} bytes exceeds file size"
            )
        with open(self._path, "r+b") as handle:
            handle.seek(offset)
            handle.write(data)
        first_page = offset // PAGE_SIZE_BYTES
        last_page = (offset + max(len(data), 1) - 1) // PAGE_SIZE_BYTES
        self._io.record_write(last_page - first_page + 1)

    def delete(self) -> None:
        """Remove the backing file if present."""
        if self._path.exists():
            os.remove(self._path)
