"""External-memory substrate.

The paper evaluates ExtMCE against graphs that do not fit in RAM.  CPython
offers no per-algorithm heap cap and this session has no multi-terabyte
datasets, so the substrate makes both resources *explicit*:

* :class:`~repro.storage.memory.MemoryModel` — an accounting model of main
  memory.  Components charge the structures they keep resident (adjacency
  entries, clique-tree nodes, hashtable entries); the model tracks the peak
  and can enforce a budget, raising
  :class:`~repro.errors.MemoryBudgetExceeded` exactly where the paper's
  in-memory baseline runs out of RAM (Figure 3(b)).
* :class:`~repro.storage.diskgraph.DiskGraph` — a page-granular binary
  adjacency store on real files with a sequential-scan API and counted I/O,
  so the ``O(|G| / |G_H*|)`` scan bound of Table 6 is measured.
* :class:`~repro.storage.partitions.HnbPartitionStore` — the Section 4.2.3
  spill files holding the h-neighbor adjacency partitions used to compute
  ``maxCL(HNB(·))`` without random disk access.
"""

from repro.storage.bufferpool import BufferPool
from repro.storage.convert import (
    edge_list_file_to_disk_graph,
    edge_list_to_disk_graph,
)
from repro.storage.diskgraph import DiskGraph
from repro.storage.edgelist import (
    read_edge_list,
    read_timestamped_edge_list,
    write_edge_list,
    write_timestamped_edge_list,
)
from repro.storage.iostats import IOStats
from repro.storage.memory import MemoryModel
from repro.storage.pagestore import PAGE_SIZE_BYTES, PageStore
from repro.storage.partitions import HnbPartitionStore, read_partition_file
from repro.storage.random_access import RandomAccessDiskGraph

__all__ = [
    "PAGE_SIZE_BYTES",
    "BufferPool",
    "DiskGraph",
    "HnbPartitionStore",
    "IOStats",
    "MemoryModel",
    "PageStore",
    "RandomAccessDiskGraph",
    "edge_list_file_to_disk_graph",
    "edge_list_to_disk_graph",
    "read_edge_list",
    "read_partition_file",
    "read_timestamped_edge_list",
    "write_edge_list",
    "write_timestamped_edge_list",
]
