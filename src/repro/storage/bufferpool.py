"""A page-granular buffer pool with pluggable replacement policies.

The paper's Section 1 argument against running an in-memory MCE algorithm
over a disk-resident graph is that clique search touches vertices "in a
rather arbitrary manner", turning every neighborhood fetch into a random
disk access.  To *measure* that claim rather than assert it, this module
provides the component such a system would realistically use: a bounded
page cache in front of the metered store.  Hits cost nothing; misses cost
a seek plus a page read on the underlying :class:`PageStore`.

Replacement policies: ``lru`` (default), ``fifo``, and ``clock`` (the
second-chance approximation real buffer managers use).

An optional :class:`~repro.faults.FaultPlan` can inject faults at the
cache-fill site (operation ``"pool_read"``): corrupted page contents,
I/O errors, and latency — modelling bit rot *between* the device and the
cache, which only record-level checksums downstream can catch.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from types import SimpleNamespace
from typing import TYPE_CHECKING

from repro import metrics
from repro.errors import StorageError, StorageIOError
from repro.storage.memory import MemoryModel
from repro.storage.pagestore import PAGE_SIZE_BYTES, PageStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults import FaultPlan

#: Accounting units per cached page (8-byte units, 4096-byte pages).
UNITS_PER_PAGE = PAGE_SIZE_BYTES // 8

_POLICIES = ("lru", "fifo", "clock")

#: Cache behaviour across every pool in the process (hits cost nothing,
#: misses cost a seek + page read on the underlying store).
_METRICS = metrics.bound(
    lambda registry: SimpleNamespace(
        hits=registry.counter(
            "repro_bufferpool_hits_total", "page requests served from cache"
        ),
        misses=registry.counter(
            "repro_bufferpool_misses_total", "page requests that went to disk"
        ),
        evictions=registry.counter(
            "repro_bufferpool_evictions_total", "cached pages evicted"
        ),
        resident=registry.gauge(
            "repro_bufferpool_resident_pages", "currently cached pages"
        ),
    )
)


class BufferPool:
    """Bounded cache of file pages with hit/miss accounting."""

    def __init__(
        self,
        store: PageStore,
        capacity_pages: int,
        policy: str = "lru",
        memory: MemoryModel | None = None,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        if capacity_pages < 1:
            raise StorageError(f"capacity must be at least one page, got {capacity_pages}")
        if policy not in _POLICIES:
            raise StorageError(f"unknown policy {policy!r}; choose from {_POLICIES}")
        self._store = store
        self._capacity = capacity_pages
        self._policy = policy
        self._memory = memory
        self._faults = fault_plan if fault_plan is not None else store.fault_plan
        self._pages: OrderedDict[int, bytes] = OrderedDict()
        self._ref_bits: dict[int, bool] = {}
        self._clock_ring: list[int] = []
        self._clock_hand = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def capacity_pages(self) -> int:
        """Maximum simultaneously cached pages."""
        return self._capacity

    @property
    def resident_pages(self) -> int:
        """Currently cached pages."""
        return len(self._pages)

    @property
    def hit_rate(self) -> float:
        """Fraction of page requests served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset`` through the cache."""
        if length <= 0:
            return b""
        first = offset // PAGE_SIZE_BYTES
        last = (offset + length - 1) // PAGE_SIZE_BYTES
        chunks = [self._page(index) for index in range(first, last + 1)]
        blob = b"".join(chunks)
        start = offset - first * PAGE_SIZE_BYTES
        return blob[start : start + length]

    def drop(self) -> None:
        """Evict everything (and release the memory charge)."""
        while self._pages:
            self._evict_index(next(iter(self._pages)))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _page(self, index: int) -> bytes:
        cached = self._pages.get(index)
        if cached is not None:
            self.hits += 1
            _METRICS().hits.inc()
            if self._policy == "lru":
                self._pages.move_to_end(index)
            elif self._policy == "clock":
                self._ref_bits[index] = True
            return cached
        self.misses += 1
        _METRICS().misses.inc()
        while len(self._pages) >= self._capacity:
            self._evict_one()
        offset = index * PAGE_SIZE_BYTES
        remaining = self._store.size_bytes() - offset
        if remaining <= 0:
            raise StorageError(f"page {index} is beyond the end of {self._store.path}")
        data = self._store.read_at(offset, min(PAGE_SIZE_BYTES, remaining))
        data = self._inject(index, data)
        if self._memory is not None:
            self._memory.allocate(UNITS_PER_PAGE, label="buffer pool")
        self._pages[index] = data
        _METRICS().resident.inc()
        if self._policy == "clock":
            self._ref_bits[index] = True
            self._clock_ring.append(index)
        return data

    def _inject(self, index: int, data: bytes) -> bytes:
        """Consult the fault plan at the cache-fill boundary."""
        if self._faults is None:
            return data
        fault = self._faults.draw("pool_read", path=str(self._store.path))
        if fault is None:
            return data
        if fault.kind == "io_error":
            raise StorageIOError(
                "pool_read", self._store.path, f"injected I/O error on page {index}"
            )
        if fault.kind == "latency":
            time.sleep(fault.latency_seconds)
            return data
        if fault.kind == "corrupt":
            from repro.faults import corrupt_bytes

            return corrupt_bytes(data, fault.fraction)
        return data

    def _evict_one(self) -> None:
        if self._policy in ("lru", "fifo"):
            victim = next(iter(self._pages))  # LRU order / insertion order
        else:  # clock: sweep for an unreferenced page, clearing ref bits
            while True:
                if self._clock_hand >= len(self._clock_ring):
                    self._clock_hand = 0
                candidate = self._clock_ring[self._clock_hand]
                if candidate not in self._pages:
                    self._clock_ring.pop(self._clock_hand)
                    continue
                if self._ref_bits.get(candidate, False):
                    self._ref_bits[candidate] = False
                    self._clock_hand += 1
                    continue
                victim = candidate
                self._clock_ring.pop(self._clock_hand)
                break
        self._evict_index(victim)

    def _evict_index(self, index: int) -> None:
        if self._pages.pop(index, None) is not None:
            bundle = _METRICS()
            bundle.evictions.inc()
            bundle.resident.dec()
        self._ref_bits.pop(index, None)
        if self._memory is not None:
            self._memory.release(UNITS_PER_PAGE, label="buffer pool")
