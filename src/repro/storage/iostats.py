"""Disk I/O accounting.

The paper argues cost in terms of *sequential scans* versus *random disk
accesses* (Sections 1, 4.2.3, 4.4): ExtMCE performs ``O(|G| / |G_H*|)``
sequential scans while a naive external run of an in-memory algorithm would
seek randomly.  :class:`IOStats` counts both so the Table 3 and Table 6
experiments can report measured, not asserted, figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace

from repro import metrics

#: Simulated sequential throughput used to convert counted pages into the
#: "disk-read time" column of Table 3.  100 MB/s of 4 KiB pages.
PAGES_PER_SECOND_SEQUENTIAL = 25_600

#: Simulated random-access cost: a seek plus one page, ~5 ms each
#: (commodity 7200 rpm disk, the class of hardware in the paper's testbed).
SECONDS_PER_SEEK = 0.005

#: Process-wide storage counters, aggregated across every IOStats
#: instance (an ExtMCE run owns several stacks: input graph, residuals,
#: spill partitions).  No-ops until ``repro.metrics.enable()``.
_METRICS = metrics.bound(
    lambda registry: SimpleNamespace(
        pages_read=registry.counter(
            "repro_storage_pages_read_total", "4 KiB pages read across all stores"
        ),
        pages_written=registry.counter(
            "repro_storage_pages_written_total", "4 KiB pages written across all stores"
        ),
        seeks=registry.counter(
            "repro_storage_random_reads_total", "random reads (one seek each)"
        ),
        scans=registry.counter(
            "repro_storage_sequential_scans_total", "full sequential store scans"
        ),
    )
)


@dataclass
class IOStats:
    """Mutable counters for one storage stack."""

    pages_read: int = 0
    pages_written: int = 0
    random_reads: int = 0
    sequential_scans: int = 0

    def record_read(self, pages: int) -> None:
        """Count ``pages`` read as part of a sequential pass."""
        self.pages_read += pages
        _METRICS().pages_read.inc(pages)

    def record_write(self, pages: int) -> None:
        """Count ``pages`` written."""
        self.pages_written += pages
        _METRICS().pages_written.inc(pages)

    def record_seek(self) -> None:
        """Count one random access (a seek before a read)."""
        self.random_reads += 1
        _METRICS().seeks.inc()

    def record_scan(self) -> None:
        """Count one full sequential scan of a store."""
        self.sequential_scans += 1
        _METRICS().scans.inc()

    @property
    def simulated_read_seconds(self) -> float:
        """Modelled wall-clock disk-read time for the counted operations.

        This feeds the "Disk-read time" row of the Table 3 experiment; the
        simulation charges sequential pages at disk bandwidth and each
        random read an additional seek penalty.
        """
        sequential = self.pages_read / PAGES_PER_SECOND_SEQUENTIAL
        seeks = self.random_reads * SECONDS_PER_SEEK
        return sequential + seeks

    def merged_with(self, other: "IOStats") -> "IOStats":
        """Return a new :class:`IOStats` with both sets of counters summed."""
        return IOStats(
            pages_read=self.pages_read + other.pages_read,
            pages_written=self.pages_written + other.pages_written,
            random_reads=self.random_reads + other.random_reads,
            sequential_scans=self.sequential_scans + other.sequential_scans,
        )
