"""Table 6 — recursion counts and the weight of the first step.

The paper checks two predictions of the Section 4 analysis: the number of
recursive steps ExtMCE actually performs tracks the estimate
``|G| / |G_H*|``, and a large share of the total time is spent in the
first (H*-graph) step — which justifies maintaining exactly that step's
results under updates.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.core.extmce import ExtMCE, ExtMCEConfig
from repro.experiments.common import DATASET_NAMES, make_disk_graph
from repro.experiments.common import percent


@dataclass(frozen=True)
class Table6Row:
    """Recursion accounting for one dataset."""

    dataset: str
    recursions: int
    estimated_recursions: float
    first_step_fraction: float
    total_seconds: float
    sequential_scans: int


def run(datasets: tuple[str, ...] = DATASET_NAMES) -> list[Table6Row]:
    """Run ExtMCE per dataset and read its recursion report."""
    rows = []
    for name in datasets:
        with tempfile.TemporaryDirectory(prefix="table6_") as tmp:
            disk = make_disk_graph(name, tmp)
            algo = ExtMCE(disk, ExtMCEConfig(workdir=tmp))
            started = time.perf_counter()
            for _ in algo.enumerate_cliques():
                pass
            elapsed = time.perf_counter() - started
            report = algo.report
            rows.append(
                Table6Row(
                    dataset=name,
                    recursions=report.num_recursions,
                    estimated_recursions=report.estimated_recursions,
                    first_step_fraction=report.first_step_time_fraction,
                    total_seconds=elapsed,
                    sequential_scans=report.sequential_scans,
                )
            )
    return rows


def render(rows: list[Table6Row]) -> str:
    """Paper-style table of actual vs estimated recursion counts."""
    return render_table(
        "Table 6: Actual/estimated number of recursions",
        [
            "dataset",
            "# of recursions",
            "|G|/|G_H*|",
            "time (1st recursion)",
            "total time (s)",
            "scans",
        ],
        [
            (
                row.dataset,
                row.recursions,
                f"{row.estimated_recursions:.1f}",
                percent(row.first_step_fraction),
                f"{row.total_seconds:.2f}",
                row.sequential_scans,
            )
            for row in rows
        ],
    )


def main() -> None:
    """Print the table."""
    print(render(run()))


if __name__ == "__main__":
    main()
