"""Run every experiment and print the paper-style tables in order.

Usage::

    python -m repro.experiments            # all tables
    python -m repro.experiments table4     # just one
"""

from __future__ import annotations

import sys

from repro.experiments import (
    figure3,
    section32,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)

_MODULES = {
    "section32": section32,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "figure3": figure3,
    "table6": table6,
    "table7": table7,
}


def main(argv: list[str]) -> int:
    """Run the selected experiments (all when none named)."""
    names = argv or list(_MODULES)
    unknown = [name for name in names if name not in _MODULES]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(_MODULES)}", file=sys.stderr)
        return 2
    for name in names:
        _MODULES[name].main()
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
