"""Table 5 — why the H*-graph matters: centrality and clique coverage.

Four measurements per dataset, as in the paper:

* average **closeness** of the h-vertices (they reach the rest of the
  graph in few hops);
* **reachability**: the fraction of ``V`` reachable from the h-vertices;
* the **maximal clique counts** — total, containing an h-vertex (the small
  set the dynamic maintainer keeps current), containing an h-neighbor (a
  large share of all cliques);
* the accuracy of the **Knuth estimate** of ``|T_H*|``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import CliqueStatistics, clique_statistics
from repro.analysis.tables import format_quantity, render_table
from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.core.clique_tree import build_clique_tree
from repro.core.estimator import count_backtrack_tree_nodes, estimate_tree_size
from repro.core.hstar import extract_hstar_graph
from repro.experiments.common import DATASET_NAMES, dataset_graph, percent
from repro.graph.stats import average_closeness, reachability_fraction


@dataclass(frozen=True)
class Table5Row:
    """Centrality and clique-coverage figures for one dataset."""

    dataset: str
    closeness: float
    reachability: float
    cliques: CliqueStatistics
    tree_nodes: int
    tree_estimate: float
    backtrack_nodes: int

    @property
    def estimate_ratio(self) -> float:
        """``estimate / prefix-tree nodes`` — conservative (>= ~1)."""
        return self.tree_estimate / self.tree_nodes if self.tree_nodes else 0.0

    @property
    def backtrack_ratio(self) -> float:
        """``estimate / backtracking-tree nodes``.

        The probe unbiasedly targets the backtracking tree — the tree the
        paper's Section 4.1.2 identifies with ``T_H*`` — so this is the
        ratio comparable to the paper's 0.93-1.01 row.
        """
        return (
            self.tree_estimate / self.backtrack_nodes if self.backtrack_nodes else 0.0
        )


def run(
    datasets: tuple[str, ...] = DATASET_NAMES,
    closeness_sample: int = 24,
    estimator_probes: int = 256,
) -> list[Table5Row]:
    """Measure the Table 5 rows (full MCE per dataset; the slow part)."""
    rows = []
    for name in datasets:
        graph = dataset_graph(name)
        star = extract_hstar_graph(graph)
        tree, _ = build_clique_tree(star)
        rows.append(
            Table5Row(
                dataset=name,
                closeness=average_closeness(
                    graph, star.core, sample_size=closeness_sample, seed=0
                ),
                reachability=reachability_fraction(graph, star.core),
                cliques=clique_statistics(
                    tomita_maximal_cliques(graph), star.core, star.periphery
                ),
                tree_nodes=tree.num_nodes,
                tree_estimate=estimate_tree_size(star, num_probes=estimator_probes),
                backtrack_nodes=count_backtrack_tree_nodes(star),
            )
        )
    return rows


def render(rows: list[Table5Row]) -> str:
    """Paper-style table of closeness, reachability and clique counts."""
    return render_table(
        "Table 5: Closeness, reachability, # of max-cliques, and |T_H*|",
        [
            "dataset",
            "closeness (H)",
            "reachability (H)",
            "# max-cliques",
            "(contain H)",
            "(contain Hnb)",
            "est/actual |T_H*|",
            "(vs prefix tree)",
        ],
        [
            (
                row.dataset,
                f"{row.closeness:.1f}",
                percent(row.reachability),
                format_quantity(row.cliques.total),
                format_quantity(row.cliques.containing_core),
                format_quantity(row.cliques.containing_periphery),
                f"{row.backtrack_ratio:.2f}",
                f"{row.estimate_ratio:.2f}",
            )
            for row in rows
        ],
    )


def main() -> None:
    """Print the table."""
    print(render(run()))


if __name__ == "__main__":
    main()
