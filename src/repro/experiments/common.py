"""Shared plumbing for the experiment modules.

The memory budget below plays the role of the paper testbed's 2 GB RAM:
it is deliberately placed *between* the in-memory algorithm's footprint on
the two smaller datasets (which fit) and on the two larger ones (which do
not), while leaving room for ExtMCE's ``O(|G_H*| + |T_H*|)`` peak on all
four — reproducing the Figure 3(b) contrast.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path

from repro.generators import DATASETS, DatasetSpec
from repro.graph.adjacency import AdjacencyGraph
from repro.storage.diskgraph import DiskGraph
from repro.storage.iostats import IOStats

#: The simulated machine's main-memory budget, in accounting units.
#: In-memory MCE needs ``2m + n`` units: protein (~10K) and blogs (~78K)
#: fit; lj (~228K) and web (~340K) exceed it.  ExtMCE peaks below it on
#: every dataset.
EXPERIMENT_MEMORY_BUDGET_UNITS = 200_000

#: Default dataset order, matching the paper's tables.
DATASET_NAMES = ("protein", "blogs", "lj", "web")


def dataset_spec(name: str) -> DatasetSpec:
    """Spec for a dataset by name (KeyError for unknown names)."""
    return DATASETS[name]


@lru_cache(maxsize=None)
def dataset_graph(name: str) -> AdjacencyGraph:
    """The (memoised) in-memory graph for a dataset stand-in."""
    return DATASETS[name].graph()


def make_disk_graph(name: str, directory: str | Path) -> DiskGraph:
    """Write a dataset to disk storage inside ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return DiskGraph.create(directory / f"{name}.bin", dataset_graph(name), IOStats())


def percent(fraction: float) -> str:
    """Format a fraction as the paper's integer-percent style."""
    return f"{100 * fraction:.0f}%"
