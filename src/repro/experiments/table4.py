"""Table 4 — sizes of H, Hnb, G_H, G_H*, G_H+.

The paper's argument for the H*-graph (Section 3.3) is quantitative:
``G_H`` is too small to amortise disk scans, ``G_H+`` is too large for
memory, and ``G_H*`` sits in between at a useful 4-31% of ``|G|``.  This
experiment reproduces those columns, including the percent-of-``|G|``
annotations, and adds the Eq. (3)/(7) predictions from the fitted rank
exponent so the Section 3.2 bounds can be checked against measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import HStarSizes, hstar_sizes
from repro.analysis.tables import format_quantity, render_table
from repro.core.hstar import extract_hstar_graph
from repro.experiments.common import DATASET_NAMES, dataset_graph, percent
from repro.graph.powerlaw import fit_rank_exponent, predicted_h


@dataclass(frozen=True)
class Table4Row:
    """Size breakdown for one dataset."""

    dataset: str
    sizes: HStarSizes
    rank_exponent: float
    predicted_h_bound: int


def run(datasets: tuple[str, ...] = DATASET_NAMES) -> list[Table4Row]:
    """Measure the Table 4 columns for each dataset."""
    rows = []
    for name in datasets:
        graph = dataset_graph(name)
        star = extract_hstar_graph(graph)
        fit = fit_rank_exponent(graph)
        bound = (
            predicted_h(graph.num_vertices, fit.rank_exponent)
            if fit.rank_exponent < 0
            else 0
        )
        rows.append(
            Table4Row(
                dataset=name,
                sizes=hstar_sizes(graph, star),
                rank_exponent=fit.rank_exponent,
                predicted_h_bound=bound,
            )
        )
    return rows


def render(rows: list[Table4Row]) -> str:
    """Paper-style table with percent-of-|G| annotations."""
    return render_table(
        "Table 4: Sizes of H, Hnb, G_H, G_H* and G_H+",
        ["dataset", "|H|", "|Hnb|", "|G_H|", "|G_H*|", "|G_H+|", "R", "h bound (Eq.3)"],
        [
            (
                row.dataset,
                row.sizes.h,
                format_quantity(row.sizes.num_periphery),
                f"{format_quantity(row.sizes.core_graph_edges)} ({percent(row.sizes.core_fraction)})",
                f"{format_quantity(row.sizes.star_graph_edges)} ({percent(row.sizes.star_fraction)})",
                f"{format_quantity(row.sizes.extended_graph_edges)} ({percent(row.sizes.extended_fraction)})",
                f"{row.rank_exponent:.2f}",
                row.predicted_h_bound,
            )
            for row in rows
        ],
    )


def main() -> None:
    """Print the table."""
    print(render(run()))


if __name__ == "__main__":
    main()
