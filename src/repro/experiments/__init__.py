"""Experiment harness: one module per table/figure of the paper's Section 6.

Every module exposes ``run(...)`` returning structured rows and
``render(rows)`` producing a paper-style text table; running a module as a
script prints the table.  The benchmarks under ``benchmarks/`` wrap these
same entry points, so the numbers in ``EXPERIMENTS.md`` regenerate with
``pytest benchmarks/ --benchmark-only`` or with::

    python -m repro.experiments

which prints every table in order.
"""

from repro.experiments import (  # noqa: F401  (re-exported for discoverability)
    figure3,
    section32,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)

__all__ = [
    "figure3",
    "section32",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
]
