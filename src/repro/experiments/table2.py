"""Table 2 — dataset sizes (n, m, physical storage).

The paper lists the four datasets' vertex/edge counts and on-disk sizes.
This experiment reports the same columns for the synthetic stand-ins next
to the original figures, so the scale factor of the substitution is
explicit.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass

from repro.analysis.tables import format_quantity, render_table
from repro.experiments.common import DATASET_NAMES, dataset_graph, dataset_spec, make_disk_graph


@dataclass(frozen=True)
class Table2Row:
    """One dataset's size figures, measured and from the paper."""

    dataset: str
    num_vertices: int
    num_edges: int
    storage_mb: float
    paper_vertices: int
    paper_edges: int
    paper_storage_mb: float


def run(datasets: tuple[str, ...] = DATASET_NAMES) -> list[Table2Row]:
    """Measure every dataset stand-in (writes each to temp disk storage)."""
    rows = []
    for name in datasets:
        spec = dataset_spec(name)
        graph = dataset_graph(name)
        with tempfile.TemporaryDirectory(prefix="table2_") as tmp:
            disk = make_disk_graph(name, tmp)
            storage_mb = disk.path.stat().st_size / (1024 * 1024)
        rows.append(
            Table2Row(
                dataset=name,
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges,
                storage_mb=storage_mb,
                paper_vertices=spec.paper_vertices,
                paper_edges=spec.paper_edges,
                paper_storage_mb=spec.paper_storage_mb,
            )
        )
    return rows


def render(rows: list[Table2Row]) -> str:
    """Paper-style table with measured and original columns."""
    return render_table(
        "Table 2: Datasets (synthetic stand-ins; paper figures for scale)",
        ["dataset", "n", "m", "storage (MB)", "paper n", "paper m", "paper MB"],
        [
            (
                row.dataset,
                format_quantity(row.num_vertices),
                format_quantity(row.num_edges),
                f"{row.storage_mb:.2f}",
                format_quantity(row.paper_vertices),
                format_quantity(row.paper_edges),
                f"{row.paper_storage_mb:.0f}",
            )
            for row in rows
        ],
    )


def main() -> None:
    """Print the table."""
    print(render(run()))


if __name__ == "__main__":
    main()
