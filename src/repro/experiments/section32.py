"""Section 3.2 — the analytical size bounds, validated quantitatively.

Not a numbered table in the paper, but the analysis its memory story rests
on: Eq. (3)'s bound on ``h`` and Eq. (7)'s band for ``|G_H*| / |G|``, both
functions of the rank exponent ``R`` alone.  The dataset stand-ins obey
the power law only approximately, so this experiment generates
configuration-model graphs that satisfy Eq. (1) exactly (see
:mod:`repro.generators.rank_law`) and compares prediction with
measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.core.hstar import extract_hstar_graph
from repro.generators.rank_law import rank_power_law_graph
from repro.graph.powerlaw import predicted_h, predicted_hstar_size_bounds

DEFAULT_CASES = (
    (-0.7, 5_000),
    (-0.7, 20_000),
    (-0.8, 5_000),
    (-0.8, 20_000),
)


@dataclass(frozen=True)
class Section32Row:
    """Prediction-vs-measurement for one (R, n) case."""

    rank_exponent: float
    num_vertices: int
    num_edges: int
    measured_h: int
    predicted_h: int
    measured_fraction: float
    predicted_lower: float
    predicted_upper: float


def run(cases: tuple[tuple[float, int], ...] = DEFAULT_CASES) -> list[Section32Row]:
    """Generate each exact-law graph and measure h and |G_H*|/|G|."""
    rows = []
    for rank_exponent, num_vertices in cases:
        graph = rank_power_law_graph(num_vertices, rank_exponent, seed=1)
        star = extract_hstar_graph(graph)
        bounds = predicted_hstar_size_bounds(num_vertices, rank_exponent)
        rows.append(
            Section32Row(
                rank_exponent=rank_exponent,
                num_vertices=num_vertices,
                num_edges=graph.num_edges,
                measured_h=star.h,
                predicted_h=predicted_h(num_vertices, rank_exponent),
                measured_fraction=star.size_edges / graph.num_edges,
                predicted_lower=bounds.lower_fraction,
                predicted_upper=bounds.upper_fraction,
            )
        )
    return rows


def render(rows: list[Section32Row]) -> str:
    """Prediction-vs-measurement table."""
    return render_table(
        "Section 3.2: Eq. (3) / Eq. (7) on exact rank-law graphs",
        ["R", "n", "m", "h measured", "h predicted", "|G_H*|/|G|", "Eq.7 band"],
        [
            (
                row.rank_exponent,
                row.num_vertices,
                row.num_edges,
                row.measured_h,
                row.predicted_h,
                f"{row.measured_fraction:.3f}",
                f"[{row.predicted_lower:.3f}, {row.predicted_upper:.3f}]",
            )
            for row in rows
        ],
    )


def main() -> None:
    """Print the table."""
    print(render(run()))


if __name__ == "__main__":
    main()
