"""Figure 3 — running time and memory of ExtMCE vs in-mem vs streaming.

The paper's headline comparison:

* **ExtMCE** matches the in-memory algorithm's time on the small datasets
  while using a fraction of the memory (Figure 3(a)/(b), protein+blogs);
* **in-mem** (Tomita et al.) *runs out of memory* on lj and web, where
  ExtMCE still completes within its ``O(|G_H*| + |T_H*|)`` bound;
* **streaming** (Stix) is orders of magnitude slower and is only run on
  the smallest dataset, exactly as in the paper.

The shared memory budget plays the testbed's 2 GB of RAM; see
:mod:`repro.experiments.common`.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.baselines.stix import StixDynamicMCE
from repro.core.extmce import ExtMCE, ExtMCEConfig
from repro.errors import MemoryBudgetExceeded
from repro.experiments.common import (
    DATASET_NAMES,
    EXPERIMENT_MEMORY_BUDGET_UNITS,
    dataset_graph,
    dataset_spec,
    make_disk_graph,
)
from repro.storage.memory import MemoryModel


@dataclass(frozen=True)
class Figure3Row:
    """One (dataset, algorithm) measurement."""

    dataset: str
    algorithm: str
    seconds: float | None
    peak_memory_mb: float | None
    cliques: int | None
    status: str  # "ok", "out of memory", or "skipped"


def run(
    datasets: tuple[str, ...] = DATASET_NAMES,
    budget_units: int = EXPERIMENT_MEMORY_BUDGET_UNITS,
    streaming_datasets: tuple[str, ...] = ("protein",),
) -> list[Figure3Row]:
    """Run all three algorithms per dataset under the shared budget."""
    rows = []
    for name in datasets:
        rows.append(_run_extmce(name, budget_units))
        rows.append(_run_inmem(name, budget_units))
        if name in streaming_datasets:
            rows.append(_run_streaming(name, budget_units))
        else:
            rows.append(Figure3Row(name, "streaming", None, None, None, "skipped"))
    return rows


def _run_extmce(name: str, budget_units: int) -> Figure3Row:
    with tempfile.TemporaryDirectory(prefix="figure3_") as tmp:
        disk = make_disk_graph(name, tmp)
        memory = MemoryModel(budget=budget_units)
        config = ExtMCEConfig(workdir=tmp, memory_budget_units=budget_units)
        algo = ExtMCE(disk, config, memory=memory)
        started = time.perf_counter()
        try:
            count = sum(1 for _ in algo.enumerate_cliques())
        except MemoryBudgetExceeded:
            return Figure3Row(name, "ExtMCE", None, None, None, "out of memory")
        elapsed = time.perf_counter() - started
    return Figure3Row(name, "ExtMCE", elapsed, memory.peak_megabytes, count, "ok")


def _run_inmem(name: str, budget_units: int) -> Figure3Row:
    graph = dataset_graph(name)
    memory = MemoryModel(budget=budget_units)
    started = time.perf_counter()
    try:
        count = sum(1 for _ in tomita_maximal_cliques(graph, memory=memory))
    except MemoryBudgetExceeded:
        return Figure3Row(name, "in-mem", None, None, None, "out of memory")
    elapsed = time.perf_counter() - started
    return Figure3Row(name, "in-mem", elapsed, memory.peak_megabytes, count, "ok")


def _run_streaming(name: str, budget_units: int) -> Figure3Row:
    spec = dataset_spec(name)
    memory = MemoryModel(budget=None)  # measure, don't cap: the paper reports
    started = time.perf_counter()  # streaming's (huge) usage rather than aborting
    algo = StixDynamicMCE(memory=memory)
    for u, v in spec.edges():
        algo.insert_edge(u, v)
    for vertex in range(spec.num_vertices):
        algo.add_vertex(vertex)  # isolated vertices still form singleton cliques
    elapsed = time.perf_counter() - started
    return Figure3Row(
        name, "streaming", elapsed, memory.peak_megabytes, algo.num_cliques(), "ok"
    )


def render(rows: list[Figure3Row]) -> str:
    """Both panels of Figure 3 as one table."""
    return render_table(
        "Figure 3: Performance of ExtMCE (time = panel a, memory = panel b)",
        ["dataset", "algorithm", "time (s)", "peak memory (MB)", "# cliques", "status"],
        [
            (
                row.dataset,
                row.algorithm,
                "-" if row.seconds is None else f"{row.seconds:.2f}",
                "-" if row.peak_memory_mb is None else f"{row.peak_memory_mb:.3f}",
                "-" if row.cliques is None else row.cliques,
                row.status,
            )
            for row in rows
        ],
    )


def main() -> None:
    """Print the table."""
    print(render(run()))


if __name__ == "__main__":
    main()
