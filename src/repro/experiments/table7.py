"""Table 7 — update maintenance on a growing network.

The paper replays a year of blogs-crawl growth in six periods (P1-P6) and
reports, per period: the average cost of an update that touches ``T_H*``,
how many updates do, the h-vertex count and retention across periods, the
resident memory, and the time to recompute the full maximal clique set
*with* the maintained tree versus *from scratch*.

The stand-in replays the blogs generator's creation-order stream through
:class:`~repro.dynamic.HStarMaintainer` after a small warm-up prefix (the
paper's pre-existing 347K-edge snapshot).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass

from repro.analysis.tables import format_quantity, render_table
from repro.dynamic.maintainer import HStarMaintainer
from repro.experiments.common import dataset_spec, percent
from repro.generators.streams import edge_stream, split_into_periods
from repro.storage.memory import BYTES_PER_UNIT


@dataclass(frozen=True)
class Table7Row:
    """Maintenance measurements for one period."""

    period: str
    average_update_ms: float
    updates_in_star: int
    updates_in_graph: int
    num_h_vertices: int
    h_vertices_retained: float
    memory_mb: float
    seconds_with_tree: float
    seconds_without_tree: float


def run(
    dataset: str = "blogs",
    num_periods: int = 6,
    warmup_fraction: float = 0.05,
    compute_full: bool = True,
) -> list[Table7Row]:
    """Replay the growth stream and measure each period.

    ``compute_full=False`` skips the two full MCE runs per period (the
    most expensive part) and reports zeros in those columns.
    """
    spec = dataset_spec(dataset)
    stream = edge_stream(spec.edges())
    warmup, periods = split_into_periods(stream, num_periods, warmup_fraction)

    maintainer = HStarMaintainer()
    maintainer.apply_stream(warmup)

    rows = []
    previous_core = maintainer.core
    for index, period in enumerate(periods, start=1):
        baseline = maintainer.stats
        start_hits = baseline.updates_hitting_star
        start_total = baseline.updates_total
        start_seconds = baseline.hit_seconds_total
        maintainer.apply_stream(period)
        core = maintainer.core
        retained = (
            len(previous_core & core) / len(previous_core) if previous_core else 1.0
        )
        previous_core = core

        hits = maintainer.stats.updates_hitting_star - start_hits
        total = maintainer.stats.updates_total - start_total
        hit_seconds = maintainer.stats.hit_seconds_total - start_seconds
        with_tree = without_tree = 0.0
        if compute_full:
            with tempfile.TemporaryDirectory(prefix="table7_") as tmp:
                _, report = maintainer.compute_all_max_cliques(
                    f"{tmp}/with", use_maintained_tree=True
                )
                with_tree = report.elapsed_seconds
                _, report = maintainer.compute_all_max_cliques(
                    f"{tmp}/without", use_maintained_tree=False
                )
                without_tree = report.elapsed_seconds
        rows.append(
            Table7Row(
                period=f"P{index}",
                average_update_ms=(1000.0 * hit_seconds / hits) if hits else 0.0,
                updates_in_star=hits,
                updates_in_graph=total,
                num_h_vertices=len(core),
                h_vertices_retained=retained,
                memory_mb=maintainer.resident_memory_units * BYTES_PER_UNIT / (1024 * 1024),
                seconds_with_tree=with_tree,
                seconds_without_tree=without_tree,
            )
        )
    return rows


def render(rows: list[Table7Row]) -> str:
    """Paper-style Table 7 (periods as columns in the paper; rows here)."""
    return render_table(
        "Table 7: Results for update maintenance",
        [
            "period",
            "avg update (ms)",
            "# updates in G_H*",
            "# updates in G",
            "# h-vertices",
            "% retained",
            "memory (MB)",
            "time w/ T_H* (s)",
            "time w/o T_H* (s)",
        ],
        [
            (
                row.period,
                f"{row.average_update_ms:.2f}",
                format_quantity(row.updates_in_star),
                format_quantity(row.updates_in_graph),
                row.num_h_vertices,
                percent(row.h_vertices_retained),
                f"{row.memory_mb:.3f}",
                f"{row.seconds_with_tree:.2f}",
                f"{row.seconds_without_tree:.2f}",
            )
            for row in rows
        ],
    )


def main() -> None:
    """Print the table."""
    print(render(run()))


if __name__ == "__main__":
    main()
