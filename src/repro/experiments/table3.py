"""Table 3 — cost of extracting the H*-graph.

The paper reports, per dataset, the total wall-clock time to run
Algorithm 1 over the on-disk graph, the share of it spent reading the
disk, and the memory used.  The stand-in measures the same three columns:
wall time of the metered one-scan extraction, the storage layer's modelled
disk-read time for the pages it counted, and the memory model's peak.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.core.hstar import extract_hstar_graph
from repro.experiments.common import DATASET_NAMES, make_disk_graph
from repro.storage.memory import MemoryModel


@dataclass(frozen=True)
class Table3Row:
    """Extraction cost for one dataset."""

    dataset: str
    total_seconds: float
    disk_read_seconds: float
    memory_mb: float
    h: int
    star_edges: int


def run(datasets: tuple[str, ...] = DATASET_NAMES) -> list[Table3Row]:
    """Extract ``G_H*`` from disk for each dataset and measure the cost."""
    rows = []
    for name in datasets:
        with tempfile.TemporaryDirectory(prefix="table3_") as tmp:
            disk = make_disk_graph(name, tmp)
            disk.io_stats.pages_read = 0  # creation traffic is not extraction cost
            disk.io_stats.random_reads = 0
            memory = MemoryModel()
            started = time.perf_counter()
            star = extract_hstar_graph(disk, memory=memory)
            elapsed = time.perf_counter() - started
            rows.append(
                Table3Row(
                    dataset=name,
                    total_seconds=elapsed,
                    disk_read_seconds=disk.io_stats.simulated_read_seconds,
                    memory_mb=memory.peak_megabytes,
                    h=star.h,
                    star_edges=star.size_edges,
                )
            )
    return rows


def render(rows: list[Table3Row]) -> str:
    """Paper-style table of extraction time and memory."""
    return render_table(
        "Table 3: Time and memory usage of extracting G_H*",
        ["dataset", "total time (s)", "disk-read time (s)", "memory (MB)", "h", "|G_H*|"],
        [
            (
                row.dataset,
                f"{row.total_seconds:.3f}",
                f"{row.disk_read_seconds:.4f}",
                f"{row.memory_mb:.3f}",
                row.h,
                row.star_edges,
            )
            for row in rows
        ],
    )


def main() -> None:
    """Print the table."""
    print(render(run()))


if __name__ == "__main__":
    main()
