"""Shared-memory parallel maximal clique enumeration (reference baseline).

A faithful, self-contained instance of the Par-TTT recipe of Das,
Sanei-Mehri & Tirthapura (arXiv:1807.09417): split the pivoted
backtracking search tree at the root into one subproblem per vertex —
the subproblem of ``v`` enumerates exactly the maximal cliques whose
smallest member is ``v`` (see :func:`~repro.baselines.bron_kerbosch.
tomita_subproblem`) — and process the subproblems on a worker pool.
Because the subproblems partition the clique set, no cross-worker
deduplication is needed and the merged output is independent of the
worker count.

The module exists as a *cross-check* for :class:`repro.parallel.driver.
ParallelExtMCE`: it parallelizes the in-memory comparator the same way
the parallel driver parallelizes ExtMCE's step internals, so the test
suite can triangulate serial ExtMCE, parallel ExtMCE, and this baseline
against each other.  It deliberately shares no machinery with
:mod:`repro.parallel` beyond the subproblem split.
"""

from __future__ import annotations

import multiprocessing

from repro.baselines.bron_kerbosch import tomita_subproblem
from repro.graph.adjacency import AdjacencyGraph

Clique = frozenset

#: Module-level worker state, installed by the pool initializer (plain
#: function + global is the picklable idiom ``multiprocessing`` needs).
_WORKER_GRAPH: AdjacencyGraph | None = None


def _init_worker(adjacency: dict[int, tuple[int, ...]]) -> None:
    global _WORKER_GRAPH
    _WORKER_GRAPH = AdjacencyGraph.from_adjacency(adjacency)


def _run_subproblems(vertices: tuple[int, ...]) -> list[tuple[int, ...]]:
    assert _WORKER_GRAPH is not None
    results: list[tuple[int, ...]] = []
    for v in vertices:
        for clique in tomita_subproblem(_WORKER_GRAPH, v):
            results.append(tuple(sorted(clique)))
    return results


def _chunk_vertices(vertices: list[int], num_chunks: int) -> list[tuple[int, ...]]:
    """Stripe vertices round-robin so heavy low-degree-ordered prefixes
    do not all land in one chunk."""
    chunks: list[list[int]] = [[] for _ in range(max(1, num_chunks))]
    for index, v in enumerate(vertices):
        chunks[index % len(chunks)].append(v)
    return [tuple(chunk) for chunk in chunks if chunk]


def parallel_bron_kerbosch_maximal_cliques(
    graph: AdjacencyGraph,
    workers: int = 2,
) -> list[Clique]:
    """Enumerate all maximal cliques with a worker pool.

    Vertices must be sortable integers (the subproblem split keys on the
    vertex order).  Returns the cliques in a canonical order — sorted by
    their sorted vertex tuple — that is identical for every ``workers``
    value, including the in-process ``workers=1`` path.  Falls back to
    in-process execution if the pool cannot be created or dies.
    """
    vertices = sorted(graph.vertices())
    if not vertices:
        return []
    adjacency = {
        v: tuple(sorted(graph.neighbors(v))) for v in vertices
    }
    chunks = _chunk_vertices(vertices, num_chunks=4 * max(1, workers))
    raw: list[tuple[int, ...]] = []
    if workers > 1:
        try:
            with multiprocessing.Pool(
                processes=workers, initializer=_init_worker, initargs=(adjacency,)
            ) as pool:
                for chunk_result in pool.map(_run_subproblems, chunks, chunksize=1):
                    raw.extend(chunk_result)
        except Exception:
            raw = []
    if not raw:
        target = AdjacencyGraph.from_adjacency(adjacency)
        for chunk in chunks:
            for v in chunk:
                for clique in tomita_subproblem(target, v):
                    raw.append(tuple(sorted(clique)))
    return [frozenset(clique) for clique in sorted(raw)]
