"""Degeneracy-ordered maximal clique enumeration (Eppstein & Strash).

Not part of the paper's comparison, but included as the natural modern
in-memory baseline and used by the ordering ablation bench: the outer loop
walks vertices in degeneracy order and runs a pivoted search on each
vertex's later neighborhood, which bounds the subproblem size by the
degeneracy rather than the maximum degree.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.baselines.bron_kerbosch import Clique, _expand_pivot
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.ordering import degeneracy_ordering


def degeneracy_maximal_cliques(graph: AdjacencyGraph) -> Iterator[Clique]:
    """Enumerate all maximal cliques using a degeneracy-ordered outer loop.

    Yields each maximal clique exactly once as a ``frozenset``; isolated
    vertices yield singletons.
    """
    ordering, _ = degeneracy_ordering(graph)
    position = {v: i for i, v in enumerate(ordering)}
    for v in ordering:
        neighbors = graph.neighbors(v)
        candidates = {u for u in neighbors if position[u] > position[v]}
        excluded = {u for u in neighbors if position[u] < position[v]}
        yield from _expand_pivot(graph, [v], candidates, excluded, None)
