"""The naive external-memory strawman: in-memory MCE over a page cache.

Section 1 of the paper: "MCE computations access vertices in a rather
arbitrary manner.  This potential random disk access requirement makes it
difficult to divide the graph and process it in a part-by-part manner."
This module is that strawman, built properly — Tomita's pivoted search
fetching every neighborhood through a bounded buffer pool — so the random
access blowup can be *measured* against ExtMCE's sequential scans
(``benchmarks/test_random_access.py``).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.baselines.bron_kerbosch import Clique
from repro.storage.random_access import RandomAccessDiskGraph


def tomita_maximal_cliques_on_disk(
    graph: RandomAccessDiskGraph,
) -> Iterator[Clique]:
    """Enumerate all maximal cliques with adjacency fetched from disk.

    Identical search tree to
    :func:`~repro.baselines.bron_kerbosch.tomita_maximal_cliques`; the
    only difference is where ``nb(v)`` comes from.  Every neighborhood
    request goes through the buffer pool, so the pool's hit/miss counters
    and the store's seek counter quantify the access pattern.
    """
    yield from _expand(graph, [], set(graph.vertices()), set())


def _expand(
    graph: RandomAccessDiskGraph,
    current: list[int],
    candidates: set[int],
    excluded: set[int],
) -> Iterator[Clique]:
    if not candidates and not excluded:
        if current:
            yield frozenset(current)
        return
    pivot = _choose_pivot(graph, candidates, excluded)
    extension = candidates - graph.neighbors(pivot)
    for v in sorted(extension):
        neighbors = graph.neighbors(v)
        current.append(v)
        yield from _expand(graph, current, candidates & neighbors, excluded & neighbors)
        current.pop()
        candidates.discard(v)
        excluded.add(v)


def _choose_pivot(
    graph: RandomAccessDiskGraph,
    candidates: set[int],
    excluded: set[int],
) -> int:
    best_vertex = None
    best_score = -1
    for u in candidates | excluded:
        score = len(candidates & graph.neighbors(u))
        if score > best_score or (score == best_score and (best_vertex is None or u < best_vertex)):
            best_vertex = u
            best_score = score
    assert best_vertex is not None
    return best_vertex
