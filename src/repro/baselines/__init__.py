"""In-memory MCE baselines the paper compares against.

* :func:`tomita_maximal_cliques` — the pivoting backtracking algorithm of
  Tomita et al. (2006), the paper's state-of-the-art ``in-mem`` comparator
  (reference [27]).
* :class:`StixDynamicMCE` — the incremental algorithm of Stix (2004), the
  paper's ``streaming`` comparator (reference [26]).
* :func:`bron_kerbosch_maximal_cliques` — the classic unpivoted algorithm
  (reference [7]); used as an independent correctness oracle in tests.
* :func:`degeneracy_maximal_cliques` — Eppstein-Strash degeneracy-ordered
  enumeration, included for the ordering ablation bench.
* :func:`parallel_bron_kerbosch_maximal_cliques` — Par-TTT-style
  shared-memory parallel enumeration (Das et al., 2018); the cross-check
  for :mod:`repro.parallel`.
"""

from repro.baselines.bron_kerbosch import (
    bron_kerbosch_maximal_cliques,
    tomita_maximal_cliques,
    tomita_subproblem,
)
from repro.baselines.degeneracy import degeneracy_maximal_cliques
from repro.baselines.ondisk import tomita_maximal_cliques_on_disk
from repro.baselines.parallel_bk import parallel_bron_kerbosch_maximal_cliques
from repro.baselines.stix import StixDynamicMCE

__all__ = [
    "StixDynamicMCE",
    "bron_kerbosch_maximal_cliques",
    "degeneracy_maximal_cliques",
    "parallel_bron_kerbosch_maximal_cliques",
    "tomita_maximal_cliques",
    "tomita_maximal_cliques_on_disk",
    "tomita_subproblem",
]
