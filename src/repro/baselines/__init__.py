"""In-memory MCE baselines the paper compares against.

* :func:`tomita_maximal_cliques` — the pivoting backtracking algorithm of
  Tomita et al. (2006), the paper's state-of-the-art ``in-mem`` comparator
  (reference [27]).
* :class:`StixDynamicMCE` — the incremental algorithm of Stix (2004), the
  paper's ``streaming`` comparator (reference [26]).
* :func:`bron_kerbosch_maximal_cliques` — the classic unpivoted algorithm
  (reference [7]); used as an independent correctness oracle in tests.
* :func:`degeneracy_maximal_cliques` — Eppstein-Strash degeneracy-ordered
  enumeration, included for the ordering ablation bench.
"""

from repro.baselines.bron_kerbosch import (
    bron_kerbosch_maximal_cliques,
    tomita_maximal_cliques,
)
from repro.baselines.degeneracy import degeneracy_maximal_cliques
from repro.baselines.ondisk import tomita_maximal_cliques_on_disk
from repro.baselines.stix import StixDynamicMCE

__all__ = [
    "StixDynamicMCE",
    "bron_kerbosch_maximal_cliques",
    "degeneracy_maximal_cliques",
    "tomita_maximal_cliques",
    "tomita_maximal_cliques_on_disk",
]
