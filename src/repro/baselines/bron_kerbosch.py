"""Backtracking maximal clique enumeration.

Two variants are provided:

* :func:`bron_kerbosch_maximal_cliques` — Bron & Kerbosch's Algorithm 457
  (1973) without pivoting.  Simple and independently verifiable; the test
  suite uses it as a correctness oracle.
* :func:`tomita_maximal_cliques` — the pivoted variant of Tomita, Tanaka &
  Takahashi (2006), worst-case optimal ``O(3^{n/3})``.  This is the paper's
  state-of-the-art in-memory comparator (``in-mem`` in Section 6) and also
  the algorithm ``A`` that ExtMCE plugs in to construct the H*-max-clique
  tree (Algorithm 3, Line 6).

Both are implemented iteratively-recursive over neighbor sets and accept an
optional :class:`~repro.storage.memory.MemoryModel` so the Figure 3(b)
experiment can account the whole graph plus recursion state against a
memory budget, the way the paper's in-memory baseline occupies RAM.
"""

from __future__ import annotations

from collections.abc import Iterator
from types import SimpleNamespace
from typing import TYPE_CHECKING

from repro import metrics
from repro.graph.adjacency import AdjacencyGraph, Vertex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.storage.memory import MemoryModel

Clique = frozenset

#: Per-subproblem aggregates for the set-algebra path; the bitset path
#: reports the same families labeled ``kernel="bitset"`` from
#: :mod:`repro.kernel.bitmce`.
_METRICS = metrics.bound(
    lambda registry: SimpleNamespace(
        subproblems=registry.counter(
            "repro_kernel_subproblems_total",
            "root subproblems expanded by the enumeration kernels",
            labels={"kernel": "set"},
        ),
        cliques=registry.counter(
            "repro_kernel_cliques_total",
            "maximal cliques produced by kernel subproblems",
            labels={"kernel": "set"},
        ),
        sizes=registry.histogram(
            "repro_kernel_subproblem_size",
            "candidate-set size at each subproblem root",
            labels={"kernel": "set"},
            buckets=metrics.SIZE_BUCKETS,
        ),
    )
)


def _counted(source: Iterator[Clique]) -> Iterator[Clique]:
    """Pass cliques through, counting them into the kernel metrics."""
    cliques = _METRICS().cliques
    for clique in source:
        cliques.inc()
        yield clique


def bron_kerbosch_maximal_cliques(graph: AdjacencyGraph) -> Iterator[Clique]:
    """Enumerate all maximal cliques without pivoting (Algorithm 457).

    Yields each maximal clique exactly once as a ``frozenset``.  Isolated
    vertices are maximal cliques of size one, matching the paper's
    convention in Section 4.3.
    """
    yield from _expand_plain(graph, set(), set(graph.vertices()), set())


def _expand_plain(
    graph: AdjacencyGraph,
    current: set[Vertex],
    candidates: set[Vertex],
    excluded: set[Vertex],
) -> Iterator[Clique]:
    if not candidates and not excluded:
        if current:
            yield frozenset(current)
        return
    for v in sorted(candidates):
        neighbors = graph.neighbors(v)
        current.add(v)
        yield from _expand_plain(graph, current, candidates & neighbors, excluded & neighbors)
        current.discard(v)
        candidates.discard(v)
        excluded.add(v)


def tomita_subproblem(
    graph: AdjacencyGraph,
    start: Vertex,
    kernel: str = "set",
) -> Iterator[Clique]:
    """Enumerate the maximal cliques whose smallest member is ``start``.

    This is the root split of the Par-TTT vertex decomposition (Das,
    Sanei-Mehri & Tirthapura, 2018): seeding the pivoted expansion with
    ``current = {start}``, ``candidates = nb(start) ∩ {u > start}`` and
    ``excluded = nb(start) ∩ {u < start}`` yields exactly the maximal
    cliques whose ≺-minimum vertex is ``start`` — a clique containing a
    smaller vertex can never surface (that vertex sits in ``excluded``
    forever), and a clique whose minimum is ``start`` is reachable and
    passes the emptiness test because no smaller vertex extends it.
    The union over all vertices therefore partitions the clique set,
    which is what makes per-vertex subproblems independently
    distributable with no cross-worker deduplication.

    ``kernel="bitset"`` routes the expansion through
    :mod:`repro.kernel` (identical stream, bitmask hot path).
    """
    from repro.kernel import validate_kernel

    if validate_kernel(kernel) == "bitset":
        from repro.kernel import CompactGraph, subproblem_bitset

        graph.neighbors(start)  # surface VertexNotFoundError eagerly
        yield from subproblem_bitset(CompactGraph.from_adjacency(graph), start)
        return
    neighbors = graph.neighbors(start)
    candidates = {u for u in neighbors if u > start}
    excluded = {u for u in neighbors if u < start}
    bundle = _METRICS()
    bundle.subproblems.inc()
    bundle.sizes.observe(len(candidates))
    yield from _counted(_expand_pivot(graph, [start], candidates, excluded, None))


def tomita_maximal_cliques(
    graph: AdjacencyGraph,
    memory: "MemoryModel | None" = None,
    kernel: str = "set",
    reduction: str = "off",
) -> Iterator[Clique]:
    """Enumerate all maximal cliques with Tomita-style max-pivoting.

    The pivot ``u`` is chosen from ``candidates | excluded`` to maximise
    ``|candidates ∩ nb(u)|``, and only candidates outside ``nb(u)`` are
    expanded — the pruning that makes the algorithm worst-case optimal.

    When ``memory`` is given, the full adjacency structure (``2m`` entries
    plus one per vertex) is charged for the duration of the enumeration and
    each recursion level charges its candidate sets, reproducing the linear
    space behaviour the paper criticises in Section 1.

    ``kernel="bitset"`` runs the compact big-int expansion of
    :mod:`repro.kernel` instead of the set algebra; the emitted stream is
    byte-identical.  Metered runs (``memory`` given) always use the set
    path — its per-frame set sizes are what the Figure 3(b) accounting
    models, and the bitset collector's transient output buffer would
    falsify them.

    ``reduction`` (``"off"``/``"prune"``/``"full"``) applies the exact
    :mod:`repro.reduce` preprocessing first and enumerates the reduced
    graph, lifting the stream back through the reconstruction map — the
    same *set* of cliques, enumerated over a smaller graph.
    """
    from repro.kernel import validate_kernel

    if reduction != "off":
        from repro.reduce import reduce_graph, validate_reduction

        validate_reduction(reduction)
        reduced = reduce_graph(graph, reduction)
        inner: Iterator[Clique] = (
            tomita_maximal_cliques(reduced.reduced, memory=memory, kernel=kernel)
            if reduced.reduced.num_vertices
            else iter(())
        )
        yield from reduced.map.reconstruct(inner)
        return
    if validate_kernel(kernel) == "bitset" and memory is None:
        from repro.kernel import CompactGraph, maximal_cliques_bitset

        yield from maximal_cliques_bitset(CompactGraph.from_adjacency(graph))
        return
    bundle = _METRICS()
    bundle.subproblems.inc()
    bundle.sizes.observe(graph.num_vertices)
    if memory is None:
        yield from _counted(_expand_pivot(graph, [], set(graph.vertices()), set(), None))
        return
    footprint = 2 * graph.num_edges + graph.num_vertices
    with memory.allocation(footprint, label="in-mem adjacency"):
        yield from _counted(
            _expand_pivot(graph, [], set(graph.vertices()), set(), memory)
        )


def _expand_pivot(
    graph: AdjacencyGraph,
    current: list[Vertex],
    candidates: set[Vertex],
    excluded: set[Vertex],
    memory: "MemoryModel | None",
) -> Iterator[Clique]:
    if not candidates and not excluded:
        if current:
            yield frozenset(current)
        return
    pivot = _choose_pivot(graph, candidates, excluded)
    extension = candidates - graph.neighbors(pivot)
    for v in sorted(extension):
        neighbors = graph.neighbors(v)
        next_candidates = candidates & neighbors
        next_excluded = excluded & neighbors
        current.append(v)
        if memory is None:
            yield from _expand_pivot(graph, current, next_candidates, next_excluded, None)
        else:
            frame = len(next_candidates) + len(next_excluded) + 1
            with memory.allocation(frame, label="in-mem recursion frame"):
                yield from _expand_pivot(graph, current, next_candidates, next_excluded, memory)
        current.pop()
        candidates.discard(v)
        excluded.add(v)


def _choose_pivot(
    graph: AdjacencyGraph,
    candidates: set[Vertex],
    excluded: set[Vertex],
) -> Vertex:
    """Pick the pivot maximising ``|candidates ∩ nb(u)|`` (ties: smallest id).

    Two scan optimisations, both stream-preserving:

    * the intersection is taken with the smaller operand first, so CPython
      walks ``min(|candidates|, |nb(u)|)`` elements;
    * the scan stops once some pivot covers *every* candidate — the
      extension ``candidates - nb(pivot)`` is empty for any such pivot,
      so which covering vertex wins the tie cannot affect the output.
    """
    best_vertex = None
    best_score = -1
    target = len(candidates)
    for u in candidates | excluded:
        neighbors = graph.neighbors(u)
        if target <= len(neighbors):
            score = len(candidates & neighbors)
        else:
            score = len(neighbors & candidates)
        if score > best_score or (score == best_score and _lt(u, best_vertex)):
            best_vertex = u
            best_score = score
            if score == target:
                break
    assert best_vertex is not None  # caller guarantees a non-empty union
    return best_vertex


def _lt(u: Vertex, v: Vertex | None) -> bool:
    if v is None:
        return True
    try:
        return u < v  # type: ignore[operator]
    except TypeError:
        return False
