"""Incremental maximal clique maintenance (Stix, 2004).

This is the paper's ``streaming`` comparator (reference [26]): the graph is
read one edge at a time and the *entire* set of maximal cliques is updated
after every insertion.  The paper's criticism — which the Figure 3 and
Table 7 experiments reproduce — is that the full clique set is too large to
keep in memory for big graphs and that per-edge maintenance over it is
extremely slow.

Insertion rule: after adding edge ``(u, v)``, the new maximal cliques
containing both endpoints are ``{u, v} ∪ K`` for each maximal clique ``K``
of the subgraph induced by the common neighborhood ``nb(u) ∩ nb(v)``; a
pre-existing clique is subsumed exactly when it contains one endpoint and
the other endpoint is adjacent to all of it.

Deletion rule: every clique containing both endpoints splits into its two
"one endpoint removed" halves, each kept only if still maximal.

Two fidelity modes:

* ``indexed=False`` (default, the paper's comparator): per update, the
  *entire* clique collection is scanned for intersections and subsumption,
  as in Stix's original algorithm.  Cost per edge is ``O(|M|)`` set
  operations over the full maximal clique set ``M`` — the behaviour that
  makes the paper's streaming baseline orders of magnitude slower than
  ExtMCE and infeasible beyond the smallest dataset.
* ``indexed=True`` (a modern engineering extension, not in the paper):
  a per-vertex clique index restricts every update to the cliques that
  contain an affected endpoint.  The ablation bench compares the two.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.baselines.bron_kerbosch import Clique, tomita_maximal_cliques
from repro.errors import EdgeNotFoundError, GraphError
from repro.graph.adjacency import AdjacencyGraph, Edge, Vertex

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.memory import MemoryModel


class StixDynamicMCE:
    """Maintains the set of all maximal cliques of a dynamic graph.

    See the module docstring for the two fidelity modes (``indexed``).
    When a :class:`~repro.storage.memory.MemoryModel` is supplied, the
    total size of the stored cliques (sum of clique cardinalities) is
    charged to it — reproducing the memory behaviour the paper reports in
    Figure 3(b): the full clique set resident at all times.

    Examples
    --------
    >>> algo = StixDynamicMCE()
    >>> for edge in [(1, 2), (2, 3), (1, 3)]:
    ...     algo.insert_edge(*edge)
    >>> sorted(sorted(c) for c in algo.cliques())
    [[1, 2, 3]]
    """

    def __init__(
        self,
        memory: "MemoryModel | None" = None,
        indexed: bool = False,
    ) -> None:
        self._graph = AdjacencyGraph()
        self._cliques: dict[int, Clique] = {}
        self._by_clique: dict[Clique, int] = {}
        self._by_vertex: dict[Vertex, set[int]] = {}
        self._next_id = 0
        self._memory = memory
        self._indexed = indexed
        self.edges_processed = 0

    # ------------------------------------------------------------------
    # Bulk construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        memory: "MemoryModel | None" = None,
        indexed: bool = False,
    ) -> "StixDynamicMCE":
        """Stream an edge list through the maintainer, one edge at a time."""
        algo = cls(memory=memory, indexed=indexed)
        for u, v in edges:
            algo.insert_edge(u, v)
        return algo

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def graph(self) -> AdjacencyGraph:
        """The current graph (live reference; mutate via this class only)."""
        return self._graph

    def cliques(self) -> list[Clique]:
        """The current set of all maximal cliques."""
        return list(self._cliques.values())

    def num_cliques(self) -> int:
        """Number of maximal cliques currently maintained."""
        return len(self._cliques)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add_vertex(self, w: Vertex) -> None:
        """Add an isolated vertex; it forms a singleton maximal clique."""
        if w in self._graph:
            return
        self._graph.add_vertex(w)
        self._store(frozenset((w,)))

    def insert_edge(self, u: Vertex, v: Vertex) -> None:
        """Insert edge ``(u, v)`` and repair the maximal clique set."""
        if u == v:
            raise GraphError(f"self-loop on vertex {u!r} is not allowed")
        self.add_vertex(u)
        self.add_vertex(v)
        if not self._graph.add_edge(u, v):
            return  # duplicate edge: clique set unchanged
        self.edges_processed += 1

        common = self._graph.neighbors(u) & self._graph.neighbors(v)
        if not common:
            new_cliques = [frozenset((u, v))]
        elif self._indexed:
            induced = self._graph.induced_subgraph(common)
            new_cliques = [
                frozenset((u, v)) | kernel
                for kernel in tomita_maximal_cliques(induced)
            ]
        else:
            # Stix's formulation: the maximal cliques of the common
            # neighborhood are the maximal elements of the intersections
            # of *every* current clique with it (one full pass over M).
            intersections = {
                clique & common
                for clique in self._cliques.values()
                if clique & common
            }
            kernels = [
                kernel
                for kernel in intersections
                if not any(kernel < other for other in intersections)
            ]
            new_cliques = [frozenset((u, v)) | kernel for kernel in kernels]

        self._drop_subsumed(u, v)
        self._drop_subsumed(v, u)
        for clique in new_cliques:
            self._store(clique)

    def delete_edge(self, u: Vertex, v: Vertex) -> None:
        """Delete edge ``(u, v)`` and repair the maximal clique set."""
        if not self._graph.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        self._graph.remove_edge(u, v)
        if self._indexed:
            affected = [
                self._cliques[cid]
                for cid in self._by_vertex.get(u, set()) & self._by_vertex.get(v, set())
            ]
        else:
            affected = [
                clique for clique in self._cliques.values() if u in clique and v in clique
            ]
        for clique in affected:
            self._discard(clique)
        for clique in affected:
            for survivor in (clique - {u}, clique - {v}):
                if survivor and self._is_maximal(survivor):
                    self._store(survivor)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drop_subsumed(self, kept: Vertex, added: Vertex) -> None:
        """Remove cliques containing ``kept`` now extendable by ``added``."""
        neighbors = self._graph.neighbors(added)
        if self._indexed:
            candidate_ids = list(self._by_vertex.get(kept, set()))
        else:
            candidate_ids = [
                cid for cid, clique in self._cliques.items() if kept in clique
            ]
        for cid in candidate_ids:
            clique = self._cliques[cid]
            if added in clique:
                continue
            if all(w == kept or w in neighbors for w in clique):
                self._discard(clique)

    def _is_maximal(self, clique: Clique) -> bool:
        return not self._graph.common_neighbors(clique)

    def _store(self, clique: Clique) -> None:
        if clique in self._by_clique:
            return
        cid = self._next_id
        self._next_id += 1
        self._cliques[cid] = clique
        self._by_clique[clique] = cid
        for w in clique:
            self._by_vertex.setdefault(w, set()).add(cid)
        if self._memory is not None:
            self._memory.allocate(len(clique), label="stix clique store")

    def _discard(self, clique: Clique) -> None:
        cid = self._by_clique.pop(clique, None)
        if cid is None:
            return
        del self._cliques[cid]
        for w in clique:
            ids = self._by_vertex.get(w)
            if ids is not None:
                ids.discard(cid)
        if self._memory is not None:
            self._memory.release(len(clique), label="stix clique store")
