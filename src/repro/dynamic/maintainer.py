"""Incremental maintenance of ``H``, ``G_H*`` and ``T_H*`` under updates.

The update rules follow Section 5 of the paper:

* **Insertion of (u, v), neither endpoint an h-vertex** — ``G_H*`` is
  untouched; nothing to do unless the insertion changes who the h-vertices
  are.
* **Insertion with an h-vertex endpoint** — the new H*-max-cliques are
  ``C ∪ {u, v}`` for each maximal element ``C`` of
  ``{C' ∩ NB_uv : C' ∈ M_H*}`` (the paper's ``S_M``), where ``NB_uv`` is
  the common ``G_H*``-neighborhood of the endpoints; the subsumed cliques
  ``C ∪ {u}`` / ``C ∪ {v}`` leave the tree.  When ``S`` is empty,
  ``{u, v}`` itself is the new maximal clique.
* **Deletion with an h-vertex endpoint** — every clique containing both
  endpoints leaves the tree; its two "one endpoint removed" halves
  re-enter when still maximal in the updated ``G_H*``.
* **Core change** — when an update changes ``h`` or the membership of
  ``H`` (degree crossings), the star graph and tree are rebuilt; the
  experiment counts these separately because the paper's point is that
  they are rare (Table 7's "% of h-vertices retained" row).

The maintainer holds the evolving graph in memory — the substitution for
the paper's disk-resident ``G`` — but reports as "memory" only the star
graph and tree units, matching what the paper's maintenance keeps resident.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.core.clique_tree import CliqueTree, enumerate_star_cliques
from repro.core.extmce import ExtMCE, ExtMCEConfig, ExtMCEReport
from repro.core.hstar import StarGraph
from repro.errors import EdgeNotFoundError, GraphError
from repro.graph.adjacency import AdjacencyGraph
from repro.storage.diskgraph import DiskGraph
from repro.storage.memory import MemoryModel

Clique = frozenset


@dataclass
class UpdateStats:
    """Counters for one maintenance session (feeds Table 7)."""

    updates_total: int = 0
    updates_hitting_star: int = 0
    insertions: int = 0
    deletions: int = 0
    core_rebuilds: int = 0
    hit_seconds_total: float = 0.0

    @property
    def average_hit_milliseconds(self) -> float:
        """Mean time per update that touched ``T_H*`` (Table 7, row 1)."""
        if self.updates_hitting_star == 0:
            return 0.0
        return 1000.0 * self.hit_seconds_total / self.updates_hitting_star

    @property
    def hit_fraction(self) -> float:
        """Share of updates that touched the H*-graph (paper: ~3.8%)."""
        if self.updates_total == 0:
            return 0.0
        return self.updates_hitting_star / self.updates_total


class HStarMaintainer:
    """Keeps ``H``, ``G_H*`` and ``M_H*`` (as ``T_H*``) current.

    Examples
    --------
    >>> maintainer = HStarMaintainer()
    >>> for edge in [(0, 1), (1, 2), (0, 2)]:
    ...     maintainer.insert_edge(*edge)
    >>> sorted(sorted(c) for c in maintainer.star_cliques())
    [[0, 1, 2]]
    """

    def __init__(
        self,
        graph: AdjacencyGraph | None = None,
        memory: MemoryModel | None = None,
    ) -> None:
        self._graph = graph.copy() if graph is not None else AdjacencyGraph()
        self._memory = memory if memory is not None else MemoryModel()
        self.stats = UpdateStats()
        self._update_hooks: list = []
        self._core: set[int] = set()
        self._h = 0
        self._neighbor_lists: dict[int, set[int]] = {}
        self._tree: CliqueTree | None = None
        self._degree_count: dict[int, int] = {}
        for w in self._graph.vertices():
            d = self._graph.degree(w)
            self._degree_count[d] = self._degree_count.get(d, 0) + 1
        self._rebuild()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def graph(self) -> AdjacencyGraph:
        """The maintained graph (live reference; mutate via this class)."""
        return self._graph

    @property
    def h(self) -> int:
        """Current h-index of the maintained graph."""
        return self._h

    @property
    def core(self) -> frozenset[int]:
        """Current h-vertex set ``H``."""
        return frozenset(self._core)

    def star(self) -> StarGraph:
        """A frozen snapshot of the current star graph."""
        return StarGraph(
            core=frozenset(self._core),
            neighbor_lists={v: frozenset(nbrs) for v, nbrs in self._neighbor_lists.items()},
            h=self._h,
        )

    def star_cliques(self) -> list[Clique]:
        """The maintained ``M_H*``."""
        assert self._tree is not None
        return list(self._tree.cliques())

    @property
    def tree(self) -> CliqueTree:
        """The maintained ``T_H*``."""
        assert self._tree is not None
        return self._tree

    @property
    def resident_memory_units(self) -> int:
        """Units for the resident state: ``|G_H*| + |T_H*|``."""
        star_units = sum(1 + len(nbrs) for nbrs in self._neighbor_lists.values())
        tree_units = self._tree.num_nodes if self._tree is not None else 0
        return star_units + tree_units

    # ------------------------------------------------------------------
    # Update hooks
    # ------------------------------------------------------------------
    def register_update_hook(self, hook) -> None:
        """Observe every applied edge update as ``hook(kind, u, v)``.

        ``kind`` is ``"insert"`` or ``"delete"``; the hook fires after
        the update is applied, once per edge that actually changed the
        graph (duplicate insertions are silent).  The canonical consumer
        is :meth:`repro.index.reader.CliqueIndex.invalidation_hook`,
        which marks the endpoints' postings stale so a persisted clique
        index built before the update stops claiming freshness.
        """
        self._update_hooks.append(hook)

    def _notify_update(self, kind: str, u: int, v: int) -> None:
        for hook in self._update_hooks:
            hook(kind, u, v)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> None:
        """Apply an edge insertion (Section 5, first case analysis)."""
        if u == v:
            raise GraphError(f"self-loop on vertex {u!r} is not allowed")
        for w in (u, v):
            if w not in self._graph:
                self._graph.add_vertex(w)
                self._degree_count[0] = self._degree_count.get(0, 0) + 1
        if not self._graph.add_edge(u, v):
            return
        self._bump_degree(u, +1)
        self._bump_degree(v, +1)
        self.stats.updates_total += 1
        self.stats.insertions += 1
        self._notify_update("insert", u, v)
        if not self._core_still_valid(u, v):
            self._count_rebuild()
            return
        if u not in self._core and v not in self._core:
            return  # G_H* untouched
        started = time.perf_counter()
        self._apply_insertion(u, v)
        self.stats.updates_hitting_star += 1
        self.stats.hit_seconds_total += time.perf_counter() - started

    def delete_edge(self, u: int, v: int) -> None:
        """Apply an edge deletion (Section 5, second case analysis)."""
        if not self._graph.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        self._graph.remove_edge(u, v)
        self._bump_degree(u, -1)
        self._bump_degree(v, -1)
        self.stats.updates_total += 1
        self.stats.deletions += 1
        self._notify_update("delete", u, v)
        if not self._core_still_valid(u, v):
            self._count_rebuild()
            return
        if u not in self._core and v not in self._core:
            return
        started = time.perf_counter()
        self._apply_deletion(u, v)
        self.stats.updates_hitting_star += 1
        self.stats.hit_seconds_total += time.perf_counter() - started

    def apply_stream(self, edges: Iterable[tuple[int, int, int]]) -> None:
        """Replay a ``(timestamp, u, v)`` stream of insertions."""
        for _, u, v in edges:
            self.insert_edge(u, v)

    def insert_batch(self, edges: Iterable[tuple[int, int]]) -> None:
        """Insert many edges with a single core-validity resolution.

        Per-edge maintenance keeps the tree consistent with the *current*
        core throughout; whether that core is still a valid Definition-1
        h-vertex set only matters at the end, so a batch needs at most one
        check — and at most one rebuild — no matter how many insertions it
        carries.  On bursty streams this collapses the transient
        degree-crossing rebuilds that per-edge application pays for.
        """
        touched: set[int] = set()
        for u, v in edges:
            if u == v:
                raise GraphError(f"self-loop on vertex {u!r} is not allowed")
            for w in (u, v):
                if w not in self._graph:
                    self._graph.add_vertex(w)
                    self._degree_count[0] = self._degree_count.get(0, 0) + 1
            if not self._graph.add_edge(u, v):
                continue
            self._bump_degree(u, +1)
            self._bump_degree(v, +1)
            touched.update((u, v))
            self.stats.updates_total += 1
            self.stats.insertions += 1
            self._notify_update("insert", u, v)
            if u in self._core or v in self._core:
                started = time.perf_counter()
                self._apply_insertion(u, v)
                self.stats.updates_hitting_star += 1
                self.stats.hit_seconds_total += time.perf_counter() - started
        if touched and not self._batch_core_still_valid(touched):
            self._count_rebuild()

    def _batch_core_still_valid(self, touched: set[int]) -> bool:
        """Definition-1 validity after a batch touching ``touched``."""
        if self._current_h_index() != self._h:
            return False
        for w in touched:
            degree = self._graph.degree(w)
            if w in self._core and degree < self._h:
                return False
            if w not in self._core and degree > self._h:
                return False
        return True

    def insert_vertex(self, v: int, neighbors: Iterable[int] = ()) -> None:
        """Insert a vertex with its (possibly empty) initial neighborhood.

        Per Section 5, vertex insertion is "the insertion of an isolated
        vertex" — a trivial operation that cannot change ``H`` — followed
        by a series of edge insertions.
        """
        if v in self._graph:
            raise GraphError(f"vertex {v!r} already exists")
        self._graph.add_vertex(v)
        self._degree_count[0] = self._degree_count.get(0, 0) + 1
        for u in neighbors:
            self.insert_edge(v, u)

    def delete_vertex(self, v: int) -> None:
        """Delete a vertex: remove each incident edge, then the vertex.

        The edge deletions carry all the ``T_H*`` maintenance; removing
        the then-isolated vertex only touches the degree histogram (and
        ``h``, which a vanishing zero-degree vertex cannot change).
        """
        if v not in self._graph:
            raise GraphError(f"vertex {v!r} is not in the graph")
        for u in list(self._graph.neighbors(v)):
            self.delete_edge(v, u)
        self._graph.remove_vertex(v)
        count = self._degree_count.get(0, 0) - 1
        if count:
            self._degree_count[0] = count
        else:
            self._degree_count.pop(0, None)

    # ------------------------------------------------------------------
    # On-demand full enumeration (Section 5's closing paragraph)
    # ------------------------------------------------------------------
    def compute_all_max_cliques(
        self,
        workdir: str | Path,
        use_maintained_tree: bool = True,
        config: ExtMCEConfig | None = None,
    ) -> tuple[list[Clique], ExtMCEReport]:
        """Enumerate every maximal clique of the current graph.

        With ``use_maintained_tree=True`` the run is seeded with the
        maintained star graph and ``M_H*`` — skipping Algorithm 1's scan
        and the step-1 tree construction (Table 7 "Time w/ T_H*").  With
        ``False`` it recomputes everything from scratch ("Time w/o T_H*").
        """
        workdir = Path(workdir)
        workdir.mkdir(parents=True, exist_ok=True)
        disk = DiskGraph.create(workdir / "snapshot.bin", self._graph)
        run_config = config if config is not None else ExtMCEConfig(workdir=workdir)
        first_step = None
        if use_maintained_tree:
            first_step = (self.star(), self.star_cliques())
        algo = ExtMCE(disk, run_config, first_step=first_step)
        cliques = list(algo.enumerate_cliques())
        disk.delete()
        return cliques, algo.report

    # ------------------------------------------------------------------
    # Core validity (h-index bookkeeping)
    # ------------------------------------------------------------------
    def _core_still_valid(self, u: int, v: int) -> bool:
        """Whether ``H`` remains a valid Definition-1 core after an update
        that changed only the degrees of ``u`` and ``v``."""
        new_h = self._current_h_index()
        if new_h != self._h:
            return False
        for w in (u, v):
            degree = self._graph.degree(w)
            if w in self._core and degree < self._h:
                return False
            if w not in self._core and degree > self._h:
                return False
        return True

    def _bump_degree(self, w: int, delta: int) -> None:
        """Keep the degree histogram in sync after one degree change."""
        new_degree = self._graph.degree(w)
        old_degree = new_degree - delta
        count = self._degree_count.get(old_degree, 0) - 1
        if count:
            self._degree_count[old_degree] = count
        else:
            self._degree_count.pop(old_degree, None)
        self._degree_count[new_degree] = self._degree_count.get(new_degree, 0) + 1

    def _count_degree_at_least(self, threshold: int) -> int:
        return sum(
            count for degree, count in self._degree_count.items() if degree >= threshold
        )

    def _current_h_index(self) -> int:
        """h-index from the maintained degree histogram.

        A single edge update moves ``h`` by at most one, so the search
        starts from the previous value instead of sorting all degrees.
        """
        h = self._h
        while self._count_degree_at_least(h + 1) >= h + 1:
            h += 1
        while h > 0 and self._count_degree_at_least(h) < h:
            h -= 1
        return h

    def _count_rebuild(self) -> None:
        self.stats.core_rebuilds += 1
        self.stats.updates_hitting_star += 1
        started = time.perf_counter()
        self._rebuild()
        self.stats.hit_seconds_total += time.perf_counter() - started

    def _rebuild(self) -> None:
        """Recompute ``H``, the star lists, and ``T_H*`` from the graph."""
        if self._tree is not None:
            self._tree.release()
        self._h = self._current_h_index()
        by_degree = sorted(
            self._graph.vertices(),
            key=lambda w: (-self._graph.degree(w), w),
        )
        self._core = set(by_degree[: self._h])
        self._neighbor_lists = {
            w: set(self._graph.neighbors(w)) for w in self._core
        }
        star = self.star()
        self._tree = CliqueTree.for_star(star, memory=self._memory)
        for clique in enumerate_star_cliques(star):
            self._tree.insert(clique)

    # ------------------------------------------------------------------
    # Star-local update rules
    # ------------------------------------------------------------------
    def _star_neighbors(self, w: int) -> set[int]:
        """``G_H*`` neighborhood of ``w`` (core: full list; periphery: its
        core neighbors; outside vertices: empty)."""
        if w in self._core:
            return self._neighbor_lists[w]
        return set(self._graph.neighbors(w)) & self._core

    def _apply_insertion(self, u: int, v: int) -> None:
        assert self._tree is not None
        if u in self._core:
            self._neighbor_lists[u].add(v)
        if v in self._core:
            self._neighbor_lists[v].add(u)

        common = self._star_neighbors(u) & self._star_neighbors(v) - {u, v}
        if not common:
            self._tree.insert(frozenset((u, v)))
            self._tree.remove(frozenset((u,)))
            self._tree.remove(frozenset((v,)))
            return
        intersections = {
            clique & common
            for clique in self._tree.cliques()
            if clique & common
        }
        maximal = [
            kernel
            for kernel in intersections
            if not any(kernel < other for other in intersections)
        ]
        for kernel in maximal:
            self._tree.insert(kernel | {u, v})
            self._tree.remove(kernel | {u})
            self._tree.remove(kernel | {v})

    def _apply_deletion(self, u: int, v: int) -> None:
        assert self._tree is not None
        if u in self._core:
            self._neighbor_lists[u].discard(v)
        if v in self._core:
            self._neighbor_lists[v].discard(u)
        affected = list(self._tree.cliques_containing((u, v)))
        for clique in affected:
            self._tree.remove(clique)
        for clique in affected:
            for survivor in (clique - {u}, clique - {v}):
                if self._survivor_is_star_maximal(survivor):
                    self._tree.insert(survivor)

    def _survivor_is_star_maximal(self, survivor: Clique) -> bool:
        if not survivor:
            return False
        members = sorted(survivor)
        if len(members) == 1 and members[0] not in self._core:
            # A lone periphery vertex either left G_H* entirely or still
            # has a core neighbor that extends it; never maximal alone.
            return False
        common = self._star_neighbors(members[0]) - survivor
        for w in members[1:]:
            common &= self._star_neighbors(w)
            if not common:
                break
        return not (common - survivor)
