"""Dynamic maintenance of the H*-max-clique tree (paper Section 5).

Real networks update constantly, and the full maximal clique set is far
too large to maintain (the paper's Table 5: LJ has 173M maximal cliques).
The paper's proposal: maintain only ``M_H*`` — the maximal cliques of the
H*-graph, which cover the network's most important vertices — and
recompute the full result on demand, seeded with the maintained tree.

:class:`HStarMaintainer` implements the Section 5 update rules for edge
insertion and deletion, tracks how many updates actually touch the
H*-graph (few: Table 7 measures ~3.8%), and exposes the on-demand full
enumeration both with and without the maintained tree.
"""

from repro.dynamic.maintainer import HStarMaintainer, UpdateStats

__all__ = ["HStarMaintainer", "UpdateStats"]
