"""Supervision for the live store's background workers.

A live deployment has two threads whose silent death turns the store
into a slowly rotting snapshot: the **ingest worker** (edge events stop
being applied, acked updates stop flowing) and the **background
compactor** (the delta tail grows without bound).  Nothing in a Python
process restarts a dead thread for you — this module is that nothing.

:class:`LiveSupervisor` polls worker liveness and restarts the dead:

* A dead ingest worker is restarted *through WAL replay*: the store's
  :meth:`~repro.live.store.LiveCliqueStore.resync` drops the in-memory
  overlay and rebuilds it from the manifest + logs (disk is
  authoritative — WAL-first writes mean exactly the acknowledged batches
  are on it), then a fresh worker re-applies any event the dead one had
  taken but not acked, idempotently
  (:meth:`~repro.live.ingest.LiveIngestor.reapply_event`).  Zero acked
  updates lost, no update applied twice.
* A dead compactor is restarted with
  :meth:`~repro.live.store.LiveCliqueStore.start_compactor`.
* Restarts back off exponentially (a crash-*loop* must not become a busy
  loop), and after ``max_consecutive_failures`` straight failures the
  supervisor gives up on that worker and latches ``degraded`` — which
  the server surfaces through its ``health``/``ready`` probes so an
  orchestrator can rotate the replica out.

:class:`SupervisedIngestor` is the restartable ingest worker itself: a
bounded event queue drained by one thread, acking each event only after
the store apply returns.  The queue *blocks* producers when full —
ingest backpressure, same philosophy as the server's admission control.

Everything here is cooperative threading (no signals, no subprocesses),
so the chaos suite can kill workers deterministically by injecting
exceptions and assert the restart ladder metric by metric.
"""

from __future__ import annotations

import queue
import threading
import time
from types import SimpleNamespace
from typing import Callable

from repro import metrics
from repro.errors import ReproError
from repro.live.ingest import LiveIngestor
from repro.live.store import LiveCliqueStore

_METRICS = metrics.bound(
    lambda registry: SimpleNamespace(
        restarts={
            worker: registry.counter(
                "repro_supervisor_restarts_total",
                "dead workers restarted, by worker",
                labels={"worker": worker},
            )
            for worker in ("ingest", "compactor")
        },
        deaths=registry.counter(
            "repro_supervisor_worker_deaths_total", "worker deaths observed"
        ),
        gave_up=registry.counter(
            "repro_supervisor_gave_up_total",
            "workers abandoned after the crash-loop budget",
        ),
        degraded=registry.gauge(
            "repro_supervisor_degraded", "1 while any worker is down or abandoned"
        ),
        resync_deltas=registry.counter(
            "repro_supervisor_resync_deltas_total",
            "tail deltas replayed during restart resyncs",
        ),
        reapplied=registry.counter(
            "repro_supervisor_reapplied_events_total",
            "unacked events re-applied idempotently after a restart",
        ),
        dropped=registry.counter(
            "repro_supervisor_dropped_events_total",
            "poison events dropped during restart re-apply",
        ),
        acked=registry.counter(
            "repro_supervisor_acked_events_total",
            "events durably applied and acknowledged by the ingest worker",
        ),
    )
)


class SupervisedIngestor:
    """A restartable ingest worker: bounded queue, one drain thread.

    :meth:`submit` blocks when the queue is full (backpressure) and
    returns once the event is *queued*, not applied; :meth:`wait_idle`
    barriers on full application.  ``acked_events`` counts events whose
    store apply returned — the durability line the supervisor must never
    lose across a crash.

    The drain thread applies events via ``ingestor.apply_event``; an
    event that was taken off the queue but whose apply raised is pushed
    *back to the front* before the thread dies, so the replacement
    worker re-applies it (idempotently) instead of losing it.
    """

    def __init__(
        self,
        ingestor: LiveIngestor,
        queue_limit: int = 1024,
        fail_hook: Callable[[tuple], None] | None = None,
    ) -> None:
        self._ingestor = ingestor
        self._queue: queue.Queue = queue.Queue(maxsize=max(1, queue_limit))
        self._pending_retry: tuple | None = None
        self._retry_lock = threading.Lock()
        self._stop = threading.Event()
        self._fail_hook = fail_hook
        self.acked_events = 0
        self.last_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="live-ingest-worker", daemon=True
        )
        self._thread.start()

    @property
    def ingestor(self) -> LiveIngestor:
        """The wrapped ingestor (swapped on restart by the supervisor)."""
        return self._ingestor

    @property
    def queue_size(self) -> int:
        """Events waiting to be applied."""
        return self._queue.qsize()

    def is_alive(self) -> bool:
        """Whether the drain thread is running."""
        return self._thread.is_alive()

    def submit(self, event: tuple, timeout: float | None = None) -> bool:
        """Queue one event; blocks (backpressure) while the queue is full.

        Returns ``False`` if the worker is stopped or the timeout
        elapsed with the queue still full.
        """
        if self._stop.is_set():
            return False
        try:
            self._queue.put(event, timeout=timeout)
        except queue.Full:
            return False
        return True

    def wait_idle(self, timeout: float = 30.0) -> bool:
        """Block until every submitted event is applied (or timeout)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._retry_lock:
                retrying = self._pending_retry is not None
            if self._queue.empty() and not retrying and self._queue.unfinished_tasks == 0:
                return True
            if not self.is_alive():
                return False
            time.sleep(0.005)
        return False

    def stop(self) -> None:
        """Stop the drain thread after the current event."""
        self._stop.set()
        try:
            self._queue.put_nowait(None)  # wake a blocked get
        except queue.Full:
            pass
        self._thread.join(timeout=10.0)

    # -- restart handoff ----------------------------------------------
    def take_unacked(self) -> list[tuple]:
        """Drain everything the dead worker left behind, retry-slot first.

        Only meaningful once the thread is dead; the supervisor feeds
        the result to the replacement worker for idempotent re-apply.
        """
        events: list[tuple] = []
        with self._retry_lock:
            if self._pending_retry is not None:
                events.append(self._pending_retry)
                self._pending_retry = None
        while True:
            try:
                event = self._queue.get_nowait()
            except queue.Empty:
                break
            if event is not None:
                events.append(event)
            self._queue.task_done()
        return events

    def _run(self) -> None:
        while not self._stop.is_set():
            event = self._queue.get()
            if event is None:
                self._queue.task_done()
                continue
            try:
                if self._fail_hook is not None:
                    self._fail_hook(event)  # chaos harness: raises to kill us
                self._ingestor.apply_event(event)
            except BaseException as exc:
                # Park the in-flight event for the replacement worker,
                # then die loudly — the supervisor notices the corpse.
                self.last_error = exc
                with self._retry_lock:
                    self._pending_retry = event
                self._queue.task_done()
                if not isinstance(exc, Exception):
                    raise
                return
            self.acked_events += 1
            _METRICS().acked.inc()
            self._queue.task_done()


class LiveSupervisor:
    """Watchdog restarting the live store's dead background workers."""

    def __init__(
        self,
        store: LiveCliqueStore,
        make_ingestor: Callable[[], LiveIngestor] | None = None,
        *,
        poll_interval_seconds: float = 0.05,
        backoff_base_seconds: float = 0.05,
        backoff_max_seconds: float = 2.0,
        max_consecutive_failures: int = 5,
        queue_limit: int = 1024,
        compactor_tail_threshold: int | None = None,
        fail_hook: Callable[[tuple], None] | None = None,
    ) -> None:
        self._store = store
        self._make_ingestor = make_ingestor
        self._poll = poll_interval_seconds
        self._backoff_base = backoff_base_seconds
        self._backoff_max = backoff_max_seconds
        self._budget = max(1, max_consecutive_failures)
        self._queue_limit = queue_limit
        self._compactor_threshold = compactor_tail_threshold
        self._fail_hook = fail_hook
        self._lock = threading.Lock()
        self._worker: SupervisedIngestor | None = None
        self._handoff: list[tuple] | None = None
        self._acked_before = 0
        self._consecutive = {"ingest": 0, "compactor": 0}
        self._gave_up: set[str] = set()
        self.restarts = {"ingest": 0, "compactor": 0}
        self.dropped_events = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        if make_ingestor is not None:
            self._worker = SupervisedIngestor(
                make_ingestor(), queue_limit=queue_limit, fail_hook=fail_hook
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "LiveSupervisor":
        """Start the watchdog thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="live-supervisor", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the watchdog and the supervised ingest worker."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        worker = self._worker
        if worker is not None:
            worker.stop()

    def __enter__(self) -> "LiveSupervisor":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Ingest surface
    # ------------------------------------------------------------------
    def submit(self, event: tuple, timeout: float | None = None) -> bool:
        """Queue one edge event for the supervised worker.

        Blocks through worker restarts: while the watchdog is replacing
        a dead worker the event simply waits for the replacement.  Once
        the watchdog has *given up* on ingest there is no replacement to
        wait for — submit returns ``False`` immediately rather than
        stalling the producer until its timeout.
        """
        if self._make_ingestor is None:
            raise ReproError("this supervisor was built without an ingestor factory")
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._stop.is_set():
            if "ingest" in self._gave_up:
                return False
            worker = self._worker
            if worker is not None and worker.is_alive():
                step = 0.25
                if deadline is not None:
                    step = max(0.0, min(step, deadline - time.monotonic()))
                if worker.submit(event, timeout=step):
                    return True
            else:
                time.sleep(0.01)  # the watchdog is mid-restart
            if deadline is not None and time.monotonic() >= deadline:
                return False
        return False

    def wait_idle(self, timeout: float = 30.0) -> bool:
        """Block until the ingest queue fully drains (or timeout)."""
        if self._make_ingestor is None:
            return True
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if "ingest" in self._gave_up:
                return False
            worker = self._worker
            if worker is not None and worker.is_alive():
                if worker.wait_idle(timeout=0.25):
                    return True
            else:
                time.sleep(0.01)  # wait for the watchdog to restart it
        return False

    @property
    def acked_events(self) -> int:
        """Events durably applied across every worker incarnation."""
        with self._lock:
            worker = self._worker
            return self._acked_before + (worker.acked_events if worker else 0)

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True while a worker is down, restarting, or abandoned."""
        if self._gave_up:
            return True
        worker = self._worker
        if self._make_ingestor is not None and (
            worker is None or not worker.is_alive()
        ):
            return True
        compactor = self._store._compactor
        return compactor is not None and not compactor.is_alive()

    @property
    def gave_up(self) -> frozenset[str]:
        """Workers abandoned after ``max_consecutive_failures`` crashes."""
        return frozenset(self._gave_up)

    def to_payload(self) -> dict:
        """JSON-able status (the server's ``health`` embeds this)."""
        worker = self._worker
        return {
            "degraded": self.degraded,
            "restarts": dict(self.restarts),
            "gave_up": sorted(self._gave_up),
            "ingest_alive": bool(worker is not None and worker.is_alive()),
            "ingest_queue": worker.queue_size if worker is not None else 0,
            "acked_events": self.acked_events,
            "dropped_events": self.dropped_events,
        }

    # ------------------------------------------------------------------
    # The watchdog loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self._poll):
            _METRICS().degraded.set(1 if self.degraded else 0)
            self._check_ingest()
            self._check_compactor()
        _METRICS().degraded.set(1 if self.degraded else 0)

    def _backoff(self, worker: str) -> float:
        exponent = max(0, self._consecutive[worker] - 1)
        return min(
            self._backoff_max, self._backoff_base * (2.0 ** exponent)
        )

    def _check_ingest(self) -> None:
        if self._make_ingestor is None or "ingest" in self._gave_up:
            return
        worker = self._worker
        if worker is not None:
            if worker.is_alive():
                return
            # Harvest the corpse exactly once: the unacked backlog and
            # the final ack count must survive any number of failed
            # restart attempts without double counting.
            _METRICS().deaths.inc()
            self._handoff = (self._handoff or []) + worker.take_unacked()
            with self._lock:
                self._acked_before += worker.acked_events
                self._worker = None
        self._consecutive["ingest"] += 1
        if self._consecutive["ingest"] > self._budget:
            self._gave_up.add("ingest")
            _METRICS().gave_up.inc()
            return
        if self._stop.wait(self._backoff("ingest")):
            return
        unacked = list(self._handoff or [])
        try:
            # Disk is authoritative: rebuild the overlay from the WAL,
            # then hand the unacked backlog to a fresh worker.
            replayed = self._store.resync()
            _METRICS().resync_deltas.inc(replayed)
            fresh = self._make_ingestor()
            applied = 0
            for event in unacked:
                try:
                    fresh.reapply_event(event)
                except ReproError:
                    # A typed error from re-apply is deterministic: the
                    # event itself can never be applied (a self-loop, an
                    # unknown vertex — poison).  Retrying the restart
                    # would fail identically forever and take the whole
                    # ingest pipeline down with it, so drop the event,
                    # loudly, and keep the pipeline alive.  It was never
                    # acked, and now never will be.
                    self.dropped_events += 1
                    _METRICS().dropped.inc()
                    continue
                applied += 1
                _METRICS().reapplied.inc()
            replacement = SupervisedIngestor(
                fresh, queue_limit=self._queue_limit, fail_hook=self._fail_hook
            )
            # Re-applied events were never acked by the old worker; they
            # are acked now, by hand, on the replacement's counter.
            # Dropped poison events are not: acked means applied.
            replacement.acked_events = applied
            with self._lock:
                self._handoff = None
                self._worker = replacement
        except Exception:
            # The restart itself failed; the next poll retries with a
            # longer backoff until the budget runs out.  Re-applied
            # events stay in the handoff — re-applying them again is
            # idempotent by construction.
            return
        self._consecutive["ingest"] = 0
        self.restarts["ingest"] += 1
        _METRICS().restarts["ingest"].inc()

    def _check_compactor(self) -> None:
        compactor = self._store._compactor
        if (
            compactor is None
            or compactor.is_alive()
            or "compactor" in self._gave_up
        ):
            return
        _METRICS().deaths.inc()
        self._consecutive["compactor"] += 1
        if self._consecutive["compactor"] > self._budget:
            self._gave_up.add("compactor")
            _METRICS().gave_up.inc()
            return
        if self._stop.wait(self._backoff("compactor")):
            return
        threshold = (
            self._compactor_threshold
            if self._compactor_threshold is not None
            else compactor.tail_threshold
        )
        try:
            self._store._compactor = None
            self._store.start_compactor(tail_threshold=threshold)
        except Exception:
            return
        self._consecutive["compactor"] = 0
        self.restarts["compactor"] += 1
        _METRICS().restarts["compactor"].inc()
