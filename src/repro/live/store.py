"""Generational live clique store: base index + WAL delta tail.

:class:`LiveCliqueStore` turns the one-shot :mod:`repro.index` snapshot
into a continuously maintained serving structure.  State on disk::

    live_dir/
      LIVE_MANIFEST.json    commit point (schema repro.live/1)
      gen-000000/           a full repro.index directory (the *base*)
      wal-000000.log        CRC32 delta log(s) newer than the base

and in memory, the *delta tail*: every logged delta not yet folded into
the base generation, indexed for overlay reads (added cliques with their
live ids, tombstoned base ids, per-vertex overlay postings).

Reads present the :class:`~repro.index.reader.CliqueIndex` surface —
``postings`` / ``clique`` / ``clique_size`` / ``top_k_largest`` /
``scan_cliques`` / ``stats`` / ``is_stale`` — so
:class:`~repro.service.engine.CliqueQueryEngine` serves a live store the
same way it serves a frozen index.  ``is_stale`` keeps its name but
flips meaning: it is now the *precise* "this vertex's answer is
delta-overlaid" signal, not a "possibly outdated" apology.

Writes (:meth:`apply_deltas`) are WAL-first: deltas are stamped with
monotonically increasing sequence numbers, durably appended (fsync),
and only then applied to the overlay — a crash after the append replays
them; a crash during it leaves a torn tail the recovery truncates.

Compaction folds the tail into a fresh index generation without ever
blocking readers:

1. **rotate** — create the next WAL, commit a manifest listing *both*
   logs, and move the writer over; the old log is now frozen.
2. **build** — outside the store lock, scan the base generation (through
   a private reader, never the serving one) plus the frozen deltas and
   :func:`~repro.index.builder.build_index` the next generation
   directory.  A crash here leaves a directory without an index
   manifest, which recovery deletes.
3. **commit** — atomically swap the live manifest to the new generation
   and single WAL, then (under the lock, briefly) swap the in-memory
   base and drop the folded tail entries.
4. **cleanup** — delete the previous generation and frozen log.

A crash between any two steps recovers to a consistent store: the
manifest is the single commit point, and everything it does not
reference is garbage to collect.  Fault injection reaches each step
through the plan's ``"compaction"`` operation site.
"""

from __future__ import annotations

import heapq
import json
import os
import shutil
import threading
import time
from pathlib import Path
from types import SimpleNamespace
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro import metrics
from repro.errors import GraphError, StorageError, StorageIOError
from repro.index.builder import build_index
from repro.index.reader import CliqueIndex
from repro.live.deltas import ADD, REMOVE, CliqueDelta
from repro.live.wal import DeltaLogWriter, ReplayReport, replay_delta_log
from repro.storage.iostats import IOStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults import FaultPlan

#: Live-store manifest filename and schema (bump on layout changes).
LIVE_MANIFEST_FILENAME = "LIVE_MANIFEST.json"
LIVE_MANIFEST_SCHEMA = "repro.live/1"

_METRICS = metrics.bound(
    lambda registry: SimpleNamespace(
        deltas={
            kind: registry.counter(
                "repro_live_deltas_applied_total",
                "clique deltas applied to the overlay, by kind",
                labels={"kind": kind},
            )
            for kind in (ADD, REMOVE)
        },
        tail=registry.gauge(
            "repro_live_tail_deltas", "unfolded deltas overlaying the base index"
        ),
        compactions=registry.counter(
            "repro_live_compactions_total", "completed compactions"
        ),
        compaction_failures=registry.counter(
            "repro_live_compaction_failures_total", "compactions aborted by errors"
        ),
        compaction_seconds=registry.histogram(
            "repro_live_compaction_seconds",
            "wall time per compaction",
            buckets=metrics.TIME_BUCKETS,
        ),
        recovered=registry.counter(
            "repro_live_recovered_deltas_total", "deltas replayed during open()"
        ),
        events=registry.counter(
            "repro_live_subscription_events_total", "events delivered to subscribers"
        ),
    )
)


def _commit_json(directory: Path, filename: str, payload: dict) -> None:
    """Durably commit a JSON file (scratch → fsync → rename → dir fsync)."""
    target = directory / filename
    scratch = directory / (filename + ".tmp")
    try:
        with open(scratch, "w", encoding="ascii") as handle:
            handle.write(json.dumps(payload, sort_keys=True, indent=2))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, target)
        fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
    except OSError as exc:
        raise StorageError(f"failed to commit {target}: {exc}") from exc


class SubscriptionEvent:
    """One delivered change notification."""

    __slots__ = ("vertex", "kind", "vertices", "seq")

    def __init__(self, vertex: int, kind: str, vertices: tuple[int, ...], seq: int) -> None:
        self.vertex = vertex
        #: ``"clique_added"`` or ``"clique_removed"``.
        self.kind = kind
        self.vertices = vertices
        self.seq = seq

    def to_payload(self) -> dict:
        """JSON-able wire form (the server pushes exactly this)."""
        return {
            "vertex": self.vertex,
            "event": self.kind,
            "clique": list(self.vertices),
            "seq": self.seq,
        }


class LiveCliqueStore:
    """Continuously maintained clique index: base generation + delta tail."""

    def __init__(
        self,
        directory: str | Path,
        cache_pages: int = 64,
        verify_checksums: bool = True,
        io_stats: IOStats | None = None,
        fault_plan: "FaultPlan | None" = None,
        fsync: bool = True,
    ) -> None:
        self._directory = Path(directory)
        self._cache_pages = cache_pages
        self._verify = verify_checksums
        self._io = io_stats if io_stats is not None else IOStats()
        self._faults = fault_plan
        self._fsync = fsync
        self._lock = threading.RLock()
        self._base: CliqueIndex | None = None
        self._retired: list[CliqueIndex] = []
        self._tombstones: set[int] = set()
        self._added: dict[int, tuple[int, ...]] = {}
        self._added_ids: dict[tuple[int, ...], int] = {}
        self._overlay_postings: dict[int, set[int]] = {}
        self._overlaid: set[int] = set()
        self._tail: list[CliqueDelta] = []
        self._next_seq = 1
        self._next_id = 0
        self._generation_number = 0
        self._wal_number = 0
        self._wal: DeltaLogWriter | None = None
        self._apply_hooks: list[Callable] = []
        self._subscribers: dict[int, dict[int, Callable]] = {}
        self._next_subscription = 1
        self._closed = False
        self._compactor: _BackgroundCompactor | None = None
        self._load()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def initialize(
        cls,
        directory: str | Path,
        cliques: Iterable[frozenset | tuple] = (),
        **kwargs,
    ) -> "LiveCliqueStore":
        """Create a fresh live store, optionally seeded with a clique set.

        With ``cliques`` (a full enumeration of the starting graph) the
        base generation is built immediately; without, the store starts
        empty and every clique arrives through deltas.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if (directory / LIVE_MANIFEST_FILENAME).exists():
            raise StorageError(f"{directory} already holds a live store")
        ordered = sorted({tuple(sorted(clique)) for clique in cliques})
        generation = None
        if ordered:
            generation = "gen-000000"
            build_index(ordered, directory / generation)
        DeltaLogWriter.create(directory / "wal-000000.log")
        _commit_json(directory, LIVE_MANIFEST_FILENAME, {
            "schema": LIVE_MANIFEST_SCHEMA,
            "generation": generation,
            "generation_number": 0,
            "wals": ["wal-000000.log"],
            "wal_number": 0,
            "base_seq": 0,
        })
        return cls(directory, **kwargs)

    @classmethod
    def open(cls, directory: str | Path, **kwargs) -> "LiveCliqueStore":
        """Open an existing live store (alias for the constructor)."""
        return cls(directory, **kwargs)

    def _load(self) -> None:
        """Recover to the manifest's consistent state.

        Strays — generation directories and WALs the manifest does not
        reference, scratch files, half-built generations — are deleted;
        referenced WALs are replayed (the newest may carry a torn tail,
        which is truncated); the tail overlay is rebuilt in memory.
        """
        manifest_path = self._directory / LIVE_MANIFEST_FILENAME
        if not manifest_path.exists():
            raise StorageError(
                f"{self._directory} is not a live clique store "
                f"(missing {LIVE_MANIFEST_FILENAME})"
            )
        try:
            manifest = json.loads(manifest_path.read_text(encoding="ascii"))
        except (ValueError, UnicodeError) as exc:
            raise StorageError(
                f"malformed live manifest at {manifest_path}: {exc}"
            ) from exc
        if manifest.get("schema") != LIVE_MANIFEST_SCHEMA:
            raise StorageError(
                f"unsupported live-store schema {manifest.get('schema')!r} "
                f"(expected {LIVE_MANIFEST_SCHEMA})"
            )
        generation = manifest["generation"]
        wals = list(manifest["wals"])
        self._generation_number = int(manifest["generation_number"])
        self._wal_number = int(manifest["wal_number"])
        base_seq = int(manifest["base_seq"])

        # Garbage-collect everything the manifest does not reference.
        referenced = set(wals) | ({generation} if generation else set())
        for entry in sorted(self._directory.iterdir()):
            if entry.name in referenced or entry.name == LIVE_MANIFEST_FILENAME:
                continue
            if entry.name.startswith("gen-") and entry.is_dir():
                shutil.rmtree(entry, ignore_errors=True)
            elif entry.name.startswith("wal-") or entry.name.endswith(".tmp"):
                if entry.is_file():
                    entry.unlink(missing_ok=True)

        if generation is not None:
            self._base = CliqueIndex(
                self._directory / generation,
                cache_pages=self._cache_pages,
                verify_checksums=self._verify,
                io_stats=self._io,
                fault_plan=self._faults,
            )
            self._next_id = self._base.num_cliques
        self._next_seq = base_seq + 1

        # Replay the referenced logs, oldest first; only the newest may
        # legitimately end in a torn tail (older ones were frozen whole).
        recovered = 0
        for position, name in enumerate(wals):
            last = position == len(wals) - 1
            path = self._directory / name
            if last:
                writer, deltas = DeltaLogWriter.open_for_append(
                    path, io_stats=self._io, fault_plan=self._faults,
                    fsync=self._fsync,
                )
                self._wal = writer
            else:
                report = ReplayReport()
                deltas = list(replay_delta_log(
                    path, recover_tail=False, io_stats=self._io, report=report,
                ))
            for delta in deltas:
                if delta.seq <= base_seq:
                    continue  # already folded into the base generation
                self._apply_to_overlay(delta)
                self._tail.append(delta)
                self._next_seq = max(self._next_seq, delta.seq + 1)
                recovered += 1
        if recovered:
            _METRICS().recovered.inc(recovered)
        _METRICS().tail.set(len(self._tail))
        self._wal_names = wals

    def close(self) -> None:
        """Stop the background compactor and release every reader."""
        compactor = self._compactor
        if compactor is not None:
            compactor.stop()
            self._compactor = None
        with self._lock:
            self._closed = True
            if self._base is not None:
                self._base.close()
                self._base = None
            for index in self._retired:
                index.close()
            self._retired = []

    def __enter__(self) -> "LiveCliqueStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def directory(self) -> Path:
        """The live-store directory on disk."""
        return self._directory

    @property
    def io_stats(self) -> IOStats:
        """The I/O counters the store's readers and logs report to."""
        return self._io

    @property
    def generation(self) -> str | None:
        """Name of the current base generation (``None`` when empty)."""
        with self._lock:
            return (
                f"gen-{self._generation_number:06d}" if self._base is not None else None
            )

    @property
    def generation_number(self) -> int:
        """Monotonic counter bumped at every compaction swap.

        Read without the lock (a plain int read is atomic): cache layers
        tag entries with it so an entry minted against one generation's
        clique-id space can never answer for the next.
        """
        return self._generation_number

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently applied delta."""
        with self._lock:
            return self._next_seq - 1

    @property
    def tail_length(self) -> int:
        """Deltas applied but not yet folded into a generation."""
        with self._lock:
            return len(self._tail)

    @property
    def num_cliques(self) -> int:
        """Maximal cliques currently live (base minus tombstones plus adds)."""
        with self._lock:
            base = self._base.num_cliques if self._base is not None else 0
            return base - len(self._tombstones) + len(self._added)

    @property
    def id_space(self) -> int:
        """Exclusive upper bound of ever-assigned live clique ids.

        Live ids are *generation-scoped* and non-contiguous: base ids
        keep their ranks, added cliques extend past them, removals leave
        holes.  Compaction re-ranks everything.
        """
        with self._lock:
            return self._next_id

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def apply_deltas(
        self, deltas: Iterable[CliqueDelta], idempotent: bool = False
    ) -> list[CliqueDelta]:
        """Durably log and apply a batch of deltas; returns them stamped.

        WAL-first: the batch is sequence-stamped and fsynced before the
        overlay mutates, so an acknowledged batch survives a crash and a
        failed append changes nothing in memory.

        With ``idempotent=True``, adds for already-live cliques and
        removes for unknown ones are silently dropped *before* the WAL
        append (so the log never carries no-op records) instead of
        raising :class:`~repro.errors.StorageError`.  This is the
        supervisor's re-apply mode: after a crashed ingest worker is
        restarted through :meth:`resync`, recomputed deltas may overlap
        what the WAL already holds, and replaying them must converge
        rather than fail.
        """
        events: list[SubscriptionEvent] = []
        callbacks: list[tuple[Callable, SubscriptionEvent]] = []
        with self._lock:
            self._check_writable()
            effective = list(deltas)
            if idempotent:
                kept = []
                pending: dict[tuple[int, ...], bool] = {}  # intra-batch liveness
                for delta in effective:
                    vertices = tuple(delta.vertices)
                    live = pending.get(
                        vertices, self._live_id_of(vertices) is not None
                    )
                    if (delta.kind == ADD) == live:
                        continue  # add of a live clique / remove of a dead one
                    pending[vertices] = delta.kind == ADD
                    kept.append(delta)
                effective = kept
            stamped = []
            for delta in effective:
                stamped.append(delta.stamped(self._next_seq + len(stamped)))
            if not stamped:
                return []
            assert self._wal is not None
            self._wal.append(stamped)
            self._next_seq += len(stamped)
            bundle = _METRICS()
            for delta in stamped:
                self._apply_to_overlay(delta)
                self._tail.append(delta)
                bundle.deltas[delta.kind].inc()
                events.extend(self._events_for(delta))
            bundle.tail.set(len(self._tail))
            for event in events:
                for callback in self._subscribers.get(event.vertex, {}).values():
                    callbacks.append((callback, event))
            hooks = [(hook, ("delta", delta)) for hook in self._apply_hooks
                     for delta in stamped]
            compactor = self._compactor
        if compactor is not None and len(self._tail) >= compactor.tail_threshold:
            compactor.poke()
        # Hooks and subscriber callbacks run outside the store lock: a
        # callback that re-enters the engine (cache invalidation) or the
        # store must never deadlock against a concurrent reader.
        for hook, payload in hooks:
            hook(*payload)
        delivered = 0
        for callback, event in callbacks:
            callback(event)
            delivered += 1
        if delivered:
            _METRICS().events.inc(delivered)
        return stamped

    def _check_writable(self) -> None:
        if self._closed:
            raise StorageError(f"live store {self._directory} is closed")

    def _apply_to_overlay(self, delta: CliqueDelta) -> None:
        vertices = tuple(delta.vertices)
        if delta.kind == ADD:
            if self._live_id_of(vertices) is not None:
                raise StorageError(
                    f"add delta (seq {delta.seq}) for already-live clique "
                    f"{list(vertices)}"
                )
            clique_id = self._next_id
            self._next_id += 1
            self._added[clique_id] = vertices
            self._added_ids[vertices] = clique_id
            for v in vertices:
                self._overlay_postings.setdefault(v, set()).add(clique_id)
            self._overlaid.update(vertices)
            return
        live_id = self._live_id_of(vertices)
        if live_id is None:
            raise StorageError(
                f"remove delta (seq {delta.seq}) for unknown clique {list(vertices)}"
            )
        if live_id in self._added:
            del self._added[live_id]
            del self._added_ids[vertices]
            for v in vertices:
                postings = self._overlay_postings.get(v)
                if postings is not None:
                    postings.discard(live_id)
                    if not postings:
                        del self._overlay_postings[v]
        else:
            self._tombstones.add(live_id)
        self._overlaid.update(vertices)

    def _live_id_of(self, vertices: tuple[int, ...]) -> int | None:
        """The live id of exactly this clique, or ``None``."""
        overlay = self._added_ids.get(vertices)
        if overlay is not None:
            return overlay
        if self._base is None:
            return None
        candidate: set[int] | None = None
        for v in vertices:
            postings = set(self._base.postings(v))
            candidate = postings if candidate is None else candidate & postings
            if not candidate:
                return None
        for clique_id in sorted(candidate or ()):
            if clique_id in self._tombstones:
                continue
            if self._base.clique(clique_id) == vertices:
                return clique_id
        return None

    def _events_for(self, delta: CliqueDelta) -> list[SubscriptionEvent]:
        if not self._subscribers:
            return []
        kind = "clique_added" if delta.kind == ADD else "clique_removed"
        return [
            SubscriptionEvent(v, kind, tuple(delta.vertices), delta.seq)
            for v in delta.vertices
            if v in self._subscribers
        ]

    # ------------------------------------------------------------------
    # Hooks and subscriptions
    # ------------------------------------------------------------------
    def register_apply_hook(self, hook: Callable) -> None:
        """Observe every applied change as ``hook(event, payload)``.

        ``("delta", CliqueDelta)`` after each applied delta and
        ``("compact", generation_name)`` after each base swap.  Hooks run
        outside the store lock.  The canonical consumer is
        :class:`~repro.service.engine.CliqueQueryEngine`, which drops
        affected postings-cache entries (and, on compaction, the whole
        cache — live ids are generation-scoped).
        """
        self._apply_hooks.append(hook)

    def subscribe(self, vertex: int, callback: Callable) -> int:
        """Notify ``callback(event)`` when a clique containing ``vertex``
        appears or dies; returns a subscription id for :meth:`unsubscribe`.

        Callbacks run on the writer thread, outside the store lock, after
        the triggering delta is durable and visible to reads.
        """
        with self._lock:
            token = self._next_subscription
            self._next_subscription += 1
            self._subscribers.setdefault(int(vertex), {})[token] = callback
            return token

    def unsubscribe(self, token: int) -> bool:
        """Cancel one subscription; returns whether it existed."""
        with self._lock:
            for vertex, subs in list(self._subscribers.items()):
                if token in subs:
                    del subs[token]
                    if not subs:
                        del self._subscribers[vertex]
                    return True
            return False

    @property
    def subscription_count(self) -> int:
        """Active subscriptions across all vertices."""
        with self._lock:
            return sum(len(subs) for subs in self._subscribers.values())

    # ------------------------------------------------------------------
    # Reads (CliqueIndex-compatible surface)
    # ------------------------------------------------------------------
    def postings(self, vertex: int) -> tuple[int, ...]:
        """Live clique ids containing ``vertex``, ascending."""
        with self._lock:
            base_ids: Iterable[int] = ()
            if self._base is not None:
                base_ids = self._base.postings(vertex)
            live = [cid for cid in base_ids if cid not in self._tombstones]
            live.extend(self._overlay_postings.get(vertex, ()))
            return tuple(sorted(live))

    def cliques_containing(self, vertex: int) -> tuple[int, ...]:
        """Alias of :meth:`postings` (mirrors :class:`CliqueIndex`)."""
        return self.postings(vertex)

    def clique(self, clique_id: int) -> tuple[int, ...]:
        """The sorted vertex tuple of live clique ``clique_id``."""
        with self._lock:
            added = self._added.get(clique_id)
            if added is not None:
                return added
            base = self._base.num_cliques if self._base is not None else 0
            if not 0 <= clique_id < base or clique_id in self._tombstones:
                raise GraphError(f"clique id {clique_id} is not live")
            assert self._base is not None
            return self._base.clique(clique_id)

    def clique_size(self, clique_id: int) -> int:
        """Cardinality of live clique ``clique_id``."""
        with self._lock:
            added = self._added.get(clique_id)
            if added is not None:
                return len(added)
            base = self._base.num_cliques if self._base is not None else 0
            if not 0 <= clique_id < base or clique_id in self._tombstones:
                raise GraphError(f"clique id {clique_id} is not live")
            assert self._base is not None
            return self._base.clique_size(clique_id)

    def top_k_largest(self, k: int) -> list[tuple[int, ...]]:
        """The ``k`` largest live cliques (ties by canonical live order)."""
        if k <= 0:
            raise GraphError(f"k must be positive, got {k}")
        with self._lock:
            keys = []
            if self._base is not None:
                keys.extend(
                    (-self._base.clique_size(cid), cid)
                    for cid in range(self._base.num_cliques)
                    if cid not in self._tombstones
                )
            keys.extend((-len(vs), cid) for cid, vs in self._added.items())
            winners = heapq.nsmallest(k, keys)
            return [self.clique(cid) for _neg, cid in winners]

    def scan_cliques(self) -> Iterator[tuple[int, tuple[int, ...]]]:
        """Stream every live ``(clique_id, vertices)`` pair.

        Base records come off the generation's record file (tombstones
        skipped), then the overlay additions in id order.  Taken as a
        whole snapshot under the lock so a concurrent writer cannot tear
        the stream.
        """
        with self._lock:
            results: list[tuple[int, tuple[int, ...]]] = []
            if self._base is not None:
                for clique_id, vertices in self._base.scan_cliques():
                    if clique_id not in self._tombstones:
                        results.append((clique_id, vertices))
            for clique_id in sorted(self._added):
                results.append((clique_id, self._added[clique_id]))
        return iter(results)

    def live_cliques(self) -> set[tuple[int, ...]]:
        """The current maximal-clique set as vertex tuples."""
        return {vertices for _cid, vertices in self.scan_cliques()}

    def stats(self) -> dict:
        """Store-wide statistics: base manifest counts plus overlay state."""
        with self._lock:
            if self._base is not None:
                payload = self._base.stats()
            else:
                payload = {
                    "num_cliques": 0, "num_vertices": 0, "num_postings": 0,
                    "max_clique_size": 0, "size_histogram": {},
                    "stale_vertices": 0, "bytes_by_file": {},
                }
            payload["live"] = {
                "generation": self.generation,
                "num_cliques": self.num_cliques,
                "tail_deltas": len(self._tail),
                "added": len(self._added),
                "tombstones": len(self._tombstones),
                "overlaid_vertices": len(self._overlaid),
                "last_seq": self._next_seq - 1,
                "subscriptions": self.subscription_count,
            }
            payload["num_cliques"] = payload["live"]["num_cliques"]
            payload["stale_vertices"] = len(self._overlaid)
            return payload

    # Delta-overlay signal (the engine reads these as "stale") ----------
    @property
    def stale_vertices(self) -> frozenset[int]:
        """Vertices whose answers are overlaid by unfolded deltas."""
        with self._lock:
            return frozenset(self._overlaid)

    def is_stale(self, *vertices: int) -> bool:
        """Whether any of ``vertices`` is delta-overlaid.

        Unlike a frozen index's stale flag this is *precise*: the answer
        served for an overlaid vertex already reflects every applied
        update; the flag only says the base generation alone would have
        been wrong.
        """
        with self._lock:
            return any(v in self._overlaid for v in vertices)

    def flush_wal(self) -> None:
        """Force the WAL durable now.

        Graceful drain calls this before the process exits, so an
        acknowledged update survives SIGTERM even on a store opened with
        ``fsync=False`` for ingest throughput.
        """
        with self._lock:
            if self._wal is not None and not self._closed:
                self._wal.sync()

    def resync(self) -> int:
        """Rebuild the in-memory state from disk; returns the tail length.

        The supervisor's recovery primitive: after an ingest worker died
        mid-call, the in-memory overlay may be mid-batch, but the disk is
        authoritative — WAL-first writes mean exactly the acknowledged
        batches are logged.  Dropping the overlay and replaying the
        manifest + WALs restores exactly that state.  Subscriptions,
        apply hooks, and the background compactor survive the resync.
        """
        with self._lock:
            self._check_writable()
            if self._base is not None:
                # A degraded cold-path reader may still hold a scan
                # generator over the old base; retire instead of closing.
                self._retired.append(self._base)
                self._base = None
            self._wal = None  # PageStore holds no fd; dropping it is a close
            self._tombstones = set()
            self._added = {}
            self._added_ids = {}
            self._overlay_postings = {}
            self._overlaid = set()
            self._tail = []
            self._next_seq = 1
            self._next_id = 0
            self._load()
            tail = len(self._tail)
        hooks = [(hook, ("compact", self.generation)) for hook in self._apply_hooks]
        # The resync renumbered nothing but the overlay ids may differ;
        # treat it like a compaction swap so caches drop wholesale.
        for hook, payload in hooks:
            hook(*payload)
        return tail

    def health(self) -> dict:
        """Cheap liveness facts (feeds the server's ``health`` probe)."""
        with self._lock:
            compactor = self._compactor
            return {
                "closed": self._closed,
                "generation_number": self._generation_number,
                "tail_deltas": len(self._tail),
                "last_seq": self._next_seq - 1,
                "wal_files": len(self._wal_names),
                "compactor_alive": bool(
                    compactor is not None and compactor.is_alive()
                ),
                "compactions": compactor.compactions if compactor is not None else 0,
                "compaction_errors": compactor.errors if compactor is not None else 0,
            }

    def verify(self) -> dict:
        """Audit the base generation and the overlay's cross-consistency."""
        with self._lock:
            summary = {"records_verified": 0, "vertices_verified": 0,
                       "postings_verified": 0}
            if self._base is not None:
                summary = self._base.verify()
            for clique_id, vertices in self._added.items():
                for v in vertices:
                    if clique_id not in self._overlay_postings.get(v, ()):
                        raise StorageError(
                            f"overlay clique {clique_id} missing from postings "
                            f"of vertex {v}"
                        )
            for v, ids in self._overlay_postings.items():
                for clique_id in ids:
                    if v not in self._added.get(clique_id, ()):
                        raise StorageError(
                            f"overlay postings of vertex {v} reference clique "
                            f"{clique_id} that does not contain it"
                        )
            base = self._base.num_cliques if self._base is not None else 0
            for clique_id in self._tombstones:
                if not 0 <= clique_id < base:
                    raise StorageError(f"tombstone {clique_id} outside the base")
            summary["tail_deltas"] = len(self._tail)
            summary["overlay_cliques"] = len(self._added)
            return summary

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> str | None:
        """Fold the delta tail into a fresh generation; returns its name.

        Readers are never blocked: the build runs outside the store lock
        against a frozen WAL and a private base reader; only the final
        swap takes the lock, briefly.  Returns ``None`` when there was
        nothing to fold.  On any error the store keeps serving from the
        current generation and tail unchanged.
        """
        with self._lock:
            self._check_writable()
            if not self._tail:
                return None
            folded_seq = self._next_seq - 1
            folded = list(self._tail)
            old_generation = self.generation
            old_wals = list(self._wal_names)
            old_generation_number = self._generation_number
            new_generation_number = self._generation_number + 1
            new_wal_number = self._wal_number + 1
            new_wal_name = f"wal-{new_wal_number:06d}.log"
            generation_name = f"gen-{new_generation_number:06d}"

            # Step 1: rotate.  After this commit the old log is frozen and
            # every new delta lands in the fresh one.
            self._draw_compaction_fault("rotate")
            new_wal = DeltaLogWriter.create(
                self._directory / new_wal_name,
                io_stats=self._io, fault_plan=self._faults, fsync=self._fsync,
            )
            _commit_json(self._directory, LIVE_MANIFEST_FILENAME, {
                "schema": LIVE_MANIFEST_SCHEMA,
                "generation": old_generation,
                "generation_number": old_generation_number,
                "wals": old_wals + [new_wal_name],
                "wal_number": new_wal_number,
                "base_seq": self._base_seq(),
                "compacting": True,
            })
            self._wal = new_wal
            self._wal_names = old_wals + [new_wal_name]
            self._wal_number = new_wal_number

        started = time.perf_counter()
        try:
            # Step 2: build the next generation, lock-free.  The serving
            # base reader is never touched — a private reader scans the
            # generation directory so bufferpool state cannot race.
            self._draw_compaction_fault("build")
            cliques: set[tuple[int, ...]] = set()
            if old_generation is not None:
                with CliqueIndex(
                    self._directory / old_generation,
                    cache_pages=self._cache_pages,
                    verify_checksums=self._verify,
                    io_stats=self._io,
                ) as snapshot:
                    cliques = {vs for _cid, vs in snapshot.scan_cliques()}
            for delta in folded:
                if delta.kind == ADD:
                    cliques.add(tuple(delta.vertices))
                else:
                    cliques.discard(tuple(delta.vertices))
            new_generation: str | None = None
            if cliques:
                new_generation = generation_name
                build_index(
                    sorted(cliques),
                    self._directory / generation_name,
                    io_stats=self._io,
                )

            # Step 3: commit — the manifest swap is the only moment the
            # new generation becomes real.
            self._draw_compaction_fault("commit")
            _commit_json(self._directory, LIVE_MANIFEST_FILENAME, {
                "schema": LIVE_MANIFEST_SCHEMA,
                "generation": new_generation,
                "generation_number": new_generation_number,
                "wals": [new_wal_name],
                "wal_number": new_wal_number,
                "base_seq": folded_seq,
            })
        except BaseException:
            _METRICS().compaction_failures.inc()
            raise

        new_base = None
        if new_generation is not None:
            new_base = CliqueIndex(
                self._directory / new_generation,
                cache_pages=self._cache_pages,
                verify_checksums=self._verify,
                io_stats=self._io,
                fault_plan=self._faults,
            )
        with self._lock:
            old_base = self._base
            self._base = new_base
            if old_base is not None:
                # Readers snapshot nothing across queries — every read
                # re-enters under the lock — but a degraded cold path may
                # still hold a scan generator; retire instead of closing.
                self._retired.append(old_base)
            self._generation_number = new_generation_number
            self._wal_names = [new_wal_name]
            self._tombstones = set()
            remaining = [d for d in self._tail if d.seq > folded_seq]
            self._rebuild_overlay(new_base, remaining)
            hooks = [(hook, ("compact", generation_name)) for hook in self._apply_hooks]
        for hook, payload in hooks:
            hook(*payload)

        # Step 4: cleanup — pure garbage collection; a crash here only
        # leaves strays for the next open() to sweep.
        self._draw_compaction_fault("cleanup")
        if old_generation is not None:
            shutil.rmtree(self._directory / old_generation, ignore_errors=True)
        for name in old_wals:
            (self._directory / name).unlink(missing_ok=True)
        bundle = _METRICS()
        bundle.compactions.inc()
        bundle.compaction_seconds.observe(time.perf_counter() - started)
        bundle.tail.set(self.tail_length)
        return generation_name

    def _base_seq(self) -> int:
        manifest = json.loads(
            (self._directory / LIVE_MANIFEST_FILENAME).read_text(encoding="ascii")
        )
        return int(manifest["base_seq"])

    def _rebuild_overlay(
        self, base: CliqueIndex | None, remaining: list[CliqueDelta]
    ) -> None:
        """Re-derive every overlay structure from a new base + tail."""
        self._added = {}
        self._added_ids = {}
        self._overlay_postings = {}
        self._overlaid = set()
        self._tombstones = set()
        self._tail = []
        self._next_id = base.num_cliques if base is not None else 0
        for delta in remaining:
            self._apply_to_overlay(delta)
            self._tail.append(delta)

    def _draw_compaction_fault(self, stage: str) -> None:
        """Consult the fault plan at a named compaction stage."""
        if self._faults is None:
            return
        fault = self._faults.draw("compaction", path=stage)
        if fault is None:
            return
        if fault.kind == "latency":
            time.sleep(fault.latency_seconds)
            return
        if fault.kind == "io_error":
            raise StorageIOError(
                "compaction", self._directory, f"injected fault at stage {stage!r}"
            )

    # ------------------------------------------------------------------
    # Background compaction
    # ------------------------------------------------------------------
    def start_compactor(
        self,
        tail_threshold: int = 1024,
        interval_seconds: float = 0.05,
        on_error: Callable[[BaseException], None] | None = None,
    ) -> "_BackgroundCompactor":
        """Run :meth:`compact` on a daemon thread whenever the tail grows
        past ``tail_threshold`` deltas.  Errors are counted and reported
        through ``on_error`` (the store keeps serving either way)."""
        if self._compactor is not None:
            return self._compactor
        self._compactor = _BackgroundCompactor(
            self, tail_threshold, interval_seconds, on_error
        )
        self._compactor.start()
        return self._compactor


class _BackgroundCompactor:
    """Daemon thread folding the delta tail when it grows too long."""

    def __init__(
        self,
        store: LiveCliqueStore,
        tail_threshold: int,
        interval_seconds: float,
        on_error: Callable[[BaseException], None] | None,
    ) -> None:
        self._store = store
        self.tail_threshold = max(1, tail_threshold)
        self._interval = interval_seconds
        self._on_error = on_error
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="live-compactor", daemon=True
        )
        self.compactions = 0
        self.errors = 0

    def start(self) -> None:
        self._thread.start()

    def is_alive(self) -> bool:
        """Whether the compactor thread is still running (supervision)."""
        return self._thread.is_alive()

    def poke(self) -> None:
        """Ask the compactor to re-check the tail immediately."""
        self._wake.set()

    def stop(self) -> None:
        self._stop.set()
        self._wake.set()
        self._thread.join(timeout=30.0)

    def _run(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self._interval)
            self._wake.clear()
            if self._stop.is_set():
                return
            try:
                if self._store.tail_length >= self.tail_threshold:
                    if self._store.compact() is not None:
                        self.compactions += 1
            except Exception as exc:
                # Exception, not BaseException: a raised SystemExit (the
                # chaos harness's thread kill) must terminate the thread
                # so the supervisor can observe the death and restart it.
                self.errors += 1
                if self._on_error is not None:
                    self._on_error(exc)
