"""Edge-stream ingestion: maintainer updates → clique deltas → live store.

:class:`LiveIngestor` closes the loop the ROADMAP calls "from stale
flags to incremental index maintenance".  It hangs off
:meth:`~repro.dynamic.maintainer.HStarMaintainer.register_update_hook`,
so every edge event flows through the paper's Section 5 maintenance of
``T_H*`` first; the hook then computes the event's effect on the *full*
maximal-clique set (:mod:`repro.live.deltas`) and applies it to the
:class:`~repro.live.store.LiveCliqueStore` — durably logged, overlay
applied, subscribers notified — before the next event is admitted.

The hook fires after the maintainer mutates the graph and before the
store applies the deltas, which is exactly the window the delta rules
need: adjacency reflects the update, the store's clique set does not
yet.  Events come in the ``(timestamp, u, v)`` shape
:mod:`repro.generators.streams` produces, optionally extended with an
operation tag for deletions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.dynamic.maintainer import HStarMaintainer
from repro.errors import GraphError
from repro.live.deltas import delete_edge_deltas, insert_edge_deltas
from repro.live.store import LiveCliqueStore


@dataclass
class IngestReport:
    """Counters for one ingestion session."""

    edges_applied: int = 0
    insertions: int = 0
    deletions: int = 0
    deltas_emitted: int = 0
    cliques_added: int = 0
    cliques_removed: int = 0
    seconds: float = 0.0

    extra: dict = field(default_factory=dict)

    @property
    def updates_per_second(self) -> float:
        """Sustained edge-update throughput of the session."""
        if self.seconds <= 0.0:
            return 0.0
        return self.edges_applied / self.seconds

    def to_payload(self) -> dict:
        """JSON-able summary."""
        return {
            "edges_applied": self.edges_applied,
            "insertions": self.insertions,
            "deletions": self.deletions,
            "deltas_emitted": self.deltas_emitted,
            "cliques_added": self.cliques_added,
            "cliques_removed": self.cliques_removed,
            "seconds": self.seconds,
            "updates_per_second": self.updates_per_second,
            **self.extra,
        }


class LiveIngestor:
    """Drives a maintainer and mirrors every update into a live store.

    Examples
    --------
    >>> import tempfile
    >>> from repro.dynamic.maintainer import HStarMaintainer
    >>> from repro.live.store import LiveCliqueStore
    >>> directory = tempfile.mkdtemp()
    >>> store = LiveCliqueStore.initialize(directory)
    >>> ingestor = LiveIngestor(HStarMaintainer(), store)
    >>> ingestor.ingest([(0, 1, 2), (1, 2, 3), (2, 1, 3)])
    3
    >>> sorted(store.live_cliques())
    [(1, 2, 3)]
    >>> store.close()
    """

    def __init__(self, maintainer: HStarMaintainer, store: LiveCliqueStore) -> None:
        self._maintainer = maintainer
        self._store = store
        self.report = IngestReport()
        maintainer.register_update_hook(self._on_update)

    @property
    def maintainer(self) -> HStarMaintainer:
        """The driven maintainer (its graph is the source of truth)."""
        return self._maintainer

    @property
    def store(self) -> LiveCliqueStore:
        """The live store mirroring the maintainer's clique set."""
        return self._store

    # ------------------------------------------------------------------
    # The maintainer hook: one applied edge → one delta batch
    # ------------------------------------------------------------------
    def _on_update(self, kind: str, u: int, v: int) -> None:
        if kind == "insert":
            deltas = insert_edge_deltas(self._maintainer.graph, u, v, self._lookup)
            self.report.insertions += 1
        elif kind == "delete":
            deltas = delete_edge_deltas(self._maintainer.graph, u, v, self._lookup)
            self.report.deletions += 1
        else:
            raise GraphError(f"unknown maintainer update kind {kind!r}")
        self.report.edges_applied += 1
        if not deltas:
            return
        stamped = self._store.apply_deltas(deltas)
        self.report.deltas_emitted += len(stamped)
        for delta in stamped:
            if delta.kind == "add":
                self.report.cliques_added += 1
            else:
                self.report.cliques_removed += 1

    def _lookup(self, vertex: int) -> list[tuple[int, ...]]:
        """Current maximal cliques containing ``vertex`` (pre-update view)."""
        store = self._store
        return [store.clique(cid) for cid in store.postings(vertex)]

    # ------------------------------------------------------------------
    # Stream entry points
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> None:
        """Apply one edge insertion end to end."""
        self._maintainer.insert_edge(u, v)

    def delete_edge(self, u: int, v: int) -> None:
        """Apply one edge deletion end to end."""
        self._maintainer.delete_edge(u, v)

    def apply_event(self, event: tuple) -> None:
        """Apply one stream event (the unit :meth:`ingest` loops over)."""
        if len(event) == 3:
            _, u, v = event
            self._maintainer.insert_edge(u, v)
        elif len(event) == 4:
            _, op, u, v = event
            if op == "insert":
                self._maintainer.insert_edge(u, v)
            elif op == "delete":
                self._maintainer.delete_edge(u, v)
            else:
                raise GraphError(f"unknown stream operation {op!r}")
        else:
            raise GraphError(
                f"stream events are (ts, u, v) or (ts, op, u, v); got {event!r}"
            )

    def reapply_event(self, event: tuple) -> None:
        """Idempotently re-apply an event a crashed worker may have half-done.

        The hazard: the maintainer mutates its graph *before* the update
        hook logs the store deltas, so a worker that died in between
        leaves the edge in the graph with the clique set not yet updated
        — and a naive retry is a no-op, because the maintainer never
        fires the hook for an edge it already holds.  This path closes
        that window: when the graph already reflects the event, the
        deltas are recomputed from the post-update adjacency and applied
        with ``idempotent=True`` (already-applied ones drop out); when it
        does not, the event simply applies normally.  Either way the
        store converges to exactly-once effects from at-least-once
        delivery.
        """
        if len(event) == 3:
            op, u, v = "insert", event[1], event[2]
        elif len(event) == 4:
            _, op, u, v = event
            if op not in ("insert", "delete"):
                raise GraphError(f"unknown stream operation {op!r}")
        else:
            raise GraphError(
                f"stream events are (ts, u, v) or (ts, op, u, v); got {event!r}"
            )
        graph = self._maintainer.graph
        present = u in graph and v in graph and graph.has_edge(u, v)
        if op == "insert":
            if not present:
                self._maintainer.insert_edge(u, v)
                return
            deltas = insert_edge_deltas(graph, u, v, self._lookup)
        else:
            if present:
                self._maintainer.delete_edge(u, v)
                return
            if u not in graph or v not in graph:
                return  # the deletion fully landed before the crash
            deltas = delete_edge_deltas(graph, u, v, self._lookup)
        stamped = self._store.apply_deltas(deltas, idempotent=True)
        self.report.deltas_emitted += len(stamped)
        for delta in stamped:
            if delta.kind == "add":
                self.report.cliques_added += 1
            else:
                self.report.cliques_removed += 1

    def ingest(self, events: Iterable[tuple]) -> int:
        """Replay a timestamped event stream; returns edges applied.

        Events are ``(timestamp, u, v)`` insertions (the
        :mod:`repro.generators.streams` shape) or
        ``(timestamp, op, u, v)`` with ``op`` in ``{"insert", "delete"}``
        for mixed workloads.  Duplicate insertions are silently skipped
        (the maintainer never fires the hook for them).
        """
        before = self.report.edges_applied
        started = time.perf_counter()
        for event in events:
            self.apply_event(event)
        self.report.seconds += time.perf_counter() - started
        return self.report.edges_applied - before


def maintainer_from_store(store: LiveCliqueStore) -> HStarMaintainer:
    """A maintainer whose graph mirrors the store's current clique set.

    The supervisor's restart factory: after a WAL resync the store is
    the source of truth, and since every edge lies in some maximal
    clique (and every isolated vertex is a size-1 clique), the live
    cliques reconstruct the exact graph.
    """
    from repro.graph.adjacency import AdjacencyGraph

    graph = AdjacencyGraph()
    for clique in store.live_cliques():
        for v in clique:
            if v not in graph:
                graph.add_vertex(v)
        for i, u in enumerate(clique):
            for v in clique[i + 1:]:
                graph.add_edge(u, v)
    return HStarMaintainer(graph)


def bootstrap_live_store(
    directory,
    graph,
    workdir,
    **store_kwargs,
) -> LiveCliqueStore:
    """Initialise a live store from a fresh enumeration of ``graph``.

    Runs ExtMCE over a disk snapshot (the enumerate-once pipeline) and
    seeds generation 0 with the result, so ingestion starts from a base
    index instead of an all-overlay tail.
    """
    from pathlib import Path

    from repro.core.extmce import ExtMCE, ExtMCEConfig
    from repro.storage.diskgraph import DiskGraph

    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    disk = DiskGraph.create(workdir / "bootstrap.bin", graph)
    algo = ExtMCE(disk, ExtMCEConfig(workdir=workdir))
    try:
        cliques = [tuple(sorted(clique)) for clique in algo.enumerate_cliques()]
    finally:
        disk.delete()
    return LiveCliqueStore.initialize(directory, cliques, **store_kwargs)
