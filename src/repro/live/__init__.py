"""repro.live — continuously maintained clique serving.

The enumerate-once pipeline (ExtMCE → ``repro.index`` → ``repro.service``)
answers queries about the graph *as it was enumerated*; edge updates only
flag postings stale.  This package closes the loop:

* :mod:`repro.live.deltas` — the effect of one edge update on the
  maximal-clique set, as explicit add/remove deltas (Section 5 plus the
  Das et al. dynamic-MCE case analysis);
* :mod:`repro.live.wal` — a CRC32-checksummed write-ahead delta log with
  torn-tail recovery;
* :mod:`repro.live.store` — the generational store: a base
  ``repro.index`` generation plus an in-memory overlay of the logged
  delta tail, folded by non-blocking background compaction and swapped
  in with an atomic manifest commit;
* :mod:`repro.live.ingest` — stream ingestion driving
  :class:`~repro.dynamic.maintainer.HStarMaintainer` and mirroring every
  applied update into the store;
* :mod:`repro.live.supervisor` — a watchdog restarting dead ingest /
  compaction workers through WAL replay, with crash-loop backoff and a
  ``degraded`` flag the serving tier's ``health`` probe surfaces.

``docs/LIVE.md`` documents the on-disk layout, the compaction lifecycle,
and the subscription protocol.
"""

from repro.live.deltas import (
    ADD,
    REMOVE,
    CliqueDelta,
    delete_edge_deltas,
    insert_edge_deltas,
)
from repro.live.ingest import (
    IngestReport,
    LiveIngestor,
    bootstrap_live_store,
    maintainer_from_store,
)
from repro.live.supervisor import LiveSupervisor, SupervisedIngestor
from repro.live.store import (
    LIVE_MANIFEST_FILENAME,
    LIVE_MANIFEST_SCHEMA,
    LiveCliqueStore,
    SubscriptionEvent,
)
from repro.live.wal import (
    WAL_MAGIC,
    DeltaLogWriter,
    ReplayReport,
    decode_delta_record,
    encode_delta_record,
    replay_delta_log,
)

__all__ = [
    "ADD",
    "REMOVE",
    "CliqueDelta",
    "insert_edge_deltas",
    "delete_edge_deltas",
    "IngestReport",
    "LiveIngestor",
    "LiveSupervisor",
    "SupervisedIngestor",
    "bootstrap_live_store",
    "maintainer_from_store",
    "LIVE_MANIFEST_FILENAME",
    "LIVE_MANIFEST_SCHEMA",
    "LiveCliqueStore",
    "SubscriptionEvent",
    "WAL_MAGIC",
    "DeltaLogWriter",
    "ReplayReport",
    "encode_delta_record",
    "decode_delta_record",
    "replay_delta_log",
]
