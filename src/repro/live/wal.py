"""CRC32-checksummed write-ahead delta log.

One log file holds an append-only sequence of clique deltas::

    RPXWAL1\\n                                 8-byte magic
    record := varint(seq) kind(u8) varint(n) delta_list(vertices) crc32

The payload codecs are the index codecs (:mod:`repro.index.format`):
LEB128 varints, delta-encoded sorted vertex lists, a trailing CRC32 of
the payload.  Records are self-delimiting, so replay needs no directory.

Durability and failure semantics follow the checkpoint discipline:

* every append goes through :class:`~repro.storage.pagestore.PageStore`
  (I/O accounting plus the ``"write"`` fault-injection site) and is
  fsynced before :meth:`DeltaLogWriter.append` returns — an
  acknowledged delta survives a crash;
* a *torn tail* — the file ends mid-record, the signature of a crash
  during an append — is recovered by truncating back to the last whole
  record (:func:`replay_delta_log` with ``recover_tail=True`` reports
  the cut; :meth:`DeltaLogWriter.open_for_append` performs it);
* a CRC32 mismatch on any record that is *not* a truncation is
  corruption, never silently skipped: replay raises
  :class:`~repro.errors.CorruptDataError`, exactly like the index and
  DiskGraph v2 readers.

A failed append (injected or real ``OSError``) leaves the file torn; the
writer repairs it immediately by truncating back to the pre-append
length, so the next append never buries garbage between valid records.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from types import SimpleNamespace
from typing import TYPE_CHECKING, Iterable, Iterator

from repro import metrics
from repro.errors import CorruptDataError, StorageError, StorageFormatError
from repro.index.format import (
    decode_delta_list,
    decode_varint,
    encode_delta_list,
    encode_varint,
)
from repro.live.deltas import ADD, REMOVE, CliqueDelta
from repro.storage.iostats import IOStats
from repro.storage.pagestore import PageStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults import FaultPlan

#: Magic bytes opening a delta log (8 bytes, versioned).
WAL_MAGIC = b"RPXWAL1\n"

_CRC = struct.Struct("<I")
_KIND_CODES = {ADD: 0, REMOVE: 1}
_KIND_NAMES = {code: kind for kind, code in _KIND_CODES.items()}

_METRICS = metrics.bound(
    lambda registry: SimpleNamespace(
        records=registry.counter(
            "repro_live_wal_records_total", "delta records appended to WALs"
        ),
        bytes=registry.counter(
            "repro_live_wal_bytes_total", "bytes appended to WALs"
        ),
        torn_tails=registry.counter(
            "repro_live_wal_torn_tails_total",
            "torn WAL tails truncated during recovery or append repair",
        ),
        replayed=registry.counter(
            "repro_live_wal_replayed_total", "delta records replayed from WALs"
        ),
    )
)


def encode_delta_record(delta: CliqueDelta) -> bytes:
    """Serialise one delta: seq, kind, vertex count, deltas, CRC32."""
    payload = (
        encode_varint(delta.seq)
        + bytes((_KIND_CODES[delta.kind],))
        + encode_varint(len(delta.vertices))
        + encode_delta_list(delta.vertices)
    )
    return payload + _CRC.pack(zlib.crc32(payload))


def decode_delta_record(
    buffer: bytes, offset: int = 0, verify: bool = True
) -> tuple[CliqueDelta, int]:
    """Decode one delta record at ``offset``; return ``(delta, next_offset)``.

    Raises :class:`~repro.errors.StorageFormatError` on truncation and
    :class:`~repro.errors.CorruptDataError` on a CRC mismatch — callers
    use the distinction to tell a torn tail from a flipped bit.
    """
    seq, cursor = decode_varint(buffer, offset)
    if cursor >= len(buffer):
        raise StorageFormatError(f"truncated delta record kind at offset {offset}")
    code = buffer[cursor]
    cursor += 1
    if code not in _KIND_NAMES:
        raise CorruptDataError(
            f"delta record at offset {offset} has unknown kind byte {code:#04x}"
        )
    count, cursor = decode_varint(buffer, cursor)
    if count == 0:
        raise CorruptDataError(f"empty delta record at offset {offset}")
    vertices, end = decode_delta_list(buffer, count, cursor)
    if end + _CRC.size > len(buffer):
        raise StorageFormatError(f"truncated delta record checksum at offset {offset}")
    if verify:
        (stored,) = _CRC.unpack_from(buffer, end)
        computed = zlib.crc32(buffer[offset:end])
        if stored != computed:
            raise CorruptDataError(
                f"delta record checksum mismatch at offset {offset}: "
                f"stored {stored:#010x}, computed {computed:#010x}"
            )
    return CliqueDelta(kind=_KIND_NAMES[code], vertices=vertices, seq=seq), end + _CRC.size


@dataclass
class ReplayReport:
    """What one :func:`replay_delta_log` pass found."""

    records: int = 0
    valid_bytes: int = 0
    torn_bytes: int = 0

    @property
    def torn(self) -> bool:
        """Whether the log ended in a torn (truncated) record."""
        return self.torn_bytes > 0


def replay_delta_log(
    path: str | Path,
    recover_tail: bool = False,
    verify: bool = True,
    io_stats: IOStats | None = None,
    fault_plan: "FaultPlan | None" = None,
    report: ReplayReport | None = None,
) -> Iterator[CliqueDelta]:
    """Yield every delta in the log, in append order.

    With ``recover_tail=True`` a *final* truncated record — the torn
    tail a crashed append leaves — is dropped (and counted in
    ``report``); without it, truncation raises
    :class:`~repro.errors.StorageFormatError`.  A CRC mismatch always
    raises :class:`~repro.errors.CorruptDataError`: corruption is never
    survivable, only tearing is.
    """
    store = PageStore(path, io_stats, fault_plan)
    data = store.read_all()
    if data[: len(WAL_MAGIC)] != WAL_MAGIC:
        raise StorageFormatError(
            f"{path} does not start with {WAL_MAGIC!r} (got {data[:len(WAL_MAGIC)]!r})"
        )
    bundle = _METRICS()
    offset = len(WAL_MAGIC)
    while offset < len(data):
        try:
            delta, offset = decode_delta_record(data, offset, verify=verify)
        except StorageFormatError:
            # Truncation: the record runs past EOF, so nothing valid can
            # follow — this is a torn tail by construction.
            if not recover_tail:
                raise
            bundle.torn_tails.inc()
            if report is not None:
                report.torn_bytes = len(data) - offset
                report.valid_bytes = offset
            return
        bundle.replayed.inc()
        if report is not None:
            report.records += 1
            report.valid_bytes = offset
        yield delta


class DeltaLogWriter:
    """Append-only writer over one WAL file, fsynced per append batch."""

    def __init__(
        self,
        path: str | Path,
        io_stats: IOStats | None = None,
        fault_plan: "FaultPlan | None" = None,
        fsync: bool = True,
    ) -> None:
        self._store = PageStore(path, io_stats, fault_plan)
        self._path = Path(path)
        self._fsync = fsync
        self._poisoned: str | None = None

    @property
    def path(self) -> Path:
        """Filesystem location of the log."""
        return self._path

    def size_bytes(self) -> int:
        """Current log size in bytes."""
        return self._store.size_bytes()

    @classmethod
    def create(cls, path: str | Path, **kwargs) -> "DeltaLogWriter":
        """Create a fresh, empty log (magic only) and return its writer."""
        writer = cls(path, **kwargs)
        if writer._store.exists() and writer._store.size_bytes() > 0:
            raise StorageError(f"refusing to create WAL over existing file {path}")
        writer._store.write_all(WAL_MAGIC)
        writer._sync()
        return writer

    @classmethod
    def open_for_append(
        cls, path: str | Path, **kwargs
    ) -> tuple["DeltaLogWriter", list[CliqueDelta]]:
        """Open an existing log: replay it (truncating any torn tail) and
        return ``(writer, replayed_deltas)``."""
        writer = cls(path, **kwargs)
        report = ReplayReport()
        deltas = list(
            replay_delta_log(
                path,
                recover_tail=True,
                io_stats=writer._store.io_stats,
                report=report,
            )
        )
        if report.torn:
            writer._truncate(report.valid_bytes)
        return writer, deltas

    def append(self, deltas: Iterable[CliqueDelta]) -> int:
        """Durably append ``deltas``; returns the bytes written.

        On failure the file is truncated back to its pre-append length —
        the log never carries garbage between valid records — and the
        error propagates.  A writer whose repair truncation itself failed
        is *poisoned*: every later append raises, because the on-disk
        tail state is unknown.
        """
        if self._poisoned is not None:
            raise StorageError(
                f"WAL writer for {self._path} is poisoned: {self._poisoned}"
            )
        deltas = list(deltas)
        encoded = b"".join(encode_delta_record(delta) for delta in deltas)
        if not encoded:
            return 0
        length_before = self._store.size_bytes()
        try:
            self._store.append(encoded)
            self._sync()
        except StorageError:
            try:
                self._truncate(length_before)
            except OSError as exc:  # pragma: no cover — repair path
                self._poisoned = f"tail repair failed: {exc}"
            raise
        bundle = _METRICS()
        bundle.records.inc(len(deltas))
        bundle.bytes.inc(len(encoded))
        return len(encoded)

    def _truncate(self, length: int) -> None:
        if self._path.exists() and self._path.stat().st_size > length:
            _METRICS().torn_tails.inc()
            with open(self._path, "r+b") as handle:
                handle.truncate(length)
                handle.flush()
                os.fsync(handle.fileno())

    def sync(self) -> None:
        """Force an fsync now, even when per-append fsync is disabled.

        Graceful drain calls this so an operator SIGTERM never races a
        store opened with ``fsync=False`` for throughput.
        """
        fd = os.open(self._path, os.O_RDWR)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _sync(self) -> None:
        if not self._fsync:
            return
        self.sync()
