"""Clique add/remove deltas for single edge updates.

The paper's Section 5 maintains ``T_H*`` — the clique tree of the
H*-graph — under edge updates; serving the *full* maximal-clique result
live additionally needs the update's effect on ``M(G)`` itself.  That
effect is local (Das et al., arXiv 2001.11433, compute it in parallel
from exactly this case analysis):

* **Insertion of (u, v).**  Let ``NB = N(u) ∩ N(v)`` in the *updated*
  graph.  The new maximal cliques are ``C ∪ {u, v}`` for every maximal
  clique ``C`` of the induced subgraph ``G[NB]`` (``{u, v}`` itself when
  ``NB`` is empty).  The cliques that stop being maximal are exactly the
  current cliques ``K`` with ``u ∈ K ⊆ {u} ∪ NB`` or ``v ∈ K ⊆ {v} ∪ NB``
  — each is subsumed by ``K ∪ {v}`` (resp. ``K ∪ {u}``), which the edge
  just completed.
* **Deletion of (u, v).**  Every current clique containing both
  endpoints dies.  For each dead ``K``, the halves ``K − {u}`` and
  ``K − {v}`` are the only candidate new maximal cliques; a candidate
  survives iff no vertex of the *updated* graph is adjacent to all of it.

Both rules consult only the current clique set around the endpoints (the
live store answers that from its postings overlay) and the updated
adjacency (the :class:`~repro.dynamic.maintainer.HStarMaintainer` holds
it), so one update costs time local to the endpoints' neighbourhoods —
never a fresh enumeration.  ``tests/live/test_differential.py`` pins the
contract: replaying any stream through these deltas reproduces exactly
the maximal cliques of the final graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.errors import GraphError

#: Delta kinds, in wire/WAL order.
ADD = "add"
REMOVE = "remove"


@dataclass(frozen=True)
class CliqueDelta:
    """One maximal clique entering (``add``) or leaving (``remove``) ``M(G)``.

    ``seq`` is the store-assigned log sequence number; deltas produced by
    the compute functions below carry ``seq=0`` until the live store
    stamps them during the WAL append.
    """

    kind: str
    vertices: tuple[int, ...]
    seq: int = 0

    def __post_init__(self) -> None:
        if self.kind not in (ADD, REMOVE):
            raise GraphError(f"unknown delta kind {self.kind!r}")
        if not self.vertices:
            raise GraphError("a clique delta needs at least one vertex")

    def stamped(self, seq: int) -> "CliqueDelta":
        """This delta with its log sequence number assigned."""
        return CliqueDelta(kind=self.kind, vertices=self.vertices, seq=seq)


#: Callback answering "which current maximal cliques contain vertex v?"
#: with materialised vertex tuples (the live store's overlay view).
CliqueLookup = Callable[[int], Iterable[Sequence[int]]]


def _maximal_cliques(adjacency: dict[int, set[int]]) -> list[frozenset[int]]:
    """Pivoted Bron–Kerbosch over a small dict-of-sets subgraph.

    The induced subgraphs this module enumerates are common
    neighbourhoods of a single edge — tiny even on graphs whose global
    enumeration needs ExtMCE — so a direct recursion is the right tool.
    """
    results: list[frozenset[int]] = []

    def expand(r: set[int], p: set[int], x: set[int]) -> None:
        if not p and not x:
            results.append(frozenset(r))
            return
        pivot = max(p | x, key=lambda w: len(adjacency[w] & p))
        for v in list(p - adjacency[pivot]):
            nbrs = adjacency[v]
            expand(r | {v}, p & nbrs, x & nbrs)
            p.discard(v)
            x.add(v)

    expand(set(), set(adjacency), set())
    return results


def insert_edge_deltas(
    graph, u: int, v: int, lookup: CliqueLookup
) -> list[CliqueDelta]:
    """Deltas for the insertion of edge ``(u, v)``.

    ``graph`` is the adjacency *after* the insertion (duck-typed:
    ``neighbors(v)`` returning a set); ``lookup`` answers against the
    clique set *before* it.  Removals precede additions so a replay
    never holds two copies of a subsumed clique.
    """
    common = set(graph.neighbors(u)) & set(graph.neighbors(v))
    deltas: list[CliqueDelta] = []
    seen: set[tuple[int, ...]] = set()
    for endpoint in (u, v):
        subsumed_bound = common | {endpoint}
        for clique in lookup(endpoint):
            members = tuple(sorted(clique))
            if members in seen:
                continue
            if set(members) <= subsumed_bound:
                seen.add(members)
                deltas.append(CliqueDelta(REMOVE, members))
    if not common:
        deltas.append(CliqueDelta(ADD, tuple(sorted((u, v)))))
        return deltas
    induced = {w: set(graph.neighbors(w)) & common for w in common}
    for kernel in _maximal_cliques(induced):
        deltas.append(CliqueDelta(ADD, tuple(sorted(kernel | {u, v}))))
    return deltas


def delete_edge_deltas(
    graph, u: int, v: int, lookup: CliqueLookup
) -> list[CliqueDelta]:
    """Deltas for the deletion of edge ``(u, v)``.

    ``graph`` is the adjacency *after* the deletion; ``lookup`` answers
    against the clique set *before* it (so the dead cliques — the ones
    containing both endpoints — are still visible).
    """
    dead = [
        tuple(sorted(clique))
        for clique in lookup(u)
        if v in clique
    ]
    deltas = [CliqueDelta(REMOVE, members) for members in dead]
    candidates: set[tuple[int, ...]] = set()
    for members in dead:
        for drop in (u, v):
            survivor = tuple(w for w in members if w != drop)
            if survivor:
                candidates.add(survivor)
    for survivor in sorted(candidates):
        if _is_maximal(graph, survivor):
            deltas.append(CliqueDelta(ADD, survivor))
    return deltas


def _is_maximal(graph, vertices: tuple[int, ...]) -> bool:
    """Whether ``vertices`` (a clique) is maximal in ``graph``."""
    members = set(vertices)
    common: set[int] | None = None
    for w in vertices:
        nbrs = set(graph.neighbors(w))
        common = nbrs if common is None else common & nbrs
        if not common - members:
            return True
    return not (common - members)
