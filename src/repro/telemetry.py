"""Structured run telemetry (JSON-lines traces).

An hours-long external-memory enumeration needs observability that
outlives the process: the driver can append one JSON object per event to
a trace file (step boundaries, structure sizes, suppression counts,
checkpoints), cheap enough to leave on.  The reader side loads and
summarises traces for post-hoc analysis, and the CLI exposes it via
``repro-mce enumerate --trace run.jsonl``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis.tables import render_table
from repro.errors import StorageError


class TraceWriter:
    """Appends timestamped events to a JSON-lines file.

    Events carry a monotonically increasing ``seq`` and an ``elapsed``
    stamp measured from writer construction, so traces are reproducible
    modulo timing (no wall-clock dependency in the payload ordering).
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self._path, "a", encoding="ascii")
        self._seq = 0
        self._started = time.perf_counter()

    @property
    def path(self) -> Path:
        """Trace file location."""
        return self._path

    def emit(self, event: str, **fields: object) -> None:
        """Append one event (flushed immediately; crash-visible)."""
        record = {
            "seq": self._seq,
            "elapsed": round(time.perf_counter() - self._started, 6),
            "event": event,
            **fields,
        }
        self._seq += 1
        self._handle.write(json.dumps(record, sort_keys=True))
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def load_trace(path: str | Path) -> list[dict]:
    """Read a trace file back into a list of event dicts.

    Raises :class:`~repro.errors.StorageError` on malformed lines.
    """
    path = Path(path)
    if not path.exists():
        raise StorageError(f"no trace file at {path}")
    events = []
    with open(path, "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                events.append(json.loads(stripped))
            except json.JSONDecodeError as exc:
                raise StorageError(f"{path}:{line_number}: bad trace line: {exc}") from exc
    return events


def summarize_trace(events: list[dict]) -> str:
    """Render a per-step table from a trace's ``step_completed`` events."""
    steps = [e for e in events if e.get("event") == "step_completed"]
    total = next(
        (e for e in reversed(events) if e.get("event") == "run_completed"), None
    )
    lines = [
        render_table(
            "Trace summary (per recursion step)",
            ["step", "core", "star edges", "tree nodes", "emitted", "suppressed", "elapsed (s)"],
            [
                (
                    e.get("step"),
                    e.get("core_size"),
                    e.get("star_edges"),
                    e.get("tree_nodes"),
                    e.get("emitted"),
                    e.get("suppressed"),
                    f"{e.get('elapsed', 0):.2f}",
                )
                for e in steps
            ],
        )
    ]
    if total is not None:
        lines.append(
            f"run completed: {total.get('total_cliques')} cliques in "
            f"{total.get('elapsed', 0):.2f} s, peak {total.get('peak_memory_units')} units"
        )
    return "\n".join(lines)
