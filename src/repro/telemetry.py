"""Structured run telemetry (JSON-lines traces).

An hours-long external-memory enumeration needs observability that
outlives the process: the driver can append one JSON object per event to
a trace file (step boundaries, structure sizes, suppression counts,
checkpoints), cheap enough to leave on.  The reader side loads and
summarises traces for post-hoc analysis, and the CLI exposes it via
``repro-mce enumerate --trace run.jsonl``.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Iterable
from pathlib import Path

from repro.analysis.tables import render_table
from repro.errors import StorageError


#: Accepted :class:`TraceWriter` open policies.
TRACE_MODES = ("truncate", "append", "rotate")


class TraceWriter:
    """Appends timestamped events to a JSON-lines file.

    Events carry a monotonically increasing ``seq`` and an ``elapsed``
    stamp measured from writer construction, so traces are reproducible
    modulo timing (no wall-clock dependency in the payload ordering).

    ``mode`` controls what happens to a pre-existing file at ``path``:

    * ``"truncate"`` (default) — start a fresh trace.  Historically the
      writer always opened in append mode, so a re-run with the same
      ``--trace`` path silently concatenated two runs and broke the
      monotone-``seq`` invariant every reader relies on.
    * ``"append"`` — continue an existing trace; ``seq`` resumes after
      the file's last event.  Used by resumed checkpoint runs and by
      worker processes that may reopen their per-PID file after a pool
      rebuild.
    * ``"rotate"`` — rename the existing file to ``<path>.1`` (replacing
      any previous rotation), then start fresh.
    """

    def __init__(self, path: str | Path, mode: str = "truncate") -> None:
        if mode not in TRACE_MODES:
            raise ValueError(f"unknown trace mode {mode!r}; expected {TRACE_MODES}")
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._seq = 0
        if mode == "rotate" and self._path.exists():
            os.replace(self._path, self._path.with_name(self._path.name + ".1"))
        needs_newline = False
        if mode == "append" and self._path.exists():
            self._seq = _next_seq(self._path)
            with open(self._path, "rb") as existing:
                existing.seek(0, 2)
                if existing.tell() > 0:
                    existing.seek(-1, 2)
                    needs_newline = existing.read(1) != b"\n"
        self._handle = open(
            self._path, "a" if mode == "append" else "w", encoding="ascii"
        )
        if needs_newline:
            # Terminate a torn final line (crash mid-emit) so the first
            # appended event starts on its own line.
            self._handle.write("\n")
        self._started = time.perf_counter()

    @property
    def path(self) -> Path:
        """Trace file location."""
        return self._path

    @property
    def closed(self) -> bool:
        """Whether the underlying handle has been closed."""
        return self._handle.closed

    def emit(self, event: str, **fields: object) -> None:
        """Append one event (flushed immediately; crash-visible)."""
        record = {
            "seq": self._seq,
            "elapsed": round(time.perf_counter() - self._started, 6),
            "event": event,
            **fields,
        }
        self._seq += 1
        self._handle.write(json.dumps(record, sort_keys=True))
        self._handle.write("\n")
        self._handle.flush()

    def absorb(self, events: list[dict]) -> None:
        """Re-emit pre-merged events under this writer's own counters.

        Used to fold per-worker trace streams (see :func:`merge_traces`)
        into the driver's main trace: each absorbed event keeps its
        payload — including the ``worker`` label and its original
        ``seq``/``elapsed``, renamed ``worker_seq``/``worker_elapsed`` —
        but is stamped with this writer's monotone ``seq``, so the merged
        file still satisfies the single-counter invariant.
        """
        for event in events:
            fields = {
                key: value
                for key, value in event.items()
                if key not in ("seq", "elapsed", "event")
            }
            if "seq" in event:
                fields["worker_seq"] = event["seq"]
            if "elapsed" in event:
                fields["worker_elapsed"] = event["elapsed"]
            self.emit(str(event.get("event", "worker_event")), **fields)

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Close on scope exit — exceptions propagate, the handle never
        leaks.  Drivers and workers both rely on this (plus the per-event
        flush in :meth:`emit`) so a raising worker still leaves a
        readable, mergeable trace file behind."""
        self.close()


def _next_seq(path: Path) -> int:
    """The ``seq`` an appending writer should continue from.

    Tolerates a torn final line (a crash mid-:meth:`TraceWriter.emit`):
    malformed tail lines are ignored rather than fatal, since the resume
    path must work on exactly the files a crash leaves behind.
    """
    last = -1
    with open(path, "r", encoding="ascii") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                event = json.loads(stripped)
            except json.JSONDecodeError:
                continue
            seq = event.get("seq")
            if isinstance(seq, int) and seq > last:
                last = seq
    return last + 1


def load_trace(path: str | Path) -> list[dict]:
    """Read a trace file back into a list of event dicts.

    Raises :class:`~repro.errors.StorageError` on malformed lines.
    """
    path = Path(path)
    if not path.exists():
        raise StorageError(f"no trace file at {path}")
    events = []
    with open(path, "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                events.append(json.loads(stripped))
            except json.JSONDecodeError as exc:
                raise StorageError(f"{path}:{line_number}: bad trace line: {exc}") from exc
    return events


def merge_traces(paths: Iterable[str | Path]) -> list[dict]:
    """Merge per-worker trace files into one deterministic event stream.

    Each worker process writes its own JSON-lines file (``TraceWriter``'s
    append-mode handle is never shared across processes), so after a
    parallel phase the run's telemetry is scattered over several files.
    This merger produces a single stream whose order is a pure function
    of the files' *contents*: events are sorted by ``(worker label,
    per-file seq)`` — never by the wall-clock interleaving of their
    writes — and renumbered with a fresh global ``seq``, so the merged
    file satisfies the same monotone-``seq`` invariant as a
    single-process trace.

    Missing files are skipped (a worker that received no tasks never
    opens its trace).
    """
    merged: list[dict] = []
    for path in sorted(Path(p) for p in paths):
        if not path.exists():
            continue
        for event in load_trace(path):
            event = dict(event)
            event.setdefault("worker", path.stem)
            merged.append(event)
    merged.sort(key=lambda e: (str(e.get("worker", "")), e.get("seq", 0)))
    for seq, event in enumerate(merged):
        event["seq"] = seq
    return merged


def summarize_trace(events: list[dict]) -> str:
    """Render a per-step table from a trace's ``step_completed`` events."""
    steps = [e for e in events if e.get("event") == "step_completed"]
    total = next(
        (e for e in reversed(events) if e.get("event") == "run_completed"), None
    )
    lines = [
        render_table(
            "Trace summary (per recursion step)",
            ["step", "core", "star edges", "tree nodes", "emitted", "suppressed", "elapsed (s)"],
            [
                (
                    e.get("step"),
                    e.get("core_size"),
                    e.get("star_edges"),
                    e.get("tree_nodes"),
                    e.get("emitted"),
                    e.get("suppressed"),
                    f"{e.get('elapsed', 0):.2f}",
                )
                for e in steps
            ],
        )
    ]
    if total is not None:
        lines.append(
            f"run completed: {total.get('total_cliques')} cliques in "
            f"{total.get('elapsed', 0):.2f} s, peak {total.get('peak_memory_units')} units"
        )
    resilience = _summarize_resilience(events)
    if resilience:
        lines.append(resilience)
    return "\n".join(lines)


def _summarize_resilience(events: list[dict]) -> str | None:
    """One line of recovery counters, only when any recovery happened."""
    retries = sum(1 for e in events if e.get("event") == "chunk_retry")
    timeouts = sum(1 for e in events if e.get("event") == "chunk_timeout")
    errors = sum(1 for e in events if e.get("event") == "chunk_error")
    rebuilds = sum(1 for e in events if e.get("event") == "pool_rebuild")
    inline = sum(1 for e in events if e.get("event") == "chunk_inline_fallback")
    degraded = sum(1 for e in events if e.get("event") == "executor_degraded")
    if not (retries or timeouts or errors or rebuilds or inline or degraded):
        return None
    return (
        f"fault recovery: {retries} chunk retries "
        f"({timeouts} timeouts, {errors} errors), "
        f"{rebuilds} pool rebuilds, {inline} inline fallbacks, "
        f"{degraded} degradations"
    )
