"""Exact graph reduction: low-degree peeling and true-twin folding.

Two rules shrink the graph before any H*/L* machinery runs, each paired
with a record that makes the removal *exact* — the final clique stream
is the same set of maximal cliques whether reduction ran or not:

**Peeling (level ``"prune"``).**  Vertices whose current degree is at
most a cap derived from a cheap max-clique lower bound are removed one
at a time, lowest degree first.  Peeling ``v`` enumerates the maximal
cliques of its (tiny, at most cap-sized) live neighborhood: each such
clique ``D`` yields the *direct emission* ``{v} ∪ D`` — a clique no
later enumeration can see, emitted from the map — and the *suppression
entry* ``D`` — a clique that may later look maximal to the engine even
though ``v`` extended it in the original graph.  Iterated to fixpoint,
this removes exactly the vertices outside the ``(cap+1)``-core, i.e. the
degree/k-core pruning of the reduction literature, made stream-exact.

**Folding (level ``"full"``).**  After peeling, vertices with identical
*closed* neighborhoods (true twins — mutual vertex domination) are
interchangeable in every maximal clique, so each twin class keeps only
its smallest member; a :class:`~repro.reduce.map.FoldRecord` restores
the others at emission time.  Rounds repeat until no twins remain
(folding can create new twins).  Dense near-clique communities collapse
to a few representatives; the engine, the CSR packer and the parallel
shared-memory payloads all see only those.

The phase order — *all* peels, then *all* folds — is what keeps
reconstruction cheap and provably exact: no vertex is peeled after a
fold, so every engine clique is lifted through the folds first and then
checked once against one global suppression set (see
:mod:`repro.reduce.map` for the replay argument).

The peel cap is ``max(2, min(lower_bound - 1, 8))``: a vertex of degree
``d < lower_bound`` cannot be in a *larger* clique than the one already
found, so its neighborhood is worth closing out locally — but the local
enumeration is worst-case ``3^{d/3}``, so the cap is also clamped to a
constant that keeps the peel phase linear in practice.  The lower bound
is a greedy clique grown from the highest-core vertex (core numbers from
:mod:`repro.graph.cores`), capped by ``degeneracy + 1``, the classical
upper bound on the clique number.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from types import SimpleNamespace

from repro import metrics
from repro.core.result import canonical_clique_order
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.cores import core_numbers
from repro.reduce.map import Clique, FoldRecord, ReductionMap

#: Recognised reduction levels, in increasing aggressiveness.
LEVELS = ("off", "prune", "full")

#: Hard clamp on the peel cap: the largest neighborhood the peel rule
#: will enumerate locally.  ``3^(8/3)`` ≈ 19 subproblems, so peeling
#: stays linear even when the lower bound is enormous.
PEEL_DEGREE_LIMIT = 8

_METRICS = metrics.bound(
    lambda registry: SimpleNamespace(
        runs={
            level: registry.counter(
                "repro_reduce_runs_total",
                "reduction passes executed, by level",
                labels={"level": level},
            )
            for level in ("prune", "full")
        },
        vertices={
            rule: registry.counter(
                "repro_reduce_vertices_removed_total",
                "vertices removed by the reduction rules",
                labels={"rule": rule},
            )
            for rule in ("peel", "fold")
        },
        edges={
            rule: registry.counter(
                "repro_reduce_edges_removed_total",
                "edges removed by the reduction rules",
                labels={"rule": rule},
            )
            for rule in ("peel", "fold")
        },
        peel_suppressed=registry.counter(
            "repro_reduce_peel_suppressed_total",
            "peel-time direct candidates suppressed by earlier entries",
        ),
        lower_bound=registry.gauge(
            "repro_reduce_lower_bound",
            "greedy max-clique lower bound the peel cap was derived from",
        ),
    )
)


def validate_reduction(level: str) -> str:
    """Return ``level`` if it names a known reduction level."""
    if level not in LEVELS:
        raise ValueError(f"unknown reduction level {level!r}; choose from {LEVELS}")
    return level


@dataclass
class Reduction:
    """A reduced graph plus the map that makes the reduction exact."""

    reduced: AdjacencyGraph
    map: ReductionMap


def clique_lower_bound(graph: AdjacencyGraph) -> int:
    """A cheap max-clique lower bound: greedy growth from the deepest core.

    The seed is the vertex with the highest core number (ties: higher
    degree, then smaller id); each extension step picks the common
    neighbor with the highest core number under the same tie-break.  The
    result is a real clique, so its size lower-bounds the clique number;
    it is additionally clamped by ``degeneracy + 1``, the matching upper
    bound, purely as a defensive invariant.
    """
    if graph.num_vertices == 0:
        return 0
    cores = core_numbers(graph)
    degeneracy = max(cores.values(), default=0)

    def rank(v):
        return (-cores[v], -graph.degree(v), v)

    seed = min(graph.vertices(), key=rank)
    clique = {seed}
    candidates = set(graph.neighbors(seed))
    while candidates:
        best = min(candidates, key=rank)
        clique.add(best)
        candidates &= graph.neighbors(best)
    return min(len(clique), degeneracy + 1)


def peel_cap(lower_bound: int, limit: int = PEEL_DEGREE_LIMIT) -> int:
    """The degree cap the peel rule removes under (see module docstring)."""
    return max(2, min(lower_bound - 1, limit))


def _peel_phase(
    work: AdjacencyGraph,
    cap: int,
    suppressions: set[Clique],
    direct: list[Clique],
) -> tuple[list[int], int, int]:
    """Peel every vertex of (cascading) degree ≤ cap out of ``work``.

    Returns the peel order, the number of edges removed, and the number
    of direct candidates suppressed by earlier entries.  Lowest current
    degree first (ties: smallest id) keeps the pass deterministic; the
    lazy heap re-pushes a neighbor whenever its degree drops.
    """
    from repro.baselines.bron_kerbosch import tomita_maximal_cliques

    peeled: list[int] = []
    edges_removed = 0
    candidates_suppressed = 0
    heap = [(work.degree(v), v) for v in sorted(work.vertices())]
    heapq.heapify(heap)
    while heap:
        degree, vertex = heapq.heappop(heap)
        if vertex not in work or work.degree(vertex) != degree:
            continue  # stale entry; a fresher (lower-degree) one exists
        if degree > cap:
            break  # true minimum degree exceeds the cap: fixpoint reached
        neighbors = sorted(work.neighbors(vertex))
        if neighbors:
            local = list(tomita_maximal_cliques(work.induced_subgraph(neighbors)))
        else:
            local = [frozenset()]
        for entry in local:
            candidate = frozenset(entry | {vertex})
            # A peeled vertex of an *earlier* step may extend this clique
            # in the original graph; exactly then it appears as an entry.
            if candidate in suppressions:
                candidates_suppressed += 1
            else:
                direct.append(candidate)
        for entry in local:
            if entry:
                suppressions.add(frozenset(entry))
        edges_removed += degree
        work.remove_vertex(vertex)
        peeled.append(vertex)
        for u in neighbors:
            heapq.heappush(heap, (work.degree(u), u))
    return peeled, edges_removed, candidates_suppressed


def _fold_phase(work: AdjacencyGraph, folds: list[FoldRecord]) -> int:
    """Collapse true-twin classes onto their smallest member, to fixpoint.

    Equal closed neighborhoods imply adjacency, so every class is a
    clique of interchangeable vertices; removing the non-representatives
    of one class strips the same vertices from every other class's
    neighborhoods, which is why all classes of a round fold safely
    before neighborhoods are recomputed.  Returns edges removed.
    """
    edges_removed = 0
    while True:
        classes: dict[frozenset, list] = {}
        for v in sorted(work.vertices()):
            classes.setdefault(frozenset(work.neighbors(v) | {v}), []).append(v)
        twin_classes = sorted(members for members in classes.values() if len(members) > 1)
        if not twin_classes:
            return edges_removed
        for members in twin_classes:
            representative = members[0]
            for vertex in members[1:]:
                folds.append(FoldRecord(vertex=vertex, representative=representative))
                edges_removed += work.degree(vertex)
                work.remove_vertex(vertex)


def reduce_graph(
    graph: AdjacencyGraph,
    level: str = "full",
    *,
    peel_limit: int = PEEL_DEGREE_LIMIT,
) -> Reduction:
    """Apply the reduction rules of ``level`` to a copy of ``graph``.

    Returns the reduced graph and the :class:`~repro.reduce.map.
    ReductionMap` that lifts its clique stream back to the original
    graph's.  ``level="off"`` returns the (copied) input with an
    identity map.  Vertices must be hashable and mutually orderable
    (ints, in every on-disk pipeline).
    """
    validate_reduction(level)
    registry = metrics.get_registry()
    bundle = _METRICS()
    work = graph.copy()
    original_vertices = graph.num_vertices
    original_edges = graph.num_edges
    if level == "off":
        identity = ReductionMap(
            level="off",
            lower_bound=0,
            peeled=(),
            folds=(),
            suppressions=(),
            direct=(),
            original_vertices=original_vertices,
            original_edges=original_edges,
            reduced_vertices=original_vertices,
            reduced_edges=original_edges,
        )
        return Reduction(reduced=work, map=identity)
    bundle.runs[level].inc()
    with registry.timer(
        "repro_reduce_phase_seconds", "reduction phase wall time",
        labels={"phase": "lower_bound"},
    ):
        lower_bound = clique_lower_bound(work)
    bundle.lower_bound.set(lower_bound)
    cap = peel_cap(lower_bound, peel_limit)
    suppressions: set[Clique] = set()
    direct: list[Clique] = []
    with registry.timer(
        "repro_reduce_phase_seconds", "reduction phase wall time",
        labels={"phase": "peel"},
    ):
        peeled, peel_edges, candidates_suppressed = _peel_phase(
            work, cap, suppressions, direct
        )
    folds: list[FoldRecord] = []
    fold_edges = 0
    if level == "full":
        with registry.timer(
            "repro_reduce_phase_seconds", "reduction phase wall time",
            labels={"phase": "fold"},
        ):
            fold_edges = _fold_phase(work, folds)
    bundle.vertices["peel"].inc(len(peeled))
    bundle.vertices["fold"].inc(len(folds))
    bundle.edges["peel"].inc(peel_edges)
    bundle.edges["fold"].inc(fold_edges)
    bundle.peel_suppressed.inc(candidates_suppressed)
    rmap = ReductionMap(
        level=level,
        lower_bound=lower_bound,
        peeled=peeled,
        folds=folds,
        suppressions=suppressions,
        direct=[frozenset(c) for c in canonical_clique_order(direct)],
        original_vertices=original_vertices,
        original_edges=original_edges,
        reduced_vertices=work.num_vertices,
        reduced_edges=work.num_edges,
        direct_suppressed=candidates_suppressed,
    )
    return Reduction(reduced=work, map=rmap)


__all__ = [
    "LEVELS",
    "PEEL_DEGREE_LIMIT",
    "Reduction",
    "clique_lower_bound",
    "peel_cap",
    "reduce_graph",
    "validate_reduction",
]
