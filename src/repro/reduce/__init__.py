"""repro.reduce — exact graph reduction ahead of the enumeration stack.

Degree/k-core peeling against a greedy max-clique lower bound, plus
true-twin (vertex-domination) folding, with a durable reconstruction map
that re-emits every pruned-away maximal clique — so the clique stream is
the same with reduction on or off while every downstream stage (H*/L*
extraction, both kernels, CSR packing, parallel shared-memory payloads)
carries a smaller graph.  Threaded behind ``ExtMCEConfig.reduction``,
``--reduction`` on the CLI, and ``reduction=`` keywords on the in-memory
enumerators.  See ``docs/REDUCTION.md``.
"""

from repro.reduce.core import (
    LEVELS,
    PEEL_DEGREE_LIMIT,
    Reduction,
    clique_lower_bound,
    peel_cap,
    reduce_graph,
    validate_reduction,
)
from repro.reduce.map import (
    REDUCTION_MAP_FILENAME,
    FoldRecord,
    ReductionMap,
    load_reduction_map,
    save_reduction_map,
)

__all__ = [
    "LEVELS",
    "PEEL_DEGREE_LIMIT",
    "REDUCTION_MAP_FILENAME",
    "FoldRecord",
    "Reduction",
    "ReductionMap",
    "clique_lower_bound",
    "load_reduction_map",
    "peel_cap",
    "reduce_graph",
    "save_reduction_map",
    "validate_reduction",
]
