"""The reduction reconstruction map: exact replay of removed structure.

Reduction (:mod:`repro.reduce.core`) removes vertices from the input
graph in two phases — low-degree *peeling*, then true-twin *folding* —
and records, for each removal, exactly what the enumeration engine can
no longer see.  This module holds that record, its durable CRC32'd JSON
form, and :meth:`ReductionMap.reconstruct`, the stream wrapper that
turns the engine's maximal cliques of the reduced graph back into the
maximal cliques of the original graph.

The replay logic mirrors the removal phases in reverse:

1. **Fold expansion.**  Fold records are processed newest-first; a
   clique containing a record's surviving representative gains the
   folded twin.  Because twins share closed neighborhoods at fold time,
   this lifts every maximal clique of the folded graph to the unique
   maximal clique of the peeled graph it stands for (chains of folds
   compose through the reverse order).
2. **Suppression.**  A lifted clique that equals a *suppression entry* —
   a maximal clique of some peeled vertex's neighborhood, recorded at
   peel time — is extendable by that peeled vertex in the original
   graph, hence not maximal there; it is dropped.  All peels happen
   before all folds, so one global entry set suffices: every lifted
   clique is checked against it exactly once.
3. **Direct emissions.**  Maximal cliques that contain a peeled vertex
   were emitted at peel time (they are stored in the map, already
   suppression-filtered) and are replayed ahead of the engine stream in
   canonical order.

Damage model: the persisted map carries a CRC32 over its canonical
serialization and a structural replay validation (no vertex removed
twice, representatives alive at fold time, level/count consistency), so
a corrupted or tampered file surfaces as a typed
:class:`~repro.errors.ReductionError` — never as a wrong clique.  The
``"reduce"`` fault site of :mod:`repro.faults` injects exactly those
failure modes in tests.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path
from types import SimpleNamespace

from repro import metrics
from repro.errors import ReductionError, StorageIOError
from repro.faults import FaultPlan, corrupt_bytes

Clique = frozenset

#: Filename of the persisted map inside a checkpointed run's workdir.
REDUCTION_MAP_FILENAME = "reduction_map.json"

#: Format version; bump on layout changes so stale files fail loudly.
_VERSION = 1

#: Reconstruction-side totals.  The differential harness reconciles
#: ``repro_mce_cliques_emitted_total + direct - suppressed`` against the
#: final stream length for every reduced configuration.
_METRICS = metrics.bound(
    lambda registry: SimpleNamespace(
        direct=registry.counter(
            "repro_reduce_cliques_direct_total",
            "pruned-away maximal cliques re-emitted from the reconstruction map",
        ),
        suppressed=registry.counter(
            "repro_reduce_cliques_suppressed_total",
            "engine cliques dropped as non-maximal in the original graph",
        ),
    )
)


@dataclass(frozen=True)
class FoldRecord:
    """One vertex-domination fold: ``vertex`` collapsed onto its twin."""

    vertex: int
    representative: int


def _document_crc(payload: dict) -> int:
    """CRC32 over the canonical serialization of the map document."""
    return zlib.crc32(json.dumps(payload, sort_keys=True).encode("utf-8"))


class ReductionMap:
    """Everything needed to replay a reduction exactly.

    Instances are immutable after construction and validate themselves:
    building one from an inconsistent record set (directly, or via
    :meth:`from_spec` on a damaged file) raises
    :class:`~repro.errors.ReductionError`.
    """

    def __init__(
        self,
        *,
        level: str,
        lower_bound: int,
        peeled: Iterable[int],
        folds: Iterable[FoldRecord],
        suppressions: Iterable[Clique],
        direct: Iterable[Clique],
        original_vertices: int,
        original_edges: int,
        reduced_vertices: int,
        reduced_edges: int,
        direct_suppressed: int = 0,
    ) -> None:
        self.level = level
        self.lower_bound = lower_bound
        self.peeled = tuple(peeled)
        self.folds = tuple(folds)
        self.suppressions = frozenset(frozenset(entry) for entry in suppressions)
        self.direct = tuple(frozenset(entry) for entry in direct)
        self.original_vertices = original_vertices
        self.original_edges = original_edges
        self.reduced_vertices = reduced_vertices
        self.reduced_edges = reduced_edges
        self.direct_suppressed = direct_suppressed
        self._validate()

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def vertices_removed(self) -> int:
        """Total vertices removed across both rules."""
        return len(self.peeled) + len(self.folds)

    @property
    def edges_removed(self) -> int:
        """Total edges removed across both rules."""
        return self.original_edges - self.reduced_edges

    @property
    def is_identity(self) -> bool:
        """True when the reduction removed nothing."""
        return not self.peeled and not self.folds

    # ------------------------------------------------------------------
    # Replay validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        from repro.reduce.core import LEVELS

        if self.level not in LEVELS:
            raise ReductionError(
                f"unknown reduction level {self.level!r} in map; choose from {LEVELS}"
            )
        if self.lower_bound < 0 or self.direct_suppressed < 0:
            raise ReductionError("reduction map counts must be non-negative")
        peeled_set = set(self.peeled)
        if len(peeled_set) != len(self.peeled):
            raise ReductionError("reduction map peels a vertex twice")
        if self.level == "prune" and self.folds:
            raise ReductionError("a prune-level map must not contain fold records")
        removed = set(peeled_set)
        for record in self.folds:
            if record.vertex == record.representative:
                raise ReductionError(
                    f"fold record collapses vertex {record.vertex} onto itself"
                )
            if record.vertex in removed:
                raise ReductionError(
                    f"fold record removes vertex {record.vertex} twice"
                )
            if record.representative in removed:
                raise ReductionError(
                    f"fold representative {record.representative} was already "
                    "removed when its record was written"
                )
            removed.add(record.vertex)
        for entry in self.suppressions:
            if not entry:
                raise ReductionError("empty suppression entry in reduction map")
        for clique in self.direct:
            if not clique:
                raise ReductionError("empty direct clique in reduction map")
            if not (clique & peeled_set):
                raise ReductionError(
                    "direct clique contains no peeled vertex: "
                    f"{sorted(clique)}"
                )
        expected = self.original_vertices - len(self.peeled) - len(self.folds)
        if expected != self.reduced_vertices:
            raise ReductionError(
                "reduction map vertex accounting does not replay: "
                f"{self.original_vertices} - {len(self.peeled)} peeled - "
                f"{len(self.folds)} folded != {self.reduced_vertices}"
            )
        if not 0 <= self.reduced_edges <= self.original_edges:
            raise ReductionError("reduction map edge accounting does not replay")

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def reconstruct(
        self,
        stream: Iterable[Clique],
        *,
        emit_direct: bool = True,
        on_direct=None,
        on_suppressed=None,
    ) -> Iterator[Clique]:
        """Lift an enumeration of the reduced graph back to the original.

        ``stream`` must be the maximal cliques of the *reduced* graph;
        the result is exactly the maximal cliques of the original graph
        (direct emissions first, in canonical order, then the expanded
        engine stream in engine order).  ``emit_direct=False`` skips the
        replayed direct cliques — the resumed-run case, where they were
        already delivered before the first checkpoint.  The optional
        callbacks let the driver keep its own delivered-clique
        accounting in step with the wrapper.
        """
        bundle = _METRICS()
        if emit_direct:
            for clique in self.direct:
                bundle.direct.inc()
                if on_direct is not None:
                    on_direct(clique)
                yield clique
        folds = tuple(reversed(self.folds))
        suppressions = self.suppressions
        for clique in stream:
            members = set(clique)
            for record in folds:
                if record.representative in members:
                    if record.vertex in members:
                        raise ReductionError(
                            f"fold expansion would add vertex {record.vertex} "
                            "to a clique that already contains it; the "
                            "reconstruction map does not match the stream"
                        )
                    members.add(record.vertex)
            candidate = frozenset(members)
            if candidate in suppressions:
                bundle.suppressed.inc()
                if on_suppressed is not None:
                    on_suppressed(candidate)
                continue
            yield candidate

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_spec(self) -> dict:
        """Plain-data representation, JSON-serialisable and canonical."""
        return {
            "version": _VERSION,
            "level": self.level,
            "lower_bound": self.lower_bound,
            "original_vertices": self.original_vertices,
            "original_edges": self.original_edges,
            "reduced_vertices": self.reduced_vertices,
            "reduced_edges": self.reduced_edges,
            "direct_suppressed": self.direct_suppressed,
            "peeled": list(self.peeled),
            "folds": [[record.vertex, record.representative] for record in self.folds],
            "suppressions": sorted(sorted(entry) for entry in self.suppressions),
            "direct": [sorted(clique) for clique in self.direct],
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "ReductionMap":
        """Rebuild a map from :meth:`to_spec` output, validating as it goes."""
        if not isinstance(spec, dict):
            raise ReductionError("reduction map document is not a JSON object")
        if spec.get("version") != _VERSION:
            raise ReductionError(
                f"unsupported reduction map version {spec.get('version')!r} "
                f"(expected {_VERSION})"
            )
        try:
            return cls(
                level=str(spec["level"]),
                lower_bound=int(spec["lower_bound"]),
                peeled=[int(v) for v in spec["peeled"]],
                folds=[
                    FoldRecord(vertex=int(entry[0]), representative=int(entry[1]))
                    for entry in spec["folds"]
                ],
                suppressions=[
                    frozenset(int(v) for v in entry) for entry in spec["suppressions"]
                ],
                direct=[
                    frozenset(int(v) for v in entry) for entry in spec["direct"]
                ],
                original_vertices=int(spec["original_vertices"]),
                original_edges=int(spec["original_edges"]),
                reduced_vertices=int(spec["reduced_vertices"]),
                reduced_edges=int(spec["reduced_edges"]),
                direct_suppressed=int(spec["direct_suppressed"]),
            )
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise ReductionError(f"malformed reduction map document: {exc}") from exc


def _draw_reduce_fault(fault_plan: FaultPlan | None, path: Path, data: bytes):
    """Consult the ``"reduce"`` fault site; return possibly-damaged bytes."""
    if fault_plan is None:
        return data
    fault = fault_plan.draw("reduce", str(path))
    if fault is None:
        return data
    if fault.kind == "io_error":
        raise StorageIOError("reduce-map access", path, "injected fault")
    if fault.kind == "latency":
        time.sleep(fault.latency_seconds)
        return data
    if fault.kind == "corrupt":
        return corrupt_bytes(data, fault.fraction)
    return data


def save_reduction_map(
    rmap: ReductionMap, path: str | Path, *, fault_plan: FaultPlan | None = None
) -> Path:
    """Durably persist ``rmap`` (scratch → fsync → rename → dir fsync).

    The serialization is compact (no insignificant whitespace), so any
    single-byte damage either breaks the JSON or changes the payload the
    CRC32 covers — there is no corruption the loader shrugs off as
    formatting.
    """
    path = Path(path)
    payload = rmap.to_spec()
    document = {**payload, "crc32": _document_crc(payload)}
    data = json.dumps(document, sort_keys=True, separators=(",", ":")).encode("utf-8")
    data = _draw_reduce_fault(fault_plan, path, data)
    scratch = path.with_suffix(path.suffix + ".tmp")
    try:
        with open(scratch, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, path)
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError as exc:
        raise StorageIOError("write", path, str(exc)) from exc
    return path


def load_reduction_map(
    path: str | Path, *, fault_plan: FaultPlan | None = None
) -> ReductionMap:
    """Load, integrity-check and replay-validate a persisted map."""
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise StorageIOError("read", path, str(exc)) from exc
    data = _draw_reduce_fault(fault_plan, path, data)
    try:
        document = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ReductionError(f"reduction map {path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise ReductionError(f"reduction map {path} is not a JSON object")
    stored_crc = document.pop("crc32", None)
    if stored_crc is None:
        raise ReductionError(f"reduction map {path} is missing its CRC32")
    actual = _document_crc(document)
    if stored_crc != actual:
        raise ReductionError(
            f"reduction map {path} failed its integrity check "
            f"(stored CRC32 {stored_crc}, computed {actual})"
        )
    return ReductionMap.from_spec(document)


__all__ = [
    "REDUCTION_MAP_FILENAME",
    "FoldRecord",
    "ReductionMap",
    "load_reduction_map",
    "save_reduction_map",
]
