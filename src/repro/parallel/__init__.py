"""Shared-memory parallel enumeration engine for ExtMCE.

The subsystem follows the decomposition recipe of *Shared-Memory
Parallel Maximal Clique Enumeration* (Das, Sanei-Mehri & Tirthapura,
arXiv:1807.09417), adapted to the paper's step-wise H*-graph recursion:

* :mod:`repro.parallel.partition` — splits each step's work into
  per-vertex clique-tree subproblems and partition-aligned lifting
  batches;
* :mod:`repro.parallel.shm` — publishes each step's core-graph CSR
  through one named shared-memory segment that workers attach
  zero-copy (with crash-leftover sweeping);
* :mod:`repro.parallel.scheduler` — :class:`ParallelEngine`, the
  run-scoped owner of the persistent worker pool, the published
  segment, and the task-grain policy (``coarse``/``fine``);
* :mod:`repro.parallel.executor` — runs descriptor-addressed chunks on
  the engine's pool with driver-mediated work stealing (split tails
  requeue to idle workers), disk spooling for oversized results,
  per-worker trace files and chunk-granular fault recovery (bounded
  retry, pool rebuild after worker death, inline degradation);
* :mod:`repro.parallel.merge` — reassembles worker results into the
  exact stream the serial driver would produce (worker-count- and
  schedule-invariant by construction);
* :mod:`repro.parallel.driver` — :class:`ParallelExtMCE`, the drop-in
  driver wrapper wired to ``ExtMCEConfig.workers`` and
  ``ExtMCEConfig.task_grain``.

Quick start::

    from repro import DiskGraph, ExtMCEConfig
    from repro.parallel import ParallelExtMCE

    algo = ParallelExtMCE(DiskGraph.open("graph.bin"),
                          ExtMCEConfig(workers=4))
    for clique in algo.enumerate_cliques():
        ...
"""

from repro.parallel.driver import ParallelExtMCE
from repro.parallel.executor import ExecutorStats, StepExecutor
from repro.parallel.merge import merge_lift_results, merge_tree_results
from repro.parallel.partition import (
    LiftChunk,
    LiftTask,
    TreeTask,
    chunk_lift_tasks,
    chunk_tree_tasks,
    lift_tasks,
    serialize_star,
    tree_tasks,
)
from repro.parallel.scheduler import (
    GRAIN_POLICIES,
    TASK_GRAINS,
    ChunkPolicy,
    GrainPolicy,
    ParallelEngine,
    validate_task_grain,
)
from repro.parallel.shm import sweep_stale_segments

__all__ = [
    "ChunkPolicy",
    "ExecutorStats",
    "GRAIN_POLICIES",
    "GrainPolicy",
    "LiftChunk",
    "LiftTask",
    "ParallelEngine",
    "ParallelExtMCE",
    "StepExecutor",
    "TASK_GRAINS",
    "TreeTask",
    "chunk_lift_tasks",
    "chunk_tree_tasks",
    "lift_tasks",
    "merge_lift_results",
    "merge_tree_results",
    "serialize_star",
    "sweep_stale_segments",
    "tree_tasks",
    "validate_task_grain",
]
