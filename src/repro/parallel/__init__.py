"""Shared-memory parallel enumeration engine for ExtMCE.

The subsystem follows the decomposition recipe of *Shared-Memory
Parallel Maximal Clique Enumeration* (Das, Sanei-Mehri & Tirthapura,
arXiv:1807.09417), adapted to the paper's step-wise H*-graph recursion:

* :mod:`repro.parallel.partition` — splits each step's work into
  per-vertex clique-tree subproblems and partition-aligned lifting
  batches;
* :mod:`repro.parallel.executor` — runs chunks on a ``multiprocessing``
  pool with per-worker trace files and chunk-granular fault recovery
  (bounded retry, pool rebuild after worker death, inline degradation);
* :mod:`repro.parallel.merge` — reassembles worker results into the
  exact stream the serial driver would produce (worker-count-invariant
  by construction);
* :mod:`repro.parallel.driver` — :class:`ParallelExtMCE`, the drop-in
  driver wrapper wired to ``ExtMCEConfig.workers``.

Quick start::

    from repro import DiskGraph, ExtMCEConfig
    from repro.parallel import ParallelExtMCE

    algo = ParallelExtMCE(DiskGraph.open("graph.bin"),
                          ExtMCEConfig(workers=4))
    for clique in algo.enumerate_cliques():
        ...
"""

from repro.parallel.driver import ParallelExtMCE
from repro.parallel.executor import ExecutorStats, StepExecutor
from repro.parallel.merge import merge_lift_results, merge_tree_results
from repro.parallel.partition import (
    LiftChunk,
    LiftTask,
    TreeTask,
    chunk_lift_tasks,
    chunk_tree_tasks,
    lift_tasks,
    serialize_star,
    tree_tasks,
)

__all__ = [
    "ExecutorStats",
    "LiftChunk",
    "LiftTask",
    "ParallelExtMCE",
    "StepExecutor",
    "TreeTask",
    "chunk_lift_tasks",
    "chunk_tree_tasks",
    "lift_tasks",
    "merge_lift_results",
    "merge_tree_results",
    "serialize_star",
    "tree_tasks",
]
