"""The persistent parallel engine: one pool and one graph segment per run.

The old executor rebuilt a ``multiprocessing.Pool`` *per recursion step*
and shipped every worker a pickled copy of the step's core graph at pool
initialization — fixed costs that swamped the parallelism
(``BENCH_parallel.json`` recorded 0.5× "speedups").  The
:class:`ParallelEngine` inverts both:

* **one pool per run** — workers fork once, stay warm across steps, and
  receive work through plain ``apply_async`` calls;
* **one shared-memory segment per step** — the driver publishes the
  step's :class:`~repro.kernel.CompactGraph` CSR once
  (:mod:`repro.parallel.shm`), and tasks carry only a tiny *descriptor*
  (segment name + generation + kernel) that workers resolve against a
  per-process attachment cache.

Task granularity is a policy, not a constant: ``"coarse"`` reproduces
the old static oversubscribed chunking, ``"fine"`` cuts smaller chunks
*and* arms the worker-side split protocol — a worker that has already
spent its time slice on a chunk while the shared pending counter says
the queue is dry returns its unfinished tail to the driver, which
requeues it for whichever worker is idle (work stealing with the driver
as the queue).  Both grains produce byte-identical streams: the merge
orders by task index, never by schedule.
"""

from __future__ import annotations

import multiprocessing
import shutil
from dataclasses import dataclass
from pathlib import Path
from types import SimpleNamespace

from repro import metrics
from repro.errors import GraphError, ReproError
from repro.parallel import shm as shm_mod
from repro.parallel.partition import serialize_star

#: Supported task-granularity policies.
TASK_GRAINS = ("coarse", "fine")

#: Results bigger than this are spooled to disk instead of travelling
#: through the pool's result pipe (see ``ChunkPolicy.spool_threshold``).
SPOOL_THRESHOLD_BYTES = 1 << 20

_METRICS = metrics.bound(
    lambda registry: SimpleNamespace(
        shm_bytes=registry.counter(
            "repro_parallel_shm_bytes_total",
            "bytes published through shared-memory graph segments",
        ),
        segments=registry.counter(
            "repro_parallel_shm_segments_total",
            "shared-memory graph segments published",
        ),
        swept=registry.counter(
            "repro_parallel_shm_segments_swept_total",
            "stale crash-leftover segments removed at engine start",
        ),
        inband=registry.counter(
            "repro_parallel_inband_payloads_total",
            "steps that fell back to the pickled in-band graph payload",
        ),
    )
)


def validate_task_grain(grain: str) -> str:
    """Return ``grain`` if supported, else raise ``ReproError``."""
    if grain not in TASK_GRAINS:
        raise ReproError(
            f"unknown task grain {grain!r}; choose from {TASK_GRAINS}"
        )
    return grain


@dataclass(frozen=True)
class GrainPolicy:
    """How one task-grain setting decomposes and rebalances work.

    ``oversubscription`` scales the initial chunk count (chunks per
    worker); ``split_after_seconds`` is the worker-side time slice after
    which a chunk holding ≥ 2 unfinished tasks may hand its tail back to
    the driver — ``None`` disarms splitting entirely.
    """

    name: str
    oversubscription: int
    split_after_seconds: float | None


GRAIN_POLICIES = {
    "coarse": GrainPolicy("coarse", oversubscription=4, split_after_seconds=None),
    "fine": GrainPolicy("fine", oversubscription=8, split_after_seconds=0.05),
}


@dataclass(frozen=True)
class ChunkPolicy:
    """Per-submission execution policy shipped alongside each chunk.

    Everything a worker needs to decide splitting and spooling without
    holding any engine state: the chunk's queue identity, the split time
    slice (``None`` = never split), and where/when to spool oversized
    result payloads.
    """

    chunk_id: int
    split_after_seconds: float | None = None
    spool_dir: str | None = None
    spool_threshold: int = SPOOL_THRESHOLD_BYTES


class ParallelEngine:
    """Run-scoped pool + segment owner shared by every step's executor.

    Construction sweeps crash-leftover segments, creates the worker pool
    eagerly (``workers > 1``), and allocates the shared pending counter
    the split protocol reads.  :meth:`close` is idempotent and always
    unlinks whatever segment is still published — the driver calls it
    from the ``finally`` of the run generator, and the start-of-run
    sweep covers the paths where even that never executes.
    """

    def __init__(
        self,
        workers: int,
        *,
        task_grain: str = "fine",
        trace_dir: str | Path | None = None,
        metrics_dir: str | Path | None = None,
        spool_dir: str | Path | None = None,
        sweep: bool = True,
    ) -> None:
        self.workers = max(1, int(workers))
        self.policy = GRAIN_POLICIES[validate_task_grain(task_grain)]
        self.trace_dir = str(trace_dir) if trace_dir is not None else None
        self.metrics_dir = str(metrics_dir) if metrics_dir is not None else None
        self.spool_dir = str(spool_dir) if spool_dir is not None else None
        for directory in (self.trace_dir, self.metrics_dir, self.spool_dir):
            if directory is not None:
                Path(directory).mkdir(parents=True, exist_ok=True)
        self.swept_segments: list[str] = (
            shm_mod.sweep_stale_segments() if sweep else []
        )
        if self.swept_segments:
            _METRICS().swept.inc(len(self.swept_segments))
        self._segment: shm_mod.StarSegment | None = None
        self._generation = 0
        self._descriptor_seq = 0
        self.shm_bytes_total = 0
        self.inband_payloads = 0
        self._pool = None
        self._pending = None
        self._closed = False
        if self.workers > 1:
            self._pending = multiprocessing.Value("l", 0)
            self._pool = self._create_pool()

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    @property
    def pool(self):
        """The live pool, or ``None`` (workers == 1, or creation failed)."""
        return self._pool

    def _create_pool(self):
        from repro.parallel.executor import _init_worker

        try:
            # Start the shared-memory resource tracker *before* forking:
            # workers must inherit the driver's tracker fd, or each one
            # lazily spawns a private tracker whose register-on-attach is
            # never balanced by the driver's unregister-on-unlink and
            # warns about "leaked" (already unlinked) segments at exit.
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass
        try:
            return multiprocessing.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(self.trace_dir, self.metrics_dir, self._pending),
            )
        except Exception:
            return None

    def rebuild_pool(self) -> bool:
        """Tear down a broken pool and start fresh; True on success."""
        self.stop_pool(terminate=True)
        self.reset_pending()
        self._pool = self._create_pool()
        return self._pool is not None

    def stop_pool(self, terminate: bool = False) -> None:
        """Shut the pool down without ending the engine (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            if terminate:
                pool.terminate()
            else:
                pool.close()
            pool.join()

    # ------------------------------------------------------------------
    # Pending-task counter (the split protocol's "is the queue dry" signal)
    # ------------------------------------------------------------------
    def add_pending(self, count: int) -> None:
        """Record ``count`` chunks newly sitting in the pool queue."""
        if self._pending is not None:
            with self._pending.get_lock():
                self._pending.value += count

    def reset_pending(self, value: int = 0) -> None:
        if self._pending is not None:
            with self._pending.get_lock():
                self._pending.value = value

    # ------------------------------------------------------------------
    # Graph publication
    # ------------------------------------------------------------------
    def publish_star(self, star, kernel: str) -> dict:
        """Publish a step's core graph; returns the task descriptor.

        Zero-copy path: pack ``star.core_compact()`` into a fresh
        segment (retiring the previous step's).  Any failure — no shared
        memory on this host, labels the int64 codec rejects — degrades
        to the pickled in-band payload, identical to the legacy wire
        format, so enumeration never depends on shm availability.
        """
        self.retire_segment()
        self._generation += 1
        self._descriptor_seq += 1
        try:
            segment = shm_mod.export_star(star.core_compact(), self._generation)
        except (ReproError, GraphError, OSError, ValueError):
            self.inband_payloads += 1
            _METRICS().inband.inc()
            return {
                "token": f"inband-{self._descriptor_seq}",
                "kernel": kernel,
                "inband": serialize_star(star, kernel=kernel),
            }
        self._segment = segment
        self.shm_bytes_total += segment.nbytes
        bundle = _METRICS()
        bundle.shm_bytes.inc(segment.nbytes)
        bundle.segments.inc()
        return {
            "token": segment.name,
            "kernel": kernel,
            "shm": {
                "name": segment.name,
                "generation": segment.generation,
                "nbytes": segment.nbytes,
            },
        }

    def retire_segment(self) -> None:
        """Unlink the currently published segment (idempotent)."""
        segment, self._segment = self._segment, None
        if segment is not None:
            segment.unlink()

    @property
    def current_segment(self) -> shm_mod.StarSegment | None:
        return self._segment

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, terminate: bool = False) -> None:
        """Stop the pool, unlink the segment, drop the spool directory."""
        if self._closed:
            return
        self._closed = True
        self.stop_pool(terminate=terminate)
        self.retire_segment()
        if self.spool_dir is not None:
            shutil.rmtree(self.spool_dir, ignore_errors=True)

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close(terminate=exc_info and exc_info[0] is not None)

    def __del__(self) -> None:  # last-ditch cleanup; sweep covers the rest
        try:
            self.close(terminate=True)
        except Exception:
            pass


__all__ = [
    "GRAIN_POLICIES",
    "ChunkPolicy",
    "GrainPolicy",
    "ParallelEngine",
    "SPOOL_THRESHOLD_BYTES",
    "TASK_GRAINS",
    "validate_task_grain",
]
