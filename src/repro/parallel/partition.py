"""Work decomposition for the parallel enumeration engine.

Two fan-out shapes, one per dominant step cost:

* **Tree tasks** split the construction of ``T_H*`` at the root of the
  enumeration search tree, the Par-TTT vertex decomposition of Das,
  Sanei-Mehri & Tirthapura (arXiv:1807.09417) composed with this paper's
  Lemma-2 structure: one subproblem per core vertex (the maximal cliques
  of ``G_H`` whose smallest member is that vertex) plus one subproblem
  per periphery anchor ``w`` (the maximal cliques of
  ``G_H[nb(w) ∩ H]``, each extended by ``w``).  The subproblems
  partition the H*-max-clique set, so workers never need to deduplicate
  against each other.

* **Lift tasks** split Algorithm 2's phase 2 — ``maxCL(G[HNB(C1)])``
  over the distinct ``HNB`` sets — along the disk-partition boundaries
  of Section 4.2.3: tasks are chunked *contiguously* in partition order
  so the sets served by one spill file land in the same chunk and each
  worker loads a file at most once per chunk.

Chunks deliberately outnumber workers (``OVERSUBSCRIPTION``-fold): the
pool schedules them dynamically, which absorbs the wildly skewed
per-vertex subtree costs without giving up the deterministic merge —
every task carries its global ``index``, and the merger orders by it.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.hstar import StarGraph

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.partitions import HnbPartitionStore

Clique = frozenset

#: Chunks handed to the pool per worker; >1 enables dynamic load
#: balancing over skewed subproblem costs.
OVERSUBSCRIPTION = 4


@dataclass(frozen=True)
class TreeTask:
    """One root-split subproblem of the H*-max-clique enumeration.

    ``kind == "core"``: enumerate the maximal cliques of ``G_H`` whose
    smallest member is ``vertex`` (``anchors`` is empty).
    ``kind == "anchor"``: enumerate the maximal cliques of the core
    subgraph induced by ``anchors``; each extends with the periphery
    vertex ``vertex`` to an H*-max-clique.
    """

    index: int
    kind: str
    vertex: int
    anchors: tuple[int, ...] = ()


@dataclass(frozen=True)
class LiftTask:
    """One ``HNB`` set to resolve against the periphery adjacency."""

    index: int
    shared: tuple[int, ...]
    partition_indices: tuple[int, ...]


@dataclass(frozen=True)
class LiftChunk:
    """A batch of lift tasks plus the spill files they need.

    ``paths`` maps partition index to the file's location so a worker can
    open exactly the partitions its tasks touch, read-only, without ever
    seeing the driver's store handles.
    """

    tasks: tuple[LiftTask, ...]
    paths: dict[int, str]


def tree_tasks(star: StarGraph) -> list[TreeTask]:
    """The full tree-construction task list, in deterministic order."""
    tasks: list[TreeTask] = []
    for v in sorted(star.core):
        tasks.append(TreeTask(index=len(tasks), kind="core", vertex=v))
    anchors_of: dict[int, set[int]] = {}
    for v in star.core:
        for w in star.periphery_neighbors(v):
            anchors_of.setdefault(w, set()).add(v)
    for w in sorted(anchors_of):
        tasks.append(
            TreeTask(
                index=len(tasks),
                kind="anchor",
                vertex=w,
                anchors=tuple(sorted(anchors_of[w])),
            )
        )
    return tasks


def chunk_tree_tasks(
    tasks: list[TreeTask],
    workers: int,
    oversubscription: int = OVERSUBSCRIPTION,
) -> list[tuple[TreeTask, ...]]:
    """Stripe tree tasks round-robin into ``oversubscription * workers``
    chunks.

    Striping (rather than contiguous slicing) spreads the expensive
    low-id core subproblems — whose subtrees are largest because they own
    every clique their vertex minimizes — across chunks.
    ``oversubscription`` comes from the engine's
    :class:`~repro.parallel.scheduler.GrainPolicy`: the fine grain cuts
    more, smaller chunks so the work-stealing scheduler has something to
    steal.
    """
    if not tasks:
        return []
    num_chunks = min(len(tasks), max(1, oversubscription) * max(1, workers))
    chunks: list[list[TreeTask]] = [[] for _ in range(num_chunks)]
    for position, task in enumerate(tasks):
        chunks[position % num_chunks].append(task)
    return [tuple(chunk) for chunk in chunks if chunk]


def lift_tasks(
    ordered_shared: list[Clique],
    store: "HnbPartitionStore",
) -> list[LiftTask]:
    """Pair each distinct ``HNB`` set with the partitions covering it.

    ``ordered_shared`` must already be in the deterministic resolution
    order of :func:`repro.core.categories.ordered_distinct_hnb` (grouped
    by partition); task index == resolution position.
    """
    return [
        LiftTask(
            index=index,
            shared=tuple(sorted(shared)),
            partition_indices=tuple(sorted(store.partitions_for(shared))),
        )
        for index, shared in enumerate(ordered_shared)
    ]


def chunk_lift_tasks(
    tasks: list[LiftTask],
    store: "HnbPartitionStore",
    workers: int,
    oversubscription: int = OVERSUBSCRIPTION,
) -> list[LiftChunk]:
    """Slice lift tasks contiguously into balanced chunks.

    Contiguous slicing preserves the partition-grouped input order, so a
    chunk's tasks cluster on few spill files; balance is by estimated
    cost (the size of each induced vertex set).
    """
    if not tasks:
        return []
    paths = [str(path) for path in store.partition_paths()]
    num_chunks = min(len(tasks), max(1, oversubscription) * max(1, workers))
    total_cost = sum(1 + len(task.shared) for task in tasks)
    target = max(1, total_cost // num_chunks)
    chunks: list[LiftChunk] = []
    current: list[LiftTask] = []
    current_cost = 0
    for task in tasks:
        current.append(task)
        current_cost += 1 + len(task.shared)
        if current_cost >= target and len(chunks) < num_chunks - 1:
            chunks.append(_seal_lift_chunk(current, paths))
            current = []
            current_cost = 0
    if current:
        chunks.append(_seal_lift_chunk(current, paths))
    return chunks


def _packed(values, top: int) -> array:
    """``values`` as the narrowest unsigned array that can hold ``top``.

    Pickled arrays ship their raw buffer, so width is wire size: CSR
    indices are compact ids below ``n`` and usually fit one or two bytes
    each, where pickled Python ints cost two to five.
    """
    for code, limit in (("B", 0xFF), ("H", 0xFFFF), ("I", 0xFFFFFFFF)):
        if top <= limit:
            return array(code, values)
    return array("q", values)


def _seal_lift_chunk(tasks: list[LiftTask], paths: list[str]) -> LiftChunk:
    needed = sorted({index for task in tasks for index in task.partition_indices})
    return LiftChunk(
        tasks=tuple(tasks), paths={index: paths[index] for index in needed}
    )


def serialize_star(star: StarGraph, kernel: str = "bitset") -> dict:
    """A picklable snapshot of the parts of a star graph workers need.

    This is the *in-band fallback* wire format: the primary path
    publishes the core CSR through a shared-memory segment
    (:meth:`~repro.parallel.scheduler.ParallelEngine.publish_star`) and
    ships only a descriptor.  The pickled payload remains for hosts
    without usable shared memory and for labels the int64 codec rejects.

    Only the *core* adjacency travels: core tasks run inside ``G_H`` and
    anchor tasks inside induced subgraphs of it.  Periphery neighbor
    lists — the bulk of ``G_H*`` — stay in the driver, which keeps the
    per-worker footprint at ``O(|G_H|) = O(h²)`` instead of
    ``O(|G_H*|)``.

    With ``kernel="bitset"`` the payload is the compact CSR form —
    three flat arrays that pickle far smaller than a dict of per-vertex
    neighbor tuples (``benchmarks/test_kernel_speedup.py`` records the
    ratio) and rehydrate via :meth:`CompactGraph.from_csr` without any
    re-sorting.  The legacy dict-of-tuples payload remains for
    ``kernel="set"`` workers.
    """
    from repro.kernel import validate_kernel

    if validate_kernel(kernel) == "bitset":
        compact = star.core_compact()
        labels = compact.labels
        packed_labels: "tuple | array" = labels
        if labels and all(isinstance(v, int) and 0 <= v for v in labels):
            packed_labels = _packed(labels, labels[-1])
        return {
            "kernel": "bitset",
            "labels": packed_labels,
            "indptr": _packed(compact.indptr, len(compact.indices)),
            "indices": _packed(compact.indices, max(compact.num_vertices - 1, 0)),
        }
    return {
        "kernel": "set",
        "core": tuple(sorted(star.core)),
        "core_adjacency": {
            v: tuple(sorted(star.core_neighbors(v))) for v in sorted(star.core)
        },
    }


__all__ = [
    "LiftChunk",
    "LiftTask",
    "OVERSUBSCRIPTION",
    "TreeTask",
    "chunk_lift_tasks",
    "chunk_tree_tasks",
    "lift_tasks",
    "serialize_star",
    "tree_tasks",
]
