"""``ParallelExtMCE``: the shared-memory parallel ExtMCE driver.

A drop-in :class:`~repro.core.extmce.ExtMCE` subclass that parallelizes
the two dominant costs of every recursion step while leaving the paper's
external-memory skeleton — and its correctness argument — untouched:

* **Clique-tree construction** (Algorithm 3, Line 6): the H*-max-clique
  enumeration is split into per-vertex root subproblems (see
  :mod:`repro.parallel.partition`) and fanned out; the driver merges the
  results deterministically and assembles ``T_H*`` in-process, charged
  to the one authoritative memory model.

* **The M1/M2/M3 lifting** (Algorithm 2, phase 2): the distinct ``HNB``
  sets are resolved by workers that read the Section-4.2.3 spill files
  directly; pages they read are folded back into the driver's I/O
  counters.

The heavy machinery is run-scoped, not step-scoped: one
:class:`~repro.parallel.scheduler.ParallelEngine` owns the persistent
worker pool and publishes each step's core graph through a shared-memory
segment (:mod:`repro.parallel.shm`), so steps pay only a segment pack
and a handful of descriptor-sized ``apply_async`` calls — not a pool
fork plus a pickled graph per worker.

Everything order-sensitive stays serial in the driver: the global
maximality hashtable (Section 4.3) is consulted and mutated only here,
on a clique stream whose order is reconstructed by the merger to match
the serial driver exactly.  Hence the headline guarantee, asserted by
the test suite: *serial ExtMCE, ``workers=1``, and ``workers=4`` produce
identical results in identical order — at either task grain*.

Worker telemetry: each worker writes its own trace file under the run
workdir; on run completion the per-worker streams are merged
(:func:`repro.telemetry.merge_traces`) into the driver's main trace, so
one JSONL file still tells the whole story.
"""

from __future__ import annotations

import shutil
import time
from collections.abc import Iterator
from pathlib import Path

from repro import metrics
from repro.core.categories import compute_core_plus_max_cliques
from repro.core.clique_tree import assemble_clique_tree
from repro.core.extmce import ExtMCE, ExtMCEConfig
from repro.core.hstar import StarGraph
from repro.parallel.executor import ExecutorStats, StepExecutor
from repro.parallel.merge import merge_lift_results, merge_tree_results
from repro.parallel.partition import (
    chunk_lift_tasks,
    chunk_tree_tasks,
    lift_tasks,
    tree_tasks,
)
from repro.parallel.scheduler import ParallelEngine
from repro.storage.diskgraph import DiskGraph
from repro.storage.partitions import HnbPartitionStore

Clique = frozenset


class ParallelExtMCE(ExtMCE):
    """ExtMCE with a persistent worker pool and per-step shm fan-out.

    Configure the worker count through
    :attr:`~repro.core.extmce.ExtMCEConfig.workers` and the scheduling
    granularity through
    :attr:`~repro.core.extmce.ExtMCEConfig.task_grain`; ``workers=1``
    (the default) runs fully in-process and behaves exactly like the
    serial driver.  All other knobs, the checkpoint/resume protocol,
    sinks and reports are inherited unchanged.

    Examples
    --------
    >>> import tempfile
    >>> from repro.graph import AdjacencyGraph
    >>> from repro.storage import DiskGraph
    >>> g = AdjacencyGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     dg = DiskGraph.create(f"{tmp}/g.bin", g)
    ...     algo = ParallelExtMCE(dg, ExtMCEConfig(workdir=tmp, workers=2))
    ...     sorted(sorted(c) for c in algo.enumerate_cliques())
    [[0, 1, 2], [2, 3]]
    """

    #: Wall-clock ceiling per submitted chunk; a dead or deadlocked
    #: worker trips this, the pool is rebuilt and only the unfinished
    #: chunks are resubmitted — the enumeration never hangs and never
    #: recomputes work that already finished.
    task_timeout_seconds: float | None = 600.0

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._engine: ParallelEngine | None = None
        self._executor: StepExecutor | None = None
        self._worker_trace_dir: Path | None = None
        self._worker_metrics_dir: Path | None = None
        self.fallback_steps = 0
        #: Run-level accumulation of every step executor's recovery
        #: counters (retries, timeouts, rebuilds, inline fallbacks).
        self.executor_stats = ExecutorStats()
        #: Pickled task-descriptor bytes shipped during the most recent
        #: parallel step; the scaling bench reads this per row.  With
        #: the shm path this is metadata, not graphs — the 10×-smaller
        #: successor of the old per-worker pickled payload.
        self.last_payload_bytes = 0
        #: Shared-memory bytes backing the most recent parallel step.
        self.last_shm_bytes = 0
        #: Run totals across all parallel steps.
        self.payload_bytes_total = 0
        self.shm_bytes_total = 0
        self.tasks_split_total = 0
        self.tasks_stolen_total = 0
        self.spooled_chunks_total = 0
        #: Crash-leftover segments removed by the engine's start sweep.
        self.swept_segments: list[str] = []

    @property
    def workers(self) -> int:
        """Effective worker count (always ≥ 1)."""
        return max(1, self._config.workers)

    # ------------------------------------------------------------------
    # Engine lifecycle: one pool + one published segment per run
    # ------------------------------------------------------------------
    def _ensure_engine(self, workdir: Path) -> ParallelEngine:
        if self._engine is None:
            if self._trace is not None:
                self._worker_trace_dir = workdir / "worker_traces"
            if metrics.enabled():
                self._worker_metrics_dir = workdir / "worker_metrics"
            self._engine = ParallelEngine(
                self.workers,
                task_grain=getattr(self._config, "task_grain", "fine"),
                trace_dir=self._worker_trace_dir,
                metrics_dir=self._worker_metrics_dir,
                spool_dir=workdir / "worker_spool",
            )
            self.swept_segments = self._engine.swept_segments
        return self._engine

    def _process_step(self, step, star, current, workdir, hashtable, step_start):
        if self.workers <= 1:
            yield from super()._process_step(
                step, star, current, workdir, hashtable, step_start
            )
            return
        engine = self._ensure_engine(workdir)
        pool_started = time.perf_counter()
        descriptor = engine.publish_star(star, self._config.kernel)
        with StepExecutor(
            engine,
            descriptor,
            task_timeout=self.task_timeout_seconds,
            max_retries=self._config.max_retries,
            fault_plan=self._config.fault_plan,
            on_event=self._trace.emit if self._trace is not None else None,
        ) as executor:
            self._executor = executor
            try:
                yield from super()._process_step(
                    step, star, current, workdir, hashtable, step_start
                )
            finally:
                self._executor = None
                self.executor_stats.merge(executor.stats)
                self.last_payload_bytes = executor.payload_bytes
                self.last_shm_bytes = executor.shm_bytes
                self.payload_bytes_total += executor.payload_bytes
                self.shm_bytes_total += executor.shm_bytes
                self.tasks_split_total += executor.tasks_split
                self.tasks_stolen_total += executor.tasks_stolen
                self.spooled_chunks_total += executor.spooled_chunks
                if executor.fell_back:
                    self.fallback_steps += 1
                engine.retire_segment()
                if self._trace is not None:
                    self._trace.emit(
                        "parallel_step_completed",
                        step=step,
                        workers=self.workers,
                        kernel=self._config.kernel,
                        task_grain=engine.policy.name,
                        payload_bytes=self.last_payload_bytes,
                        shm_bytes=self.last_shm_bytes,
                        tasks_split=executor.tasks_split,
                        tasks_stolen=executor.tasks_stolen,
                        spooled_chunks=executor.spooled_chunks,
                        fell_back=executor.fell_back,
                        pool_elapsed=round(time.perf_counter() - pool_started, 6),
                        **executor.stats.to_dict(),
                    )

    def _drive(
        self, workdir: Path, source: DiskGraph | None = None
    ) -> Iterator[Clique]:
        # Shut the engine down and merge worker traces and metrics inside
        # _drive's lifetime: the base class closes the main trace, writes
        # the metrics snapshot, and may delete the workdir right after
        # this generator finishes, so all three must happen first.  The
        # engine close also unlinks whatever segment is still published —
        # the orderly half of the no-leaked-segments contract (the
        # start-of-run sweep covers SIGKILL).
        try:
            yield from super()._drive(workdir, source=source)
        finally:
            if self._engine is not None:
                self._engine.close()
                self._engine = None
            self._merge_worker_traces()
            self._merge_worker_metrics()

    # ------------------------------------------------------------------
    # Hook overrides
    # ------------------------------------------------------------------
    def _build_step_tree(self, step: int, star: StarGraph):
        if self._executor is None or (step == 1 and self._first_step is not None):
            return super()._build_step_tree(step, star)
        tasks = tree_tasks(star)
        chunks = chunk_tree_tasks(
            tasks, self.workers,
            oversubscription=self._executor.engine.policy.oversubscription,
        )
        results = self._executor.map_tree(chunks)
        star_cliques, core_maximal = merge_tree_results(tasks, results, star)
        tree = assemble_clique_tree(
            star, star_cliques, core_maximal, memory=self._memory
        )
        return tree, core_maximal

    def _compute_categories(self, star: StarGraph, core_maximal, store):
        if self._executor is None or not isinstance(store, HnbPartitionStore):
            return super()._compute_categories(star, core_maximal, store)
        return compute_core_plus_max_cliques(
            star,
            core_maximal,
            store,
            resolver=self._resolve_parallel,
            kernel=self._config.kernel,
        )

    def _resolve_parallel(self, ordered, store):
        """Phase-2 resolver: fan the spill partitions out to the pool."""
        assert self._executor is not None
        tasks = lift_tasks(ordered, store)
        chunks = chunk_lift_tasks(
            tasks, store, self.workers,
            oversubscription=self._executor.engine.policy.oversubscription,
        )
        results = self._executor.map_lift(chunks)
        max_cliques_of, pages_read = merge_lift_results(tasks, results)
        io = store.io_stats
        if io is not None and pages_read:
            io.record_read(pages_read)
        return max_cliques_of

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _merge_worker_traces(self) -> None:
        directory = self._worker_trace_dir
        self._worker_trace_dir = None
        if directory is None or not directory.exists():
            return
        if self._trace is not None and not self._trace.closed:
            from repro.telemetry import merge_traces

            self._trace.absorb(merge_traces(sorted(directory.glob("*.jsonl"))))
        shutil.rmtree(directory, ignore_errors=True)

    def _merge_worker_metrics(self) -> None:
        """Fold every worker's last snapshot into the driver's registry.

        The metrics analogue of :meth:`_merge_worker_traces`: snapshot
        files are absorbed in sorted-path order (absorption is commutative
        — counters and histograms sum, gauges max — so the order only
        matters for error attribution).  Unreadable files are skipped the
        way the trace merger skips missing ones: a worker that died before
        its first flush must not take the run's metrics down with it.
        """
        directory = self._worker_metrics_dir
        self._worker_metrics_dir = None
        if directory is None or not directory.exists():
            return
        if metrics.enabled():
            registry = metrics.get_registry()
            for path in sorted(directory.glob("worker_*.json")):
                try:
                    registry.absorb(metrics.load_snapshot(path))
                except (OSError, ValueError):
                    continue
        shutil.rmtree(directory, ignore_errors=True)


__all__ = ["ParallelExtMCE"]
