"""The worker pool: process management, serialization, per-chunk recovery.

One :class:`StepExecutor` lives for one recursion step (the worker-side
state is the step's core graph, which changes every step).  It owns a
``multiprocessing`` pool when ``workers > 1`` and recovers from failures
at *chunk* granularity — the unit of loss is one chunk, never the step:

* a chunk that errors (worker raised, payload unpicklable) is retried up
  to ``max_retries`` times on the pool, then recomputed inline;
* a chunk that times out marks the pool broken — ``multiprocessing.Pool``
  never reports an abruptly dead worker, so the per-chunk
  ``apply_async(...).get(timeout)`` *is* the death detector — the pool is
  torn down and rebuilt (bounded), and only the unfinished chunks are
  resubmitted;
* when the pool cannot be (re)created at all, the executor degrades to
  in-process execution for everything still pending (``fell_back``).

Tasks are pure functions of (payload, task), so recomputation is safe and
every recovery path yields results identical by construction; retries,
rebuilds and inline fallbacks are counted in :class:`ExecutorStats` and
surfaced through the ``on_event`` hook into the run's trace.

An optional :class:`~repro.faults.FaultPlan` injects executor faults at
submission time (operation ``"chunk"``): the driver wraps the submitted
task with a directive the worker executes on arrival — kill yourself,
raise, stall — so worker processes never need the plan object itself.
Inline recomputation always runs the *raw* chunk: injection exercises the
pool path, and degradation must converge to the correct answer.

Workers never share file handles with the driver: each worker process
opens its own spill files (read-only) and its own trace file (append
mode, flushed per event), which is what keeps parallel telemetry and
partition I/O crash-safe.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from types import SimpleNamespace
from typing import TYPE_CHECKING, Callable

from repro import metrics
from repro.baselines.bron_kerbosch import tomita_maximal_cliques, tomita_subproblem
from repro.errors import InjectedFaultError
from repro.graph.adjacency import AdjacencyGraph
from repro.storage.pagestore import PAGE_SIZE_BYTES
from repro.storage.partitions import read_partition_file

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults import FaultPlan
    from repro.parallel.partition import LiftChunk, TreeTask

Clique = frozenset

#: Grace period for salvaging completed chunks off a pool already declared
#: broken (their workers may have finished before the breakage).
_SALVAGE_TIMEOUT_SECONDS = 0.05

#: Executor metrics.  Chunk counts and latencies are observed in whatever
#: process runs the chunk (worker registries are merged back into the
#: driver's); the recovery counters mirror :class:`ExecutorStats` and are
#: always driver-side.
_METRICS = metrics.bound(
    lambda registry: SimpleNamespace(
        chunks={
            phase: registry.counter(
                "repro_parallel_chunks_total",
                "task chunks executed (including retries and inline reruns)",
                labels={"phase": phase},
            )
            for phase in ("tree", "lift")
        },
        latency={
            phase: registry.histogram(
                "repro_parallel_chunk_seconds",
                "per-chunk wall time",
                labels={"phase": phase},
                buckets=metrics.TIME_BUCKETS,
            )
            for phase in ("tree", "lift")
        },
        retries=registry.counter(
            "repro_parallel_chunk_retries_total", "chunk resubmissions"
        ),
        timeouts=registry.counter(
            "repro_parallel_chunk_timeouts_total", "chunk deadline expiries"
        ),
        errors=registry.counter(
            "repro_parallel_chunk_errors_total", "chunk attempts that raised"
        ),
        rebuilds=registry.counter(
            "repro_parallel_pool_rebuilds_total", "worker-pool teardown/recreate cycles"
        ),
        inline=registry.counter(
            "repro_parallel_inline_chunks_total",
            "chunks recomputed in-process after exhausting retries",
        ),
        payload_bytes=registry.counter(
            "repro_parallel_payload_bytes_total",
            "pickled per-worker payload bytes shipped to pools",
        ),
    )
)


class WorkerContext:
    """Per-process state installed by the pool initializer.

    Holds the reconstructed core graph and (lazily) this worker's private
    :class:`~repro.telemetry.TraceWriter`.  The trace file is per-PID, so
    append-mode handles are never shared across processes; every event is
    flushed on emit, so a crashing worker still leaves a readable trace.

    Two payload formats (see
    :func:`repro.parallel.partition.serialize_star`): the ``"bitset"``
    payload carries compact CSR arrays and rehydrates a
    :class:`~repro.kernel.CompactGraph` without re-sorting anything; the
    ``"set"`` payload carries the legacy dict-of-tuples adjacency and
    rebuilds an :class:`AdjacencyGraph`.
    """

    def __init__(
        self,
        payload: dict,
        trace_dir: str | None,
        metrics_dir: str | None = None,
    ) -> None:
        self.kernel = payload.get("kernel", "set")
        if self.kernel == "bitset":
            from repro.kernel import CompactGraph

            self.core_compact = CompactGraph.from_csr(
                payload["labels"], payload["indptr"], payload["indices"]
            )
            self.core_graph = None
        else:
            self.core_compact = None
            self.core_graph = AdjacencyGraph.from_adjacency(
                {v: neighbors for v, neighbors in payload["core_adjacency"].items()}
            )
        self._trace_dir = trace_dir
        self._trace = None
        self._metrics_dir = metrics_dir

    def emit(self, event: str, **fields: object) -> None:
        if self._trace_dir is None:
            return
        if self._trace is None:
            from repro.telemetry import TraceWriter

            # Append, never truncate: trace files from earlier steps share
            # this directory until the end-of-run merge, and a recycled PID
            # must extend — not erase — its predecessor's file.
            self._trace = TraceWriter(
                Path(self._trace_dir) / f"worker_{os.getpid():08d}.jsonl",
                mode="append",
            )
        self._trace.emit(event, **fields)

    def flush_metrics(self) -> None:
        """Dump this process's registry snapshot for the driver to absorb.

        Atomic (write-temp-then-rename) and keyed by PID, so a crash
        mid-chunk leaves the previous complete snapshot behind and the
        driver's merge never reads a torn file.  No-op when the executor
        was built without a metrics directory (metrics disabled, or the
        in-driver inline context, whose observations land directly in the
        driver's registry).
        """
        if self._metrics_dir is None or not metrics.enabled():
            return
        metrics.dump_snapshot(
            metrics.get_registry().snapshot(),
            Path(self._metrics_dir) / f"worker_{os.getpid():08d}.json",
        )


_CONTEXT: WorkerContext | None = None


def _init_worker(
    payload: dict, trace_dir: str | None, metrics_dir: str | None = None
) -> None:
    global _CONTEXT
    if metrics_dir is not None:
        # Fresh registry per worker process: a forked child inherits the
        # driver's live registry, and dumping *that* would hand the
        # driver its own counts back on merge.  A recycled PID continues
        # its predecessor's totals (snapshot files are keyed by PID and
        # overwritten per flush, so starting from zero would lose them).
        registry = metrics.MetricsRegistry()
        previous = Path(metrics_dir) / f"worker_{os.getpid():08d}.json"
        if previous.exists():
            registry.absorb(metrics.load_snapshot(previous))
        metrics.set_registry(registry)
    else:
        metrics.disable()
    _CONTEXT = WorkerContext(payload, trace_dir, metrics_dir)


def _run_tree_chunk(
    chunk: "tuple[TreeTask, ...]",
) -> list[tuple[int, tuple[tuple[int, ...], ...]]]:
    """Solve one chunk of tree subproblems; results keyed by task index.

    Clique vertex tuples are sorted, but the *list* order within a task
    preserves the pivoted enumeration order — the merger relies on task
    indices alone for determinism.
    """
    assert _CONTEXT is not None, "worker used before initialization"
    results: list[tuple[int, tuple[tuple[int, ...], ...]]] = []
    bundle = _METRICS()
    started = time.perf_counter()
    try:
        if _CONTEXT.kernel == "bitset":
            from repro.kernel import maximal_cliques_bitset, subproblem_bitset

            compact = _CONTEXT.core_compact
            for task in chunk:
                if task.kind == "core":
                    found = tuple(
                        tuple(sorted(clique))
                        for clique in subproblem_bitset(compact, task.vertex)
                    )
                else:
                    subset = compact.subset_mask(task.anchors)
                    found = tuple(
                        tuple(sorted(clique))
                        for clique in maximal_cliques_bitset(compact, subset)
                    )
                results.append((task.index, found))
        else:
            graph = _CONTEXT.core_graph
            for task in chunk:
                if task.kind == "core":
                    found = tuple(
                        tuple(sorted(clique))
                        for clique in tomita_subproblem(graph, task.vertex)
                    )
                else:
                    induced = graph.induced_subgraph(task.anchors)
                    found = tuple(
                        tuple(sorted(clique))
                        for clique in tomita_maximal_cliques(induced)
                    )
                results.append((task.index, found))
        bundle.chunks["tree"].inc()
        bundle.latency["tree"].observe(time.perf_counter() - started)
        _CONTEXT.emit(
            "tree_chunk_completed",
            tasks=len(chunk),
            cliques=sum(len(found) for _, found in results),
        )
        _CONTEXT.flush_metrics()
    except Exception as error:
        _CONTEXT.emit("tree_chunk_failed", tasks=len(chunk), error=repr(error))
        raise
    return results


def _run_lift_chunk(
    chunk: "LiftChunk",
) -> tuple[list[tuple[int, tuple[tuple[int, ...], ...]]], int]:
    """Resolve one chunk of ``HNB`` sets against the spill files.

    Returns the per-task ``maxCL`` lists plus the pages this worker read,
    so the driver can fold worker I/O back into its metered totals.
    """
    assert _CONTEXT is not None, "worker used before initialization"
    loaded: dict[int, dict[int, frozenset[int]]] = {}
    pages_read = 0
    results: list[tuple[int, tuple[tuple[int, ...], ...]]] = []
    bundle = _METRICS()
    started = time.perf_counter()
    try:
        for task in chunk.tasks:
            adjacency: dict[int, frozenset[int]] = {}
            for pindex in task.partition_indices:
                if pindex not in loaded:
                    path = chunk.paths[pindex]
                    loaded[pindex] = read_partition_file(path)
                    size = os.path.getsize(path)
                    pages_read += (size + PAGE_SIZE_BYTES - 1) // PAGE_SIZE_BYTES
                adjacency.update(loaded[pindex])
            wanted = set(task.shared)
            induced = AdjacencyGraph()
            for v in task.shared:
                induced.add_vertex(v)
            for v in task.shared:
                for u in adjacency.get(v, frozenset()) & wanted:
                    induced.add_edge(v, u)
            results.append(
                (
                    task.index,
                    tuple(
                        tuple(sorted(clique))
                        for clique in tomita_maximal_cliques(
                            induced, kernel=_CONTEXT.kernel
                        )
                    ),
                )
            )
        bundle.chunks["lift"].inc()
        bundle.latency["lift"].observe(time.perf_counter() - started)
        _CONTEXT.emit(
            "lift_chunk_completed",
            tasks=len(chunk.tasks),
            partitions_loaded=len(loaded),
            pages_read=pages_read,
        )
        _CONTEXT.flush_metrics()
    except Exception as error:
        _CONTEXT.emit("lift_chunk_failed", tasks=len(chunk.tasks), error=repr(error))
        raise
    return results, pages_read


class _Poison:
    """A wrapper whose pickling always fails — the ``poison`` fault."""

    def __init__(self, chunk: object) -> None:
        self.chunk = chunk

    def __reduce__(self):
        raise TypeError("injected unpicklable payload")


def _dispatch_chunk(task):
    """Worker-side entry point: obey the fault directive, then run.

    ``task`` is ``(directive, phase, chunk)``.  The directive is attached
    driver-side by :meth:`StepExecutor._submit` so workers never hold a
    :class:`~repro.faults.FaultPlan`; ``None`` means run normally.
    """
    directive, phase, chunk = task
    if directive is not None:
        kind = directive[0]
        if kind == "worker_kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == "worker_error":
            raise InjectedFaultError("injected worker error")
        elif kind == "sleep":
            time.sleep(directive[1])
    if phase == "tree":
        return _run_tree_chunk(chunk)
    return _run_lift_chunk(chunk)


@dataclass
class ExecutorStats:
    """Recovery counters for one executor (or, merged, one run).

    ``chunk_retries`` counts resubmissions after a failed attempt;
    ``chunk_timeouts`` / ``chunk_errors`` classify the failures;
    ``pool_rebuilds`` counts pool teardown-and-recreate cycles;
    ``inline_chunks`` counts chunks that exhausted their retries and were
    recomputed in-process.
    """

    chunk_retries: int = 0
    chunk_timeouts: int = 0
    chunk_errors: int = 0
    pool_rebuilds: int = 0
    inline_chunks: int = 0

    def merge(self, other: "ExecutorStats") -> None:
        """Accumulate another executor's counters into this one."""
        self.chunk_retries += other.chunk_retries
        self.chunk_timeouts += other.chunk_timeouts
        self.chunk_errors += other.chunk_errors
        self.pool_rebuilds += other.pool_rebuilds
        self.inline_chunks += other.inline_chunks

    def to_dict(self) -> dict[str, int]:
        """Plain-dict view for telemetry events."""
        return {
            "chunk_retries": self.chunk_retries,
            "chunk_timeouts": self.chunk_timeouts,
            "chunk_errors": self.chunk_errors,
            "pool_rebuilds": self.pool_rebuilds,
            "inline_chunks": self.inline_chunks,
        }

    @property
    def any_recovery(self) -> bool:
        """Whether any fault-recovery machinery engaged."""
        return any(self.to_dict().values())


class StepExecutor:
    """Run task chunks for one recursion step, in parallel if possible.

    ``map_tree`` / ``map_lift`` return chunk results in submission order
    regardless of completion order, so callers downstream see a
    worker-count-independent stream — retries, pool rebuilds and inline
    fallbacks never reorder or change results, only delay them.
    """

    def __init__(
        self,
        workers: int,
        payload: dict,
        trace_dir: str | Path | None = None,
        task_timeout: float | None = None,
        max_retries: int = 2,
        fault_plan: "FaultPlan | None" = None,
        on_event: Callable[..., None] | None = None,
        metrics_dir: str | Path | None = None,
    ) -> None:
        self._workers = max(1, int(workers))
        self._payload = payload
        self._trace_dir = str(trace_dir) if trace_dir is not None else None
        self._metrics_dir = str(metrics_dir) if metrics_dir is not None else None
        self._task_timeout = task_timeout
        self._max_retries = max(0, int(max_retries))
        self._faults = fault_plan
        self._on_event = on_event
        self._pool = None
        self._inline_context: WorkerContext | None = None
        # Lifetime cap on rebuilds: enough to outlast max_retries worth of
        # worker deaths, but bounded so a persistently hostile environment
        # degrades to inline execution instead of thrashing.
        self._max_rebuilds = max(3, self._max_retries + 1)
        self._rebuilds_used = 0
        self.stats = ExecutorStats()
        self.fell_back = False
        if self._workers > 1:
            try:
                self._pool = multiprocessing.Pool(
                    processes=self._workers,
                    initializer=_init_worker,
                    initargs=(self._payload, self._trace_dir, self._metrics_dir),
                )
            except Exception:
                self._pool = None
                self.fell_back = True

    @property
    def payload_bytes(self) -> int:
        """Pickled size of the per-worker payload — what each pool
        process receives at initialization.  The benchmarks record this
        for the CSR-vs-dict payload comparison."""
        import pickle

        return len(pickle.dumps(self._payload))

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map_tree(self, chunks):
        """Run tree chunks; one result list per chunk, submission order."""
        return self._map("tree", chunks)

    def map_lift(self, chunks):
        """Run lift chunks; one ``(results, pages)`` pair per chunk."""
        return self._map("lift", chunks)

    def _map(self, phase, chunks):
        """Run every chunk to completion, whatever the pool does.

        Round structure: submit all unfinished chunks, collect their
        results in submission order, classify failures (retry, timeout →
        pool rebuild, retries exhausted → inline), repeat until done.
        The loop terminates because every failure either charges an
        attempt against a chunk (bounded by ``max_retries`` before the
        chunk goes inline) or consumes a pool rebuild (bounded by the
        lifetime cap before the executor degrades to inline entirely).
        """
        chunks = list(chunks)
        if not chunks:
            return []
        results: list = [None] * len(chunks)
        done = [False] * len(chunks)
        attempts = [0] * len(chunks)
        while not all(done):
            if self._pool is None:
                for index, chunk in enumerate(chunks):
                    if not done[index]:
                        results[index] = self._run_chunk_inline(phase, chunk)
                        done[index] = True
                break
            handles = []
            submit_failed = False
            for index, chunk in enumerate(chunks):
                if done[index]:
                    continue
                handle = self._submit(phase, chunk)
                if handle is None:
                    submit_failed = True
                    break
                handles.append((index, handle))
            broken = self._collect(phase, handles, chunks, results, done, attempts)
            if submit_failed or broken:
                self._rebuild_pool()
        return results

    def _submit(self, phase, chunk):
        """Submit one chunk; returns ``None`` when the pool is unusable.

        The fault plan is consulted here (operation ``"chunk"``), once per
        submission — so a transient rule fires on the first attempt and
        lets the retry through.
        """
        directive = None
        payload_chunk = chunk
        if self._faults is not None:
            fault = self._faults.draw("chunk")
            if fault is not None:
                if fault.kind == "worker_kill":
                    directive = ("worker_kill",)
                elif fault.kind == "worker_error":
                    directive = ("worker_error",)
                elif fault.kind == "poison":
                    payload_chunk = _Poison(chunk)
                elif fault.kind in ("timeout", "latency"):
                    stall = fault.latency_seconds
                    if fault.kind == "timeout" and self._task_timeout is not None:
                        # Guarantee the stall outlasts the chunk deadline.
                        stall = max(stall, self._task_timeout * 4)
                    directive = ("sleep", stall)
        try:
            return self._pool.apply_async(
                _dispatch_chunk, ((directive, phase, payload_chunk),)
            )
        except Exception:
            return None

    def _collect(self, phase, handles, chunks, results, done, attempts):
        """Harvest submitted chunks; returns True if the pool is broken.

        A timeout is the only way to learn a worker died mid-task
        (``multiprocessing.Pool`` never surfaces abrupt worker death), so
        it breaks the pool.  Chunks behind the breakage get one short
        salvage window — their workers may have finished — and otherwise
        go back to pending *without* being charged an attempt: they were
        collateral, not the fault.
        """
        broken = False
        for index, handle in handles:
            try:
                results[index] = handle.get(
                    _SALVAGE_TIMEOUT_SECONDS if broken else self._task_timeout
                )
                done[index] = True
            except multiprocessing.TimeoutError:
                if broken:
                    continue
                broken = True
                self.stats.chunk_timeouts += 1
                _METRICS().timeouts.inc()
                self._emit("chunk_timeout", phase=phase, chunk_index=index)
                self._fail(phase, index, chunks, results, done, attempts)
            except Exception as error:
                self.stats.chunk_errors += 1
                _METRICS().errors.inc()
                self._emit(
                    "chunk_error", phase=phase, chunk_index=index, error=repr(error)
                )
                self._fail(phase, index, chunks, results, done, attempts)
        return broken

    def _fail(self, phase, index, chunks, results, done, attempts):
        """Charge a failed attempt; retry on the pool or degrade inline."""
        attempts[index] += 1
        if attempts[index] > self._max_retries:
            self.stats.inline_chunks += 1
            _METRICS().inline.inc()
            self._emit(
                "chunk_inline_fallback",
                phase=phase,
                chunk_index=index,
                attempts=attempts[index],
            )
            results[index] = self._run_chunk_inline(phase, chunks[index])
            done[index] = True
        else:
            self.stats.chunk_retries += 1
            _METRICS().retries.inc()
            self._emit(
                "chunk_retry", phase=phase, chunk_index=index, attempt=attempts[index]
            )

    def _rebuild_pool(self) -> None:
        """Tear down the broken pool and build a fresh one (bounded)."""
        self._terminate()
        if self._rebuilds_used >= self._max_rebuilds:
            self.fell_back = True
            self._emit("executor_degraded", reason="pool rebuild limit reached")
            return
        self._rebuilds_used += 1
        try:
            self._pool = multiprocessing.Pool(
                processes=self._workers,
                initializer=_init_worker,
                initargs=(self._payload, self._trace_dir, self._metrics_dir),
            )
            self.stats.pool_rebuilds += 1
            _METRICS().rebuilds.inc()
            self._emit("pool_rebuild", rebuilds=self._rebuilds_used)
        except Exception:
            self._pool = None
            self.fell_back = True
            self._emit("executor_degraded", reason="pool recreation failed")

    def _run_chunk_inline(self, phase, chunk):
        """Recompute one raw chunk in-process (no fault directives)."""
        global _CONTEXT
        if self._inline_context is None:
            self._inline_context = WorkerContext(self._payload, self._trace_dir)
        previous = _CONTEXT
        _CONTEXT = self._inline_context
        try:
            if phase == "tree":
                return _run_tree_chunk(chunk)
            return _run_lift_chunk(chunk)
        finally:
            _CONTEXT = previous

    def _emit(self, event: str, **fields: object) -> None:
        if self._on_event is not None:
            self._on_event(event, **fields)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down (idempotent); workers exit and the OS
        closes their trace handles — every event was already flushed."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def _terminate(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "StepExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if exc_info and exc_info[0] is not None:
            self._terminate()
        else:
            self.close()


__all__ = ["ExecutorStats", "StepExecutor", "WorkerContext"]
