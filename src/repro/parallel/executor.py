"""Step execution on the persistent pool: descriptors, stealing, recovery.

One :class:`StepExecutor` lives for one recursion step, but the pool it
uses belongs to the run-scoped
:class:`~repro.parallel.scheduler.ParallelEngine` — workers stay warm
across steps and receive the step's graph as a tiny *descriptor* (a
shared-memory segment name + generation, or a pickled in-band payload
when shm is unavailable) that they resolve through a per-process
attachment cache.

Scheduling is driver-mediated work stealing.  Chunks are submitted
eagerly and harvested as they complete (not in submission order — the
merge orders by task index, so completion order is free).  Under the
``"fine"`` grain each chunk carries a split policy: a worker that has
spent its time slice while the shared pending counter says the queue is
dry stops, returns the finished prefix plus its unfinished tail, and the
driver requeues the tail for whichever worker goes idle next.  Oversized
result payloads are spooled to disk and only the file name travels back
through the pool pipe.

Recovery semantics are unchanged from the per-step-pool era — the unit
of loss is one chunk, never the step:

* a chunk that errors (worker raised, payload unpicklable, shm attach
  failed) is retried up to ``max_retries`` times, then recomputed inline;
* a chunk that times out marks the pool broken — ``multiprocessing.Pool``
  never reports an abruptly dead worker, so the per-chunk deadline *is*
  the death detector — the engine's pool is rebuilt (bounded) and only
  unfinished chunks are resubmitted;
* when the pool cannot be (re)created, the executor degrades to
  in-process execution for everything still pending (``fell_back``).

Tasks are pure functions of (graph, task), so recomputation is safe and
every recovery path yields results identical by construction; retries,
rebuilds and inline fallbacks are counted in :class:`ExecutorStats` and
surfaced through the ``on_event`` hook into the run's trace.

An optional :class:`~repro.faults.FaultPlan` injects faults at
submission time (operations ``"chunk"`` and ``"shm"``): the driver wraps
the submitted task with a directive the worker executes on arrival —
kill yourself, raise, stall, fail the attach, validate a stale
generation — so worker processes never hold the plan itself.  Inline
recomputation always runs the *raw* chunk: injection exercises the pool
path, and degradation must converge to the correct answer.

Workers never share file handles with the driver: each worker process
opens its own spill files (read-only), its own trace file (append mode,
flushed per event), and its own spool files (write-temp-then-rename),
which is what keeps parallel telemetry, partition I/O and result
spooling crash-safe.
"""

from __future__ import annotations

import os
import pickle
import signal
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from types import SimpleNamespace
from typing import TYPE_CHECKING, Callable

from repro import metrics
from repro.baselines.bron_kerbosch import tomita_maximal_cliques, tomita_subproblem
from repro.errors import InjectedFaultError, SharedMemoryError
from repro.graph.adjacency import AdjacencyGraph
from repro.parallel.scheduler import ChunkPolicy, ParallelEngine
from repro.parallel.shm import attach_compact
from repro.storage.pagestore import PAGE_SIZE_BYTES
from repro.storage.partitions import read_partition_file

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults import FaultPlan
    from repro.parallel.partition import LiftChunk, TreeTask

Clique = frozenset

#: Grace period for salvaging completed chunks off a pool already declared
#: broken (their workers may have finished before the breakage).
_SALVAGE_TIMEOUT_SECONDS = 0.05

#: Idle-poll interval of the harvest loop when nothing is ready yet.
_POLL_INTERVAL_SECONDS = 0.002

#: Executor metrics.  Chunk counts, latencies and attach counts are
#: observed in whatever process runs the chunk (worker registries are
#: merged back into the driver's); the recovery and scheduling counters
#: are always driver-side.
_METRICS = metrics.bound(
    lambda registry: SimpleNamespace(
        chunks={
            phase: registry.counter(
                "repro_parallel_chunks_total",
                "task chunks executed (including retries and inline reruns)",
                labels={"phase": phase},
            )
            for phase in ("tree", "lift")
        },
        latency={
            phase: registry.histogram(
                "repro_parallel_chunk_seconds",
                "per-chunk wall time",
                labels={"phase": phase},
                buckets=metrics.TIME_BUCKETS,
            )
            for phase in ("tree", "lift")
        },
        retries=registry.counter(
            "repro_parallel_chunk_retries_total", "chunk resubmissions"
        ),
        timeouts=registry.counter(
            "repro_parallel_chunk_timeouts_total", "chunk deadline expiries"
        ),
        errors=registry.counter(
            "repro_parallel_chunk_errors_total", "chunk attempts that raised"
        ),
        rebuilds=registry.counter(
            "repro_parallel_pool_rebuilds_total", "worker-pool teardown/recreate cycles"
        ),
        inline=registry.counter(
            "repro_parallel_inline_chunks_total",
            "chunks recomputed in-process after exhausting retries",
        ),
        payload_bytes=registry.counter(
            "repro_parallel_payload_bytes_total",
            "pickled task-descriptor bytes shipped through the pool",
        ),
        tasks_split=registry.counter(
            "repro_parallel_tasks_split_total",
            "chunks that returned an unfinished tail to the queue",
        ),
        tasks_stolen=registry.counter(
            "repro_parallel_tasks_stolen_total",
            "tasks requeued from split tails and run by another worker",
        ),
        queue_depth=registry.gauge(
            "repro_parallel_queue_depth",
            "chunks submitted or pending at the last scheduling decision",
        ),
        shm_attach=registry.counter(
            "repro_parallel_shm_attach_total",
            "worker attachments to shared-memory graph segments",
        ),
        spooled=registry.counter(
            "repro_parallel_spooled_chunks_total",
            "chunk results that travelled via the disk spool",
        ),
        spooled_bytes=registry.counter(
            "repro_parallel_spooled_bytes_total",
            "bytes of chunk results spooled to disk",
        ),
    )
)


class _GraphHandle:
    """One resolved graph descriptor living in a worker's cache."""

    __slots__ = ("token", "kernel", "compact", "graph", "shm")

    def __init__(self, token, kernel, compact=None, graph=None, shm=None):
        self.token = token
        self.kernel = kernel
        self.compact = compact
        self.graph = graph
        self.shm = shm

    def release(self) -> None:
        """Drop graph refs, then unmap the segment (order matters: the
        CSR memoryviews pin the buffer until they are collected)."""
        self.compact = None
        self.graph = None
        shm, self.shm = self.shm, None
        if shm is not None:
            try:
                shm.close()
            except BufferError:  # a stray view still pins the buffer
                pass


def _load_graph(descriptor: dict) -> _GraphHandle:
    """Resolve a descriptor into a usable graph (attach or rehydrate)."""
    token = descriptor["token"]
    kernel = descriptor.get("kernel", "set")
    spec = descriptor.get("shm")
    if spec is not None:
        compact, shm = attach_compact(spec["name"], spec["generation"])
        _METRICS().shm_attach.inc()
        if kernel == "set":
            # The set kernel wants dict-of-sets adjacency; copy out of
            # the segment and release it immediately.
            graph = compact.to_adjacency_graph()
            del compact
            try:
                shm.close()
            except BufferError:
                pass
            return _GraphHandle(token, kernel, graph=graph)
        return _GraphHandle(token, kernel, compact=compact, shm=shm)
    payload = descriptor["inband"]
    if kernel == "bitset":
        from repro.kernel import CompactGraph

        compact = CompactGraph.from_csr(
            payload["labels"], payload["indptr"], payload["indices"]
        )
        return _GraphHandle(token, kernel, compact=compact)
    graph = AdjacencyGraph.from_adjacency(
        {v: neighbors for v, neighbors in payload["core_adjacency"].items()}
    )
    return _GraphHandle(token, kernel, graph=graph)


class WorkerContext:
    """Per-process state installed by the pool initializer.

    Holds the descriptor→graph attachment cache (one step's graph at a
    time — a new token evicts the old attachment, unmapping its segment)
    and, lazily, this worker's private
    :class:`~repro.telemetry.TraceWriter`.  The trace file is per-PID, so
    append-mode handles are never shared across processes; every event is
    flushed on emit, so a crashing worker still leaves a readable trace.
    """

    def __init__(
        self,
        trace_dir: str | None,
        metrics_dir: str | None = None,
        pending=None,
    ) -> None:
        self._handles: dict[str, _GraphHandle] = {}
        self._trace_dir = trace_dir
        self._trace = None
        self._metrics_dir = metrics_dir
        self.pending = pending

    def graph_for(self, descriptor: dict) -> _GraphHandle:
        token = descriptor["token"]
        handle = self._handles.get(token)
        if handle is None:
            for stale in self._handles.values():
                stale.release()
            self._handles.clear()
            handle = _load_graph(descriptor)
            self._handles[token] = handle
        return handle

    def release_graphs(self) -> None:
        for handle in self._handles.values():
            handle.release()
        self._handles.clear()

    def queue_is_dry(self) -> bool:
        """Whether no submitted chunk is waiting for a worker."""
        return self.pending is None or self.pending.value <= 0

    def note_started(self) -> None:
        """A chunk left the pool queue and started running here."""
        if self.pending is not None:
            with self.pending.get_lock():
                self.pending.value -= 1

    def emit(self, event: str, **fields: object) -> None:
        if self._trace_dir is None:
            return
        if self._trace is None:
            from repro.telemetry import TraceWriter

            # Append, never truncate: trace files from earlier steps share
            # this directory until the end-of-run merge, and a recycled PID
            # must extend — not erase — its predecessor's file.
            self._trace = TraceWriter(
                Path(self._trace_dir) / f"worker_{os.getpid():08d}.jsonl",
                mode="append",
            )
        self._trace.emit(event, **fields)

    def flush_metrics(self) -> None:
        """Dump this process's registry snapshot for the driver to absorb.

        Atomic (write-temp-then-rename) and keyed by PID, so a crash
        mid-chunk leaves the previous complete snapshot behind and the
        driver's merge never reads a torn file.  No-op when the executor
        was built without a metrics directory (metrics disabled, or the
        in-driver inline context, whose observations land directly in the
        driver's registry).
        """
        if self._metrics_dir is None or not metrics.enabled():
            return
        metrics.dump_snapshot(
            metrics.get_registry().snapshot(),
            Path(self._metrics_dir) / f"worker_{os.getpid():08d}.json",
        )


_CONTEXT: WorkerContext | None = None


def _init_worker(
    trace_dir: str | None, metrics_dir: str | None = None, pending=None
) -> None:
    global _CONTEXT
    if metrics_dir is not None:
        # Fresh registry per worker process: a forked child inherits the
        # driver's live registry, and dumping *that* would hand the
        # driver its own counts back on merge.  A recycled PID continues
        # its predecessor's totals (snapshot files are keyed by PID and
        # overwritten per flush, so starting from zero would lose them).
        registry = metrics.MetricsRegistry()
        previous = Path(metrics_dir) / f"worker_{os.getpid():08d}.json"
        if previous.exists():
            registry.absorb(metrics.load_snapshot(previous))
        metrics.set_registry(registry)
    else:
        metrics.disable()
    _CONTEXT = WorkerContext(trace_dir, metrics_dir, pending)


def _solve_tree_task(handle: _GraphHandle, task: "TreeTask"):
    if handle.kernel == "bitset":
        from repro.kernel import maximal_cliques_bitset, subproblem_bitset

        compact = handle.compact
        if task.kind == "core":
            return tuple(
                tuple(sorted(clique))
                for clique in subproblem_bitset(compact, task.vertex)
            )
        subset = compact.subset_mask(task.anchors)
        return tuple(
            tuple(sorted(clique))
            for clique in maximal_cliques_bitset(compact, subset)
        )
    graph = handle.graph
    if task.kind == "core":
        return tuple(
            tuple(sorted(clique)) for clique in tomita_subproblem(graph, task.vertex)
        )
    induced = graph.induced_subgraph(task.anchors)
    return tuple(
        tuple(sorted(clique)) for clique in tomita_maximal_cliques(induced)
    )


def _should_split(policy: ChunkPolicy, started: float, remaining: int) -> bool:
    """Split iff the slice is spent, the queue is dry, and a tail exists."""
    if policy.split_after_seconds is None or remaining < 1:
        return False
    if time.perf_counter() - started < policy.split_after_seconds:
        return False
    return _CONTEXT is not None and _CONTEXT.queue_is_dry()


def _seal(phase: str, payload, remaining, policy: ChunkPolicy) -> dict:
    """Wrap results in the envelope protocol, spooling oversized payloads.

    The envelope is what travels back through the pool pipe:
    ``{"results" | "spool", "remaining"}``.  Spooled payloads are written
    atomically (temp + rename) so the driver either loads a complete
    file or treats the chunk as failed and retries it.
    """
    envelope: dict = {"results": payload, "remaining": remaining, "spool": None}
    if policy.spool_dir is not None:
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        if len(data) >= policy.spool_threshold:
            name = f"chunk_{policy.chunk_id:08d}.pkl"
            target = Path(policy.spool_dir) / name
            tmp = target.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_bytes(data)
            tmp.replace(target)
            envelope["results"] = None
            envelope["spool"] = name
            envelope["spool_bytes"] = len(data)
    return envelope


def _run_tree_chunk(descriptor: dict, chunk, policy: ChunkPolicy) -> dict:
    """Solve tree subproblems until done or split; results keyed by index.

    Clique vertex tuples are sorted, but the *list* order within a task
    preserves the pivoted enumeration order — the merger relies on task
    indices alone for determinism.
    """
    assert _CONTEXT is not None, "worker used before initialization"
    results: list[tuple[int, tuple[tuple[int, ...], ...]]] = []
    remaining: tuple = ()
    bundle = _METRICS()
    started = time.perf_counter()
    try:
        handle = _CONTEXT.graph_for(descriptor)
        for position, task in enumerate(chunk):
            results.append((task.index, _solve_tree_task(handle, task)))
            if _should_split(policy, started, len(chunk) - position - 1):
                remaining = tuple(chunk[position + 1 :])
                break
        bundle.chunks["tree"].inc()
        bundle.latency["tree"].observe(time.perf_counter() - started)
        _CONTEXT.emit(
            "tree_chunk_completed",
            tasks=len(results),
            cliques=sum(len(found) for _, found in results),
            split_off=len(remaining),
        )
        _CONTEXT.flush_metrics()
    except Exception as error:
        _CONTEXT.emit("tree_chunk_failed", tasks=len(chunk), error=repr(error))
        _CONTEXT.flush_metrics()
        raise
    return _seal("tree", results, remaining or None, policy)


def _run_lift_chunk(descriptor: dict, chunk: "LiftChunk", policy: ChunkPolicy) -> dict:
    """Resolve ``HNB`` sets against the spill files until done or split.

    The envelope payload is ``(per-task maxCL lists, pages read)`` so the
    driver can fold worker I/O back into its metered totals.
    """
    assert _CONTEXT is not None, "worker used before initialization"
    kernel = descriptor.get("kernel", "set")
    loaded: dict[int, dict[int, frozenset[int]]] = {}
    pages_read = 0
    results: list[tuple[int, tuple[tuple[int, ...], ...]]] = []
    remaining = None
    bundle = _METRICS()
    started = time.perf_counter()
    try:
        for position, task in enumerate(chunk.tasks):
            adjacency: dict[int, frozenset[int]] = {}
            for pindex in task.partition_indices:
                if pindex not in loaded:
                    path = chunk.paths[pindex]
                    loaded[pindex] = read_partition_file(path)
                    size = os.path.getsize(path)
                    pages_read += (size + PAGE_SIZE_BYTES - 1) // PAGE_SIZE_BYTES
                adjacency.update(loaded[pindex])
            wanted = set(task.shared)
            induced = AdjacencyGraph()
            for v in task.shared:
                induced.add_vertex(v)
            for v in task.shared:
                for u in adjacency.get(v, frozenset()) & wanted:
                    induced.add_edge(v, u)
            results.append(
                (
                    task.index,
                    tuple(
                        tuple(sorted(clique))
                        for clique in tomita_maximal_cliques(induced, kernel=kernel)
                    ),
                )
            )
            if _should_split(policy, started, len(chunk.tasks) - position - 1):
                from repro.parallel.partition import LiftChunk as _LiftChunk

                tail = chunk.tasks[position + 1 :]
                needed = {p for task in tail for p in task.partition_indices}
                remaining = _LiftChunk(
                    tasks=tail,
                    paths={p: chunk.paths[p] for p in sorted(needed)},
                )
                break
        bundle.chunks["lift"].inc()
        bundle.latency["lift"].observe(time.perf_counter() - started)
        _CONTEXT.emit(
            "lift_chunk_completed",
            tasks=len(results),
            partitions_loaded=len(loaded),
            pages_read=pages_read,
            split_off=0 if remaining is None else len(remaining.tasks),
        )
        _CONTEXT.flush_metrics()
    except Exception as error:
        _CONTEXT.emit("lift_chunk_failed", tasks=len(chunk.tasks), error=repr(error))
        _CONTEXT.flush_metrics()
        raise
    return _seal("lift", (results, pages_read), remaining, policy)


class _Poison:
    """A wrapper whose pickling always fails — the ``poison`` fault."""

    def __init__(self, chunk: object) -> None:
        self.chunk = chunk

    def __reduce__(self):
        raise TypeError("injected unpicklable payload")


def _dispatch_chunk(task):
    """Worker-side entry point: obey the fault directive, then run.

    ``task`` is ``(directive, phase, descriptor, chunk, policy)``.  The
    directive is attached driver-side by :meth:`StepExecutor._submit` so
    workers never hold a :class:`~repro.faults.FaultPlan`; ``None`` means
    run normally.
    """
    directive, phase, descriptor, chunk, policy = task
    if _CONTEXT is not None:
        _CONTEXT.note_started()
    if directive is not None:
        kind = directive[0]
        if kind == "worker_kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == "worker_error":
            raise InjectedFaultError("injected worker error")
        elif kind == "sleep":
            time.sleep(directive[1])
        elif kind == "shm_attach_fail":
            raise SharedMemoryError("injected shared-memory attach failure")
        elif kind == "shm_stale":
            spec = descriptor.get("shm")
            if spec is None:
                raise SharedMemoryError("injected stale shared-memory segment")
            # Re-validate against a generation the segment cannot hold:
            # exercises the real header check, raises SharedMemoryError.
            doctored = {
                "token": descriptor["token"] + "?stale",
                "kernel": descriptor.get("kernel", "set"),
                "shm": {**spec, "generation": spec["generation"] + 1},
            }
            assert _CONTEXT is not None
            _CONTEXT.graph_for(doctored)
    if phase == "tree":
        return _run_tree_chunk(descriptor, chunk, policy)
    return _run_lift_chunk(descriptor, chunk, policy)


@dataclass
class ExecutorStats:
    """Recovery counters for one executor (or, merged, one run).

    ``chunk_retries`` counts resubmissions after a failed attempt;
    ``chunk_timeouts`` / ``chunk_errors`` classify the failures;
    ``pool_rebuilds`` counts pool teardown-and-recreate cycles;
    ``inline_chunks`` counts chunks that exhausted their retries and were
    recomputed in-process.  Scheduling activity (splits, steals, spools)
    is *not* recovery and lives on the executor itself.
    """

    chunk_retries: int = 0
    chunk_timeouts: int = 0
    chunk_errors: int = 0
    pool_rebuilds: int = 0
    inline_chunks: int = 0

    def merge(self, other: "ExecutorStats") -> None:
        """Accumulate another executor's counters into this one."""
        self.chunk_retries += other.chunk_retries
        self.chunk_timeouts += other.chunk_timeouts
        self.chunk_errors += other.chunk_errors
        self.pool_rebuilds += other.pool_rebuilds
        self.inline_chunks += other.inline_chunks

    def to_dict(self) -> dict[str, int]:
        """Plain-dict view for telemetry events."""
        return {
            "chunk_retries": self.chunk_retries,
            "chunk_timeouts": self.chunk_timeouts,
            "chunk_errors": self.chunk_errors,
            "pool_rebuilds": self.pool_rebuilds,
            "inline_chunks": self.inline_chunks,
        }

    @property
    def any_recovery(self) -> bool:
        """Whether any fault-recovery machinery engaged."""
        return any(self.to_dict().values())


class _Pending:
    """One schedulable chunk: queue identity, payload, charged attempts."""

    __slots__ = ("chunk_id", "chunk", "attempts", "stolen")

    def __init__(self, chunk_id, chunk, attempts=0, stolen=False):
        self.chunk_id = chunk_id
        self.chunk = chunk
        self.attempts = attempts
        self.stolen = stolen


class StepExecutor:
    """Run task chunks for one recursion step, in parallel if possible.

    ``map_tree`` / ``map_lift`` return one result payload per *executed*
    chunk (splits included), unordered — callers merge by the global task
    indices every result row carries, so the stream downstream is
    worker-count- and schedule-independent: retries, splits, steals, pool
    rebuilds and inline fallbacks never reorder or change results, only
    delay them.

    The first argument is either a live
    :class:`~repro.parallel.scheduler.ParallelEngine` (the driver's,
    shared across steps) or a worker count, in which case the executor
    creates and owns a private engine — the construction path the unit
    tests and ad-hoc callers use.  ``payload`` is likewise either a task
    descriptor from :meth:`ParallelEngine.publish_star` or a raw
    :func:`~repro.parallel.partition.serialize_star` dict, which is
    wrapped as an in-band descriptor.
    """

    def __init__(
        self,
        engine: "ParallelEngine | int",
        payload: dict,
        trace_dir: str | Path | None = None,
        task_timeout: float | None = None,
        max_retries: int = 2,
        fault_plan: "FaultPlan | None" = None,
        on_event: Callable[..., None] | None = None,
        metrics_dir: str | Path | None = None,
        spool_dir: str | Path | None = None,
        spool_threshold: int | None = None,
    ) -> None:
        if isinstance(engine, ParallelEngine):
            self._engine = engine
            self._owns_engine = False
        else:
            self._engine = ParallelEngine(
                int(engine),
                trace_dir=trace_dir,
                metrics_dir=metrics_dir,
                spool_dir=spool_dir,
            )
            self._owns_engine = True
        if "token" not in payload:
            payload = {
                "token": f"inband-step-{id(payload):x}",
                "kernel": payload.get("kernel", "set"),
                "inband": payload,
            }
        self._payload = payload
        self._spool_threshold = spool_threshold
        self._task_timeout = task_timeout
        self._max_retries = max(0, int(max_retries))
        self._faults = fault_plan
        self._on_event = on_event
        self._inline_context: WorkerContext | None = None
        # Lifetime cap on rebuilds: enough to outlast max_retries worth of
        # worker deaths, but bounded so a persistently hostile environment
        # degrades to inline execution instead of thrashing.
        self._max_rebuilds = max(3, self._max_retries + 1)
        self._rebuilds_used = 0
        self._chunk_seq = 0
        self.stats = ExecutorStats()
        #: Scheduling activity (not recovery — see ``ExecutorStats``).
        self.tasks_split = 0
        self.tasks_stolen = 0
        self.spooled_chunks = 0
        #: Accumulated pickled bytes of every task shipped to the pool —
        #: with shm descriptors this is per-chunk metadata, not graphs.
        self.payload_bytes = 0
        self.fell_back = self._engine.workers > 1 and self._engine.pool is None

    @property
    def engine(self) -> ParallelEngine:
        return self._engine

    @property
    def shm_bytes(self) -> int:
        """Bytes of the shared segment backing this step's descriptor."""
        spec = self._payload.get("shm")
        return 0 if spec is None else int(spec["nbytes"])

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map_tree(self, chunks):
        """Run tree chunks; one result list per executed chunk."""
        return self._map("tree", chunks)

    def map_lift(self, chunks):
        """Run lift chunks; one ``(results, pages)`` pair per chunk."""
        return self._map("lift", chunks)

    def _map(self, phase, chunks):
        """Run every chunk to completion, whatever the pool does.

        Event-driven loop: submit everything pending, harvest whichever
        handle completes first (split tails are requeued and picked up
        by idle workers immediately), classify failures (retry, timeout
        → pool rebuild, retries exhausted → inline).  The loop
        terminates because every failure either charges an attempt
        against a chunk (bounded by ``max_retries`` before the chunk
        goes inline) or consumes a pool rebuild (bounded by the lifetime
        cap before the executor degrades to inline entirely), and every
        split strictly shrinks its chunk.
        """
        pending: deque[_Pending] = deque(
            _Pending(self._next_chunk_id(), chunk) for chunk in chunks
        )
        if not pending:
            return []
        collected: list = []
        outstanding: dict[int, tuple] = {}  # chunk_id -> (handle, item, deadline)
        bundle = _METRICS()
        while pending or outstanding:
            if self._engine.pool is None or self.fell_back:
                self.fell_back = self.fell_back or self._engine.workers > 1
                while pending:
                    item = pending.popleft()
                    collected.append(self._run_chunk_inline(phase, item.chunk))
                continue  # outstanding is empty whenever the pool is gone
            submit_failed = False
            while pending:
                item = pending.popleft()
                handle = self._submit(phase, item)
                if handle is None:
                    pending.appendleft(item)
                    submit_failed = True
                    break
                self._engine.add_pending(1)
                deadline = (
                    None
                    if self._task_timeout is None
                    else time.monotonic() + self._task_timeout
                )
                outstanding[item.chunk_id] = (handle, item, deadline)
            bundle.queue_depth.set(len(outstanding) + len(pending))
            if submit_failed:
                self._salvage(phase, outstanding, pending, collected)
                self._rebuild_pool()
                continue
            progressed, broken = self._poll(phase, outstanding, pending, collected)
            if broken:
                self._salvage(phase, outstanding, pending, collected)
                self._rebuild_pool()
            elif not progressed:
                time.sleep(_POLL_INTERVAL_SECONDS)
        self._engine.reset_pending()
        bundle.queue_depth.set(0)
        return collected

    def _poll(self, phase, outstanding, pending, collected):
        """One harvest pass; returns ``(progressed, pool_broken)``."""
        progressed = False
        now = time.monotonic()
        for chunk_id in list(outstanding):
            handle, item, deadline = outstanding[chunk_id]
            if handle.ready():
                del outstanding[chunk_id]
                progressed = True
                self._harvest(phase, item, handle, pending, collected)
            elif deadline is not None and now >= deadline:
                # The only way to learn a worker died mid-task: the pool
                # never surfaces abrupt worker death, so the deadline is
                # the death detector and it breaks the pool.
                del outstanding[chunk_id]
                self.stats.chunk_timeouts += 1
                _METRICS().timeouts.inc()
                self._emit("chunk_timeout", phase=phase, chunk_index=item.chunk_id)
                self._fail(phase, item, pending, collected)
                return progressed, True
        return progressed, False

    def _harvest(self, phase, item, handle, pending, collected):
        """Unwrap one completed handle: envelope, spool, split tail."""
        try:
            envelope = handle.get(0)
            payload = self._open_envelope(envelope)
        except Exception as error:
            self.stats.chunk_errors += 1
            _METRICS().errors.inc()
            self._emit(
                "chunk_error", phase=phase, chunk_index=item.chunk_id,
                error=repr(error),
            )
            self._fail(phase, item, pending, collected)
            return
        collected.append(payload)
        remaining = envelope.get("remaining")
        if remaining is not None:
            stolen = (
                len(remaining) if phase == "tree" else len(remaining.tasks)
            )
            self.tasks_split += 1
            self.tasks_stolen += stolen
            bundle = _METRICS()
            bundle.tasks_split.inc()
            bundle.tasks_stolen.inc(stolen)
            self._emit(
                "chunk_split", phase=phase, chunk_index=item.chunk_id,
                tasks_stolen=stolen,
            )
            pending.append(_Pending(self._next_chunk_id(), remaining, stolen=True))

    def _open_envelope(self, envelope):
        """Extract the result payload, loading (and removing) spool files."""
        name = envelope.get("spool")
        if name is None:
            return envelope["results"]
        path = Path(self._engine.spool_dir) / name
        data = path.read_bytes()
        payload = pickle.loads(data)
        path.unlink(missing_ok=True)
        self.spooled_chunks += 1
        bundle = _METRICS()
        bundle.spooled.inc()
        bundle.spooled_bytes.inc(len(data))
        return payload

    def _submit(self, phase, item):
        """Submit one chunk; returns ``None`` when the pool is unusable.

        The fault plan is consulted here (operations ``"chunk"`` and —
        when the graph travels through shared memory — ``"shm"``), once
        per submission, so a transient rule fires on the first attempt
        and lets the retry through.
        """
        directive = None
        payload_chunk = item.chunk
        if self._faults is not None:
            fault = self._faults.draw("chunk")
            if fault is not None:
                if fault.kind == "worker_kill":
                    directive = ("worker_kill",)
                elif fault.kind == "worker_error":
                    directive = ("worker_error",)
                elif fault.kind == "poison":
                    payload_chunk = _Poison(item.chunk)
                elif fault.kind in ("timeout", "latency"):
                    stall = fault.latency_seconds
                    if fault.kind == "timeout" and self._task_timeout is not None:
                        # Guarantee the stall outlasts the chunk deadline.
                        stall = max(stall, self._task_timeout * 4)
                    directive = ("sleep", stall)
            if directive is None and self._payload.get("shm") is not None:
                shm_fault = self._faults.draw(
                    "shm", path=self._payload["shm"]["name"]
                )
                if shm_fault is not None:
                    if shm_fault.kind == "attach_fail":
                        directive = ("shm_attach_fail",)
                    elif shm_fault.kind == "stale_segment":
                        directive = ("shm_stale",)
        policy = ChunkPolicy(
            chunk_id=item.chunk_id,
            split_after_seconds=self._engine.policy.split_after_seconds,
            spool_dir=self._engine.spool_dir,
        )
        if self._spool_threshold is not None:
            policy = ChunkPolicy(
                chunk_id=policy.chunk_id,
                split_after_seconds=policy.split_after_seconds,
                spool_dir=policy.spool_dir,
                spool_threshold=self._spool_threshold,
            )
        task = (directive, phase, self._payload, payload_chunk, policy)
        try:
            shipped = len(pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:  # injected poison payloads refuse to pickle
            shipped = 0
        try:
            handle = self._engine.pool.apply_async(_dispatch_chunk, (task,))
        except Exception:
            return None
        self.payload_bytes += shipped
        _METRICS().payload_bytes.inc(shipped)
        return handle

    def _salvage(self, phase, outstanding, pending, collected):
        """Give a broken pool's survivors one short grace window.

        Chunks behind a breakage may have finished before it — harvest
        whatever becomes ready within the window; everything else goes
        back to pending *without* being charged an attempt: they were
        collateral, not the fault.
        """
        deadline = time.monotonic() + _SALVAGE_TIMEOUT_SECONDS
        while outstanding and time.monotonic() < deadline:
            for chunk_id in list(outstanding):
                handle, item, _ = outstanding[chunk_id]
                if handle.ready():
                    del outstanding[chunk_id]
                    self._harvest(phase, item, handle, pending, collected)
            if outstanding:
                time.sleep(_POLL_INTERVAL_SECONDS)
        for handle, item, _ in outstanding.values():
            pending.append(item)
        outstanding.clear()

    def _fail(self, phase, item, pending, collected):
        """Charge a failed attempt; retry on the pool or degrade inline."""
        item.attempts += 1
        if item.attempts > self._max_retries:
            self.stats.inline_chunks += 1
            _METRICS().inline.inc()
            self._emit(
                "chunk_inline_fallback",
                phase=phase,
                chunk_index=item.chunk_id,
                attempts=item.attempts,
            )
            collected.append(self._run_chunk_inline(phase, item.chunk))
        else:
            self.stats.chunk_retries += 1
            _METRICS().retries.inc()
            self._emit(
                "chunk_retry", phase=phase, chunk_index=item.chunk_id,
                attempt=item.attempts,
            )
            pending.append(item)

    def _rebuild_pool(self) -> None:
        """Have the engine replace its broken pool (bounded per step)."""
        if self._rebuilds_used >= self._max_rebuilds:
            self._engine.stop_pool(terminate=True)
            self.fell_back = True
            self._emit("executor_degraded", reason="pool rebuild limit reached")
            return
        self._rebuilds_used += 1
        if self._engine.rebuild_pool():
            self.stats.pool_rebuilds += 1
            _METRICS().rebuilds.inc()
            self._emit("pool_rebuild", rebuilds=self._rebuilds_used)
        else:
            self.fell_back = True
            self._emit("executor_degraded", reason="pool recreation failed")

    def _run_chunk_inline(self, phase, chunk):
        """Recompute one raw chunk in-process (no fault directives).

        The inline context resolves the same descriptor the workers see
        — attaching the shared segment in-driver when one is published —
        and never splits or spools (``ChunkPolicy`` defaults).
        """
        global _CONTEXT
        if self._inline_context is None:
            self._inline_context = WorkerContext(self._engine.trace_dir)
        previous = _CONTEXT
        _CONTEXT = self._inline_context
        policy = ChunkPolicy(chunk_id=self._next_chunk_id())
        try:
            if phase == "tree":
                return _run_tree_chunk(self._payload, chunk, policy)["results"]
            return _run_lift_chunk(self._payload, chunk, policy)["results"]
        finally:
            _CONTEXT = previous

    def _next_chunk_id(self) -> int:
        self._chunk_seq += 1
        return self._chunk_seq

    def _emit(self, event: str, **fields: object) -> None:
        if self._on_event is not None:
            self._on_event(event, **fields)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release step-scoped state; shuts the engine down only when
        this executor created it (shared engines outlive their steps)."""
        if self._inline_context is not None:
            self._inline_context.release_graphs()
            self._inline_context = None
        if self._owns_engine:
            self._engine.close()

    def __enter__(self) -> "StepExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if exc_info and exc_info[0] is not None and self._owns_engine:
            self._engine.close(terminate=True)
            self._inline_context = None
        else:
            self.close()


__all__ = ["ExecutorStats", "StepExecutor", "WorkerContext"]
