"""The worker pool: process management, serialization, fallback.

One :class:`StepExecutor` lives for one recursion step (the worker-side
state is the step's core graph, which changes every step).  It owns a
``multiprocessing`` pool when ``workers > 1`` and degrades to in-process
execution — same task functions, same results, same order — when

* ``workers == 1`` (no pool is ever created),
* the pool cannot be created (platforms without working semaphores), or
* the pool dies mid-flight (a worker segfaults or is OOM-killed): the
  surviving driver terminates the pool and recomputes the whole phase
  inline.  Tasks are pure functions of (payload, task), so recomputation
  is safe and the fallback result is identical by construction.

Workers never share file handles with the driver: each worker process
opens its own spill files (read-only) and its own trace file (append
mode, flushed per event), which is what keeps parallel telemetry and
partition I/O crash-safe.
"""

from __future__ import annotations

import multiprocessing
import os
from pathlib import Path
from typing import TYPE_CHECKING

from repro.baselines.bron_kerbosch import tomita_maximal_cliques, tomita_subproblem
from repro.graph.adjacency import AdjacencyGraph
from repro.storage.pagestore import PAGE_SIZE_BYTES
from repro.storage.partitions import read_partition_file

if TYPE_CHECKING:  # pragma: no cover
    from repro.parallel.partition import LiftChunk, TreeTask

Clique = frozenset


class WorkerContext:
    """Per-process state installed by the pool initializer.

    Holds the reconstructed core graph and (lazily) this worker's private
    :class:`~repro.telemetry.TraceWriter`.  The trace file is per-PID, so
    append-mode handles are never shared across processes; every event is
    flushed on emit, so a crashing worker still leaves a readable trace.

    Two payload formats (see
    :func:`repro.parallel.partition.serialize_star`): the ``"bitset"``
    payload carries compact CSR arrays and rehydrates a
    :class:`~repro.kernel.CompactGraph` without re-sorting anything; the
    ``"set"`` payload carries the legacy dict-of-tuples adjacency and
    rebuilds an :class:`AdjacencyGraph`.
    """

    def __init__(self, payload: dict, trace_dir: str | None) -> None:
        self.kernel = payload.get("kernel", "set")
        if self.kernel == "bitset":
            from repro.kernel import CompactGraph

            self.core_compact = CompactGraph.from_csr(
                payload["labels"], payload["indptr"], payload["indices"]
            )
            self.core_graph = None
        else:
            self.core_compact = None
            self.core_graph = AdjacencyGraph.from_adjacency(
                {v: neighbors for v, neighbors in payload["core_adjacency"].items()}
            )
        self._trace_dir = trace_dir
        self._trace = None

    def emit(self, event: str, **fields: object) -> None:
        if self._trace_dir is None:
            return
        if self._trace is None:
            from repro.telemetry import TraceWriter

            self._trace = TraceWriter(
                Path(self._trace_dir) / f"worker_{os.getpid():08d}.jsonl"
            )
        self._trace.emit(event, **fields)


_CONTEXT: WorkerContext | None = None


def _init_worker(payload: dict, trace_dir: str | None) -> None:
    global _CONTEXT
    _CONTEXT = WorkerContext(payload, trace_dir)


def _run_tree_chunk(
    chunk: "tuple[TreeTask, ...]",
) -> list[tuple[int, tuple[tuple[int, ...], ...]]]:
    """Solve one chunk of tree subproblems; results keyed by task index.

    Clique vertex tuples are sorted, but the *list* order within a task
    preserves the pivoted enumeration order — the merger relies on task
    indices alone for determinism.
    """
    assert _CONTEXT is not None, "worker used before initialization"
    results: list[tuple[int, tuple[tuple[int, ...], ...]]] = []
    try:
        if _CONTEXT.kernel == "bitset":
            from repro.kernel import maximal_cliques_bitset, subproblem_bitset

            compact = _CONTEXT.core_compact
            for task in chunk:
                if task.kind == "core":
                    found = tuple(
                        tuple(sorted(clique))
                        for clique in subproblem_bitset(compact, task.vertex)
                    )
                else:
                    subset = compact.subset_mask(task.anchors)
                    found = tuple(
                        tuple(sorted(clique))
                        for clique in maximal_cliques_bitset(compact, subset)
                    )
                results.append((task.index, found))
        else:
            graph = _CONTEXT.core_graph
            for task in chunk:
                if task.kind == "core":
                    found = tuple(
                        tuple(sorted(clique))
                        for clique in tomita_subproblem(graph, task.vertex)
                    )
                else:
                    induced = graph.induced_subgraph(task.anchors)
                    found = tuple(
                        tuple(sorted(clique))
                        for clique in tomita_maximal_cliques(induced)
                    )
                results.append((task.index, found))
        _CONTEXT.emit(
            "tree_chunk_completed",
            tasks=len(chunk),
            cliques=sum(len(found) for _, found in results),
        )
    except Exception as error:
        _CONTEXT.emit("tree_chunk_failed", tasks=len(chunk), error=repr(error))
        raise
    return results


def _run_lift_chunk(
    chunk: "LiftChunk",
) -> tuple[list[tuple[int, tuple[tuple[int, ...], ...]]], int]:
    """Resolve one chunk of ``HNB`` sets against the spill files.

    Returns the per-task ``maxCL`` lists plus the pages this worker read,
    so the driver can fold worker I/O back into its metered totals.
    """
    assert _CONTEXT is not None, "worker used before initialization"
    loaded: dict[int, dict[int, frozenset[int]]] = {}
    pages_read = 0
    results: list[tuple[int, tuple[tuple[int, ...], ...]]] = []
    try:
        for task in chunk.tasks:
            adjacency: dict[int, frozenset[int]] = {}
            for pindex in task.partition_indices:
                if pindex not in loaded:
                    path = chunk.paths[pindex]
                    loaded[pindex] = read_partition_file(path)
                    size = os.path.getsize(path)
                    pages_read += (size + PAGE_SIZE_BYTES - 1) // PAGE_SIZE_BYTES
                adjacency.update(loaded[pindex])
            wanted = set(task.shared)
            induced = AdjacencyGraph()
            for v in task.shared:
                induced.add_vertex(v)
            for v in task.shared:
                for u in adjacency.get(v, frozenset()) & wanted:
                    induced.add_edge(v, u)
            results.append(
                (
                    task.index,
                    tuple(
                        tuple(sorted(clique))
                        for clique in tomita_maximal_cliques(
                            induced, kernel=_CONTEXT.kernel
                        )
                    ),
                )
            )
        _CONTEXT.emit(
            "lift_chunk_completed",
            tasks=len(chunk.tasks),
            partitions_loaded=len(loaded),
            pages_read=pages_read,
        )
    except Exception as error:
        _CONTEXT.emit("lift_chunk_failed", tasks=len(chunk.tasks), error=repr(error))
        raise
    return results, pages_read


class StepExecutor:
    """Run task chunks for one recursion step, in parallel if possible.

    ``map_tree`` / ``map_lift`` return chunk results in submission order
    regardless of completion order (``Pool.map`` semantics), so callers
    downstream see a worker-count-independent stream.
    """

    def __init__(
        self,
        workers: int,
        payload: dict,
        trace_dir: str | Path | None = None,
        task_timeout: float | None = None,
    ) -> None:
        self._workers = max(1, int(workers))
        self._payload = payload
        self._trace_dir = str(trace_dir) if trace_dir is not None else None
        self._task_timeout = task_timeout
        self._pool = None
        self.fell_back = False
        if self._workers > 1:
            try:
                self._pool = multiprocessing.Pool(
                    processes=self._workers,
                    initializer=_init_worker,
                    initargs=(self._payload, self._trace_dir),
                )
            except Exception:
                self._pool = None
                self.fell_back = True

    @property
    def payload_bytes(self) -> int:
        """Pickled size of the per-worker payload — what each pool
        process receives at initialization.  The benchmarks record this
        for the CSR-vs-dict payload comparison."""
        import pickle

        return len(pickle.dumps(self._payload))

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map_tree(self, chunks):
        """Run tree chunks; one result list per chunk, submission order."""
        return self._map(_run_tree_chunk, chunks)

    def map_lift(self, chunks):
        """Run lift chunks; one ``(results, pages)`` pair per chunk."""
        return self._map(_run_lift_chunk, chunks)

    def _map(self, func, chunks):
        chunks = list(chunks)
        if not chunks:
            return []
        if self._pool is not None:
            try:
                async_result = self._pool.map_async(func, chunks, chunksize=1)
                return async_result.get(self._task_timeout)
            except Exception:
                # The pool is unusable (dead worker, timeout, pickling
                # failure).  Tear it down and recompute everything
                # in-process: tasks are pure, so this is merely slower,
                # never different.
                self._terminate()
                self.fell_back = True
        return self._map_inline(func, chunks)

    def _map_inline(self, func, chunks):
        global _CONTEXT
        previous = _CONTEXT
        _CONTEXT = WorkerContext(self._payload, self._trace_dir)
        try:
            return [func(chunk) for chunk in chunks]
        finally:
            _CONTEXT = previous

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down (idempotent); workers exit and the OS
        closes their trace handles — every event was already flushed."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def _terminate(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "StepExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if exc_info and exc_info[0] is not None:
            self._terminate()
        else:
            self.close()


__all__ = ["StepExecutor", "WorkerContext"]
