"""Shared-memory publication of the per-step core graph.

One named ``multiprocessing.shared_memory`` segment per recursion step
holds the :class:`~repro.kernel.CompactGraph` CSR image (see the codec in
:mod:`repro.kernel.compact`): the driver packs it once, workers attach
zero-copy and read the same physical pages, and the task descriptors
shipped through the pool shrink to a segment name plus a generation
stamp.  This replaces the pickled per-worker graph payload that made the
old engine slower than serial.

Naming and cleanup protocol
---------------------------
Segment names are ``repro-shm-<creator pid>-<seq>-<nonce>``.  Embedding
the creator's pid makes crash leftovers attributable: a segment whose
creator is gone is garbage by definition, and
:func:`sweep_stale_segments` (run at engine start) removes exactly
those.  On orderly shutdown the driver unlinks its own segments; the
sweep is the safety net for the SIGKILL path where no ``finally`` ever
runs.

CPython's ``resource_tracker`` interplay: under the ``fork`` start
method every process in the tree shares one tracker daemon whose cache
is a per-name set, so the driver's create and each worker's attach all
register the same name idempotently, and the driver's ``unlink`` sends
the single balancing unregister.  Nothing here unregisters manually —
a second unregister for the same name crashes the tracker loop — and
the tracker doubles as a second line of crash cleanup behind
:func:`sweep_stale_segments`.
"""

from __future__ import annotations

import os
import re
import secrets
from dataclasses import dataclass, field
from multiprocessing import shared_memory

from repro.errors import SharedMemoryError, StorageFormatError
from repro.kernel.compact import CompactGraph

#: Prefix of every segment this engine creates (the sweep glob).
SEGMENT_PREFIX = "repro-shm-"

#: Where POSIX shared memory appears as files on Linux.
_SHM_DIR = "/dev/shm"

_NAME_PATTERN = re.compile(
    re.escape(SEGMENT_PREFIX) + r"(?P<pid>\d+)-\d+-[0-9a-f]+$"
)

_SEQUENCE = 0


def _next_name() -> str:
    global _SEQUENCE
    _SEQUENCE += 1
    return f"{SEGMENT_PREFIX}{os.getpid()}-{_SEQUENCE}-{secrets.token_hex(3)}"


@dataclass
class StarSegment:
    """A published core graph: one shared-memory segment, driver-owned."""

    name: str
    nbytes: int
    generation: int
    _shm: shared_memory.SharedMemory = field(repr=False)
    _closed: bool = field(default=False, repr=False)

    def close(self) -> None:
        """Unmap the driver's view (idempotent; does not unlink)."""
        if not self._closed:
            self._closed = True
            try:
                self._shm.close()
            except BufferError:  # a live CompactGraph view still holds it
                self._closed = False

    def unlink(self) -> None:
        """Remove the segment from the system (idempotent)."""
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


def export_star(compact: CompactGraph, generation: int) -> StarSegment:
    """Pack ``compact`` into a fresh named segment and return it.

    Raises ``OSError`` when shared memory is unavailable (no ``/dev/shm``,
    exhausted quota) and :class:`~repro.errors.GraphError` for labels the
    int64 codec cannot hold — callers fall back to the pickled in-band
    payload on either.
    """
    nbytes = max(compact.packed_nbytes(), 8)
    name = _next_name()
    shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
    try:
        compact.pack_into(shm.buf, generation)
    except Exception:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        raise
    return StarSegment(name=name, nbytes=nbytes, generation=generation, _shm=shm)


def attach_compact(
    name: str, generation: int
) -> tuple[CompactGraph, shared_memory.SharedMemory]:
    """Attach a published segment and rehydrate its graph, zero-copy.

    The returned graph's CSR arrays are views over the segment; the
    caller must keep the returned handle open (and drop the graph before
    closing it).  Missing segments, foreign buffers and generation
    mismatches all raise :class:`~repro.errors.SharedMemoryError` so the
    executor's chunk-recovery machinery treats them like any other chunk
    failure.
    """
    try:
        shm = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError) as error:
        raise SharedMemoryError(
            f"cannot attach shared-memory segment {name!r}: {error}"
        ) from error
    try:
        compact = CompactGraph.unpack_from(shm.buf, generation)
    except (SharedMemoryError, StorageFormatError):
        shm.close()
        raise
    except Exception as error:
        shm.close()
        raise SharedMemoryError(
            f"segment {name!r} does not hold a readable CSR image: {error}"
        ) from error
    return compact, shm


def sweep_stale_segments() -> list[str]:
    """Remove ``repro-shm-*`` segments whose creator process is gone.

    Crash leftovers only: a segment is swept iff its embedded creator
    pid no longer exists (or is unsignalable and not ours).  Live
    engines in other processes keep their segments.  Returns the names
    removed; silently returns ``[]`` on hosts without a ``/dev/shm``
    file view.
    """
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        return []
    swept: list[str] = []
    for entry in entries:
        match = _NAME_PATTERN.match(entry)
        if match is None:
            continue
        pid = int(match.group("pid"))
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(_SHM_DIR, entry))
            swept.append(entry)
        except OSError:
            continue
    return swept


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # exists, owned by someone else
        return True
    except OSError:
        return True
    return True


__all__ = [
    "SEGMENT_PREFIX",
    "StarSegment",
    "attach_compact",
    "export_star",
    "sweep_stale_segments",
]
