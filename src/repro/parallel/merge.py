"""Deterministic merging of worker results.

The invariant the whole subsystem is built around: **merged output is a
pure function of the task list, never of scheduling**.  Tasks carry
global indices; workers return ``(index, payload)`` pairs; the mergers
here re-order by index and reconstruct exactly the stream the serial
code would have produced.  Combined with the driver-side hashtable
filter (which consumes that stream in order), ``workers=1`` and
``workers=4`` runs are byte-identical.

Work stealing composes for free: a split chunk yields two (or more)
result lists whose task indices are disjoint by construction, and the
mergers never look at chunk boundaries — only at indices.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.hstar import StarGraph

if TYPE_CHECKING:  # pragma: no cover
    from repro.parallel.partition import LiftTask, TreeTask

Clique = frozenset


def flatten_indexed(chunk_results) -> dict[int, tuple]:
    """Collect ``(index, payload)`` pairs from per-chunk result lists.

    Duplicate indices would mean the partitioner emitted overlapping
    tasks — a programming error worth failing loudly on, since silent
    overwrites could mask lost work.
    """
    by_index: dict[int, tuple] = {}
    for chunk in chunk_results:
        for index, payload in chunk:
            if index in by_index:
                raise ValueError(f"duplicate task index {index} in worker results")
            by_index[index] = payload
    return by_index


def merge_tree_results(
    tasks: "list[TreeTask]",
    chunk_results,
    star: StarGraph,
) -> tuple[list[Clique], set[Clique]]:
    """Reassemble the H*-max-clique set and ``M_H`` from worker output.

    Walking tasks in index order reconstructs the serial structured
    enumeration: core subproblems contribute ``M_H`` members (and, when
    their ``HNB`` is empty, H*-max-cliques — the Lemma-2 first family),
    anchor subproblems contribute ``kernel ∪ {w}`` cliques (the second
    family).  The ``HNB``-emptiness filter runs here in the driver, which
    owns the periphery lists workers never see.
    """
    by_index = flatten_indexed(chunk_results)
    missing = [task.index for task in tasks if task.index not in by_index]
    if missing:
        raise ValueError(f"worker results missing task indices {missing[:5]}")
    star_cliques: list[Clique] = []
    core_maximal: set[Clique] = set()
    for task in tasks:
        for members in by_index[task.index]:
            clique = frozenset(members)
            if task.kind == "core":
                core_maximal.add(clique)
                if not star.common_periphery(clique):
                    star_cliques.append(clique)
            else:
                star_cliques.append(clique | {task.vertex})
    return star_cliques, core_maximal


def merge_lift_results(
    tasks: "list[LiftTask]",
    chunk_results,
) -> tuple[dict[Clique, list[Clique]], int]:
    """Reassemble Algorithm 2's ``maxCL(G[HNB])`` table from worker output.

    Returns the ``HNB -> maximal cliques`` mapping (per-set list order
    preserved from the worker's pivoted enumeration, which is itself
    deterministic) plus the total pages workers read, for the driver's
    I/O accounting.
    """
    results_with_pages = list(chunk_results)
    pages_read = sum(pages for _, pages in results_with_pages)
    by_index = flatten_indexed(results for results, _ in results_with_pages)
    max_cliques_of: dict[Clique, list[Clique]] = {}
    for task in tasks:
        if task.index not in by_index:
            raise ValueError(f"worker results missing lift task {task.index}")
        max_cliques_of[frozenset(task.shared)] = [
            frozenset(members) for members in by_index[task.index]
        ]
    return max_cliques_of, pages_read


__all__ = ["flatten_indexed", "merge_lift_results", "merge_tree_results"]
