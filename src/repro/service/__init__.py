"""Concurrent query service over the persisted clique index.

Three layers, each usable alone:

* :class:`CliqueQueryEngine` — thread-safe query execution with an LRU
  postings cache, single-flight deduplication, per-query timeouts and
  cold-path degradation (see :mod:`repro.service.engine`).
* :class:`CliqueQueryServer` — a stdlib TCP/JSON-lines server exposing
  the engine to the network (``repro-mce serve``).
* :class:`CliqueQueryClient` — the matching blocking client, with
  connect/read timeouts, jittered backoff retry for idempotent queries,
  and a per-endpoint :class:`CircuitBreaker`.

This is the piece the ROADMAP's "serve heavy traffic" north star asks
for: enumeration produces the index once; the service answers clique
queries without ever re-running ExtMCE.
"""

from repro.service.client import (
    IDEMPOTENT_OPERATIONS,
    CircuitBreaker,
    CliqueQueryClient,
    Response,
    RetryPolicy,
)
from repro.service.engine import OPERATIONS, CliqueQueryEngine, QueryResult
from repro.service.server import PROBE_OPERATIONS, CliqueQueryServer
from repro.service.stats import has_query_metrics, summarize_query_metrics

__all__ = [
    "IDEMPOTENT_OPERATIONS",
    "OPERATIONS",
    "PROBE_OPERATIONS",
    "CircuitBreaker",
    "RetryPolicy",
    "CliqueQueryClient",
    "CliqueQueryEngine",
    "CliqueQueryServer",
    "QueryResult",
    "Response",
    "has_query_metrics",
    "summarize_query_metrics",
]
