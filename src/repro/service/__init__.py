"""Concurrent query service over the persisted clique index.

Three layers, each usable alone:

* :class:`CliqueQueryEngine` — thread-safe query execution with an LRU
  postings cache, single-flight deduplication, per-query timeouts and
  cold-path degradation (see :mod:`repro.service.engine`).
* :class:`CliqueQueryServer` — a stdlib TCP/JSON-lines server exposing
  the engine to the network (``repro-mce serve``).
* :class:`CliqueQueryClient` — the matching blocking client.

This is the piece the ROADMAP's "serve heavy traffic" north star asks
for: enumeration produces the index once; the service answers clique
queries without ever re-running ExtMCE.
"""

from repro.service.client import CliqueQueryClient, Response
from repro.service.engine import OPERATIONS, CliqueQueryEngine, QueryResult
from repro.service.server import CliqueQueryServer
from repro.service.stats import has_query_metrics, summarize_query_metrics

__all__ = [
    "OPERATIONS",
    "CliqueQueryClient",
    "CliqueQueryEngine",
    "CliqueQueryServer",
    "QueryResult",
    "Response",
    "has_query_metrics",
    "summarize_query_metrics",
]
