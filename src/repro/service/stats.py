"""Human rendering of the index/service metric families.

``repro-mce stats SNAPSHOT.json`` prints every metric as a flat table;
for snapshots produced by the query service that table buries the
numbers an operator actually wants.  :func:`summarize_query_metrics`
sniffs a snapshot for the ``repro_index_*`` / ``repro_service_*`` /
``repro_server_*`` families and, when present, renders the operational
summary — queries by type, cache hit rate, degradations/timeouts, and
latency percentiles estimated from the histogram buckets.
"""

from __future__ import annotations

from repro.metrics import counter_value

#: Prefixes that mark a snapshot as coming from an index/service run.
FAMILY_PREFIXES = (
    "repro_index_",
    "repro_service_",
    "repro_server_",
    "repro_live_",
    "repro_client_",
    "repro_supervisor_",
)


def has_query_metrics(snapshot: dict) -> bool:
    """Whether the snapshot carries any index/service metric family."""
    return any(
        entry["name"].startswith(FAMILY_PREFIXES)
        for entry in snapshot.get("metrics", ())
    )


def _histogram_entries(snapshot: dict, name: str) -> list[dict]:
    return [
        entry
        for entry in snapshot["metrics"]
        if entry["name"] == name and entry["type"] == "histogram"
    ]


def histogram_quantile(snapshot: dict, name: str, quantile: float) -> float | None:
    """Estimate a quantile from a histogram's bucket counts.

    Merges every label set of ``name``, then walks the cumulative bucket
    counts and returns the upper bound of the bucket containing the
    quantile — the standard conservative estimate Prometheus'
    ``histogram_quantile`` makes.  ``None`` when the histogram is absent
    or empty.
    """
    entries = _histogram_entries(snapshot, name)
    if not entries:
        return None
    bounds = entries[0]["buckets"]
    counts = [0] * (len(bounds) + 1)
    for entry in entries:
        for index, count in enumerate(entry["counts"]):
            counts[index] += count
    total = sum(counts)
    if total == 0:
        return None
    target = quantile * total
    cumulative = 0
    for bound, count in zip(bounds, counts):
        cumulative += count
        if cumulative >= target:
            return float(bound)
    return float("inf")  # overflow bucket: above the largest bound


def summarize_query_metrics(snapshot: dict) -> str | None:
    """The operator summary for an index/service snapshot, or ``None``."""
    if not has_query_metrics(snapshot):
        return None
    from repro.analysis.tables import render_table

    rows: list[tuple[str, str]] = []
    by_op = {
        entry["labels"].get("op", "?"): entry["value"]
        for entry in snapshot["metrics"]
        if entry["name"] == "repro_service_queries_total"
        and entry["type"] == "counter"
    }
    for op in sorted(by_op):
        rows.append((f"queries[{op}]", str(by_op[op])))
    hits = counter_value(snapshot, "repro_service_cache_hits_total")
    misses = counter_value(snapshot, "repro_service_cache_misses_total")
    if hits or misses:
        rows.append(("postings cache hit rate", f"{hits / (hits + misses):.1%}"))
    for label, name in (
        ("deduplicated queries", "repro_service_deduplicated_total"),
        ("degraded (cold-path) answers", "repro_service_degraded_total"),
        ("query timeouts", "repro_service_timeouts_total"),
        ("query errors", "repro_service_errors_total"),
        ("stale answers", "repro_service_stale_answers_total"),
        ("postings lists read", "repro_index_postings_read_total"),
        ("clique records read", "repro_index_records_read_total"),
        ("bufferpool page misses", "repro_bufferpool_misses_total"),
        ("server connections", "repro_server_connections_total"),
        ("server requests", "repro_server_requests_total"),
        ("requests shed (overload/drain)", "repro_server_shed_total"),
        ("oversized requests rejected", "repro_server_oversized_requests_total"),
        ("slow-consumer disconnects", "repro_server_slow_consumer_disconnects_total"),
        ("injected net faults fired", "repro_server_net_faults_total"),
        ("graceful drains", "repro_server_drains_total"),
        ("subscriptions accepted", "repro_server_subscriptions_total"),
        ("subscription events pushed", "repro_server_events_pushed_total"),
        ("client retries", "repro_client_retries_total"),
        ("client transport failures", "repro_client_unavailable_total"),
        ("client overload sheds seen", "repro_client_overloaded_total"),
        ("circuit breaker trips", "repro_client_breaker_opens_total"),
        ("breaker fast-fails", "repro_client_breaker_fast_fails_total"),
        ("supervisor worker deaths", "repro_supervisor_worker_deaths_total"),
        ("supervisor restarts", "repro_supervisor_restarts_total"),
        ("supervisor reapplied events", "repro_supervisor_reapplied_events_total"),
        ("supervisor dropped poison events", "repro_supervisor_dropped_events_total"),
        ("live deltas applied", "repro_live_deltas_applied_total"),
        ("live WAL records", "repro_live_wal_records_total"),
        ("live compactions", "repro_live_compactions_total"),
        ("live compaction failures", "repro_live_compaction_failures_total"),
        ("live deltas recovered", "repro_live_recovered_deltas_total"),
        ("indexed cliques (builds)", "repro_index_build_cliques_total"),
    ):
        value = counter_value(snapshot, name)
        if value:
            rows.append((label, str(value)))
    for quantile, label in ((0.5, "query latency p50"), (0.95, "query latency p95")):
        estimate = histogram_quantile(
            snapshot, "repro_service_query_seconds", quantile
        )
        if estimate is not None:
            rows.append(
                (label, "> largest bucket" if estimate == float("inf")
                 else f"<= {estimate * 1000:.3g} ms")
            )
    if not rows:
        return None
    return render_table("Clique query service", ["metric", "value"], rows)
