"""Thread-safe, cache-fronted query engine over a :class:`CliqueIndex`.

The ROADMAP's north star is *serving* clique results, not just producing
them.  :class:`CliqueQueryEngine` is the layer that makes the persisted
index servable:

* **Thread safety** — the underlying :class:`~repro.storage.bufferpool.BufferPool`
  caches are single-threaded, so all index access funnels through one
  reentrant lock; the engine, not each caller, owns that discipline.
* **LRU postings cache** — hot vertices answer without touching the
  pools at all; entries for vertices the index marks stale are bypassed
  so staleness is never hidden by the cache.
* **Single-flight deduplication** — identical queries arriving while one
  is already executing wait for and share the in-flight result instead
  of re-reading the same pages (the classic thundering-herd guard).
* **Per-query timeout** — a deadline is checked at every I/O step; a
  stalled read surfaces as :class:`~repro.errors.QueryTimeoutError`
  rather than a hung service thread.
* **Graceful degradation** — when a cached/paged read fails
  (:class:`~repro.errors.StorageError`, including injected faults and
  CRC mismatches), the engine retries the query as a sequential
  cold-path scan of the record file and flags the answer ``degraded``.
* **Live overlay** — the engine also serves a
  :class:`~repro.live.store.LiveCliqueStore` (detected by its
  ``register_apply_hook`` attribute): answers then reflect every applied
  update, ``stale`` becomes the precise "delta-overlaid" signal, applied
  deltas invalidate the affected cache entries, and change
  subscriptions (:meth:`subscribe`) become available.  Cache entries are
  tagged with the store's generation number, so a compaction swap —
  which renumbers clique ids — can never be answered from the previous
  generation's cache.

Every decision emits :mod:`repro.metrics` series under
``repro_service_*`` — queries by type, cache hits/misses, dedup shares,
degradations, timeouts, and a per-query latency histogram.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from types import SimpleNamespace

from repro import metrics
from repro.errors import GraphError, QueryTimeoutError, ServiceError
from repro.index.reader import CliqueIndex

#: Query operations the engine (and the wire protocol) understands.
OPERATIONS = (
    "cliques_containing",
    "cliques_containing_edge",
    "clique",
    "membership",
    "top_k_largest",
    "stats",
)

_METRICS = metrics.bound(
    lambda registry: SimpleNamespace(
        queries={
            op: registry.counter(
                "repro_service_queries_total",
                "queries answered by the engine, by operation",
                labels={"op": op},
            )
            for op in OPERATIONS
        },
        cache_hits=registry.counter(
            "repro_service_cache_hits_total", "postings served from the engine LRU"
        ),
        cache_misses=registry.counter(
            "repro_service_cache_misses_total", "postings fetched from the index"
        ),
        deduplicated=registry.counter(
            "repro_service_deduplicated_total",
            "queries that shared an identical in-flight computation",
        ),
        degraded=registry.counter(
            "repro_service_degraded_total",
            "queries answered via the cold-path record scan",
        ),
        timeouts=registry.counter(
            "repro_service_timeouts_total", "queries that exceeded their deadline"
        ),
        errors=registry.counter(
            "repro_service_errors_total", "queries that raised a non-timeout error"
        ),
        stale_answers=registry.counter(
            "repro_service_stale_answers_total",
            "answers touching vertices marked stale by graph updates",
        ),
        latency=registry.histogram(
            "repro_service_query_seconds",
            "end-to-end per-query latency",
            buckets=metrics.TIME_BUCKETS,
        ),
    )
)


@dataclass(frozen=True)
class QueryResult:
    """One answered query, with how it was answered."""

    op: str
    value: object
    degraded: bool = False
    stale: bool = False
    deduplicated: bool = False
    elapsed_seconds: float = 0.0


def _canonical_args(args: dict) -> tuple:
    """A hashable dedup key for query arguments.

    Sequence-valued arguments (``membership``'s vertex list, which
    arrives as a JSON array from the wire) are canonicalised to sorted
    tuples so ``[2, 1]`` and ``(1, 2)`` share one in-flight slot.
    """
    items = []
    for name, value in sorted(args.items()):
        if isinstance(value, (list, tuple, set, frozenset)):
            value = tuple(sorted(value))
        items.append((name, value))
    return tuple(items)


class _InFlight:
    """Rendezvous for callers deduplicated onto one computation."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: QueryResult | None = None
        self.error: BaseException | None = None


class _Deadline:
    """A per-query budget checked at every I/O step."""

    __slots__ = ("_expires",)

    def __init__(self, timeout_seconds: float | None) -> None:
        self._expires = (
            time.monotonic() + timeout_seconds if timeout_seconds else None
        )

    def check(self, what: str) -> None:
        if self._expires is not None and time.monotonic() > self._expires:
            raise QueryTimeoutError(f"query deadline exceeded during {what}")

    def remaining(self) -> float | None:
        if self._expires is None:
            return None
        return max(0.0, self._expires - time.monotonic())


class CliqueQueryEngine:
    """Concurrent query front-end over one :class:`CliqueIndex`."""

    def __init__(
        self,
        index: CliqueIndex,
        cache_entries: int = 1024,
        timeout_seconds: float | None = None,
    ) -> None:
        if cache_entries < 0:
            raise ServiceError(f"cache_entries must be non-negative, got {cache_entries}")
        self._index = index
        self._timeout = timeout_seconds
        self._cache_capacity = cache_entries
        # vertex -> (generation_token, postings); the token guards against
        # a live store's compaction renumbering clique ids under the cache.
        self._postings_cache: OrderedDict[int, tuple[int, tuple[int, ...]]] = (
            OrderedDict()
        )
        self._io_lock = threading.RLock()
        self._flight_lock = threading.Lock()
        self._in_flight: dict[tuple, _InFlight] = {}
        self._live = hasattr(index, "register_apply_hook")
        if self._live:
            index.register_apply_hook(self._on_live_event)

    @property
    def index(self) -> CliqueIndex:
        """The index this engine serves."""
        return self._index

    @property
    def live(self) -> bool:
        """Whether the served index is a continuously maintained live store."""
        return self._live

    def _generation_token(self) -> int:
        """The served index's current generation (0 for a frozen index)."""
        return getattr(self._index, "generation_number", 0)

    def _on_live_event(self, event: str, payload) -> None:
        """Live-store apply hook: keep the postings cache truthful.

        Per-delta invalidation handles overlay updates; a compaction swap
        renumbers every clique id, so the whole cache goes (the
        generation token already fences late readers — this just frees
        the memory eagerly).
        """
        if event == "delta":
            self.invalidate(*payload.vertices)
        else:
            self.invalidate()

    # ------------------------------------------------------------------
    # Public query API
    # ------------------------------------------------------------------
    def query(
        self, op: str, timeout_seconds: float | None = None, **args
    ) -> QueryResult:
        """Answer one query; see :data:`OPERATIONS` for the vocabulary.

        Identical in-flight queries are answered once and shared.  Raises
        :class:`~repro.errors.ServiceError` for unknown operations or bad
        arguments, :class:`~repro.errors.QueryTimeoutError` past the
        deadline.
        """
        if op not in OPERATIONS:
            raise ServiceError(f"unknown operation {op!r}; choose from {OPERATIONS}")
        key = (op, _canonical_args(args))
        with self._flight_lock:
            flight = self._in_flight.get(key)
            if flight is None:
                flight = _InFlight()
                self._in_flight[key] = flight
                leader = True
            else:
                leader = False
        if not leader:
            effective = timeout_seconds if timeout_seconds is not None else self._timeout
            if not flight.event.wait(effective):
                _METRICS().timeouts.inc()
                raise QueryTimeoutError(
                    f"deduplicated {op} query timed out waiting for the leader"
                )
            _METRICS().deduplicated.inc()
            if flight.error is not None:
                raise flight.error
            assert flight.result is not None
            return QueryResult(
                op=flight.result.op,
                value=flight.result.value,
                degraded=flight.result.degraded,
                stale=flight.result.stale,
                deduplicated=True,
                elapsed_seconds=flight.result.elapsed_seconds,
            )
        try:
            result = self._execute(op, timeout_seconds, args)
            flight.result = result
            return result
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._flight_lock:
                self._in_flight.pop(key, None)
            flight.event.set()

    # Convenience wrappers mirroring the index API ----------------------
    def cliques_containing(self, v: int) -> QueryResult:
        """Clique ids containing vertex ``v``."""
        return self.query("cliques_containing", v=v)

    def cliques_containing_edge(self, u: int, v: int) -> QueryResult:
        """Clique ids containing the edge ``(u, v)``."""
        return self.query("cliques_containing_edge", u=u, v=v)

    def clique(self, clique_id: int) -> QueryResult:
        """The vertex tuple of one clique id."""
        return self.query("clique", clique_id=clique_id)

    def membership(self, vertices) -> QueryResult:
        """Clique ids containing every vertex of ``vertices``."""
        return self.query("membership", vertices=tuple(sorted(set(vertices))))

    def top_k_largest(self, k: int) -> QueryResult:
        """The ``k`` largest cliques as vertex tuples."""
        return self.query("top_k_largest", k=k)

    def stats(self) -> QueryResult:
        """Index statistics (never touches the data files)."""
        return self.query("stats")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute(
        self, op: str, timeout_seconds: float | None, args: dict
    ) -> QueryResult:
        bundle = _METRICS()
        deadline = _Deadline(
            timeout_seconds if timeout_seconds is not None else self._timeout
        )
        started = time.perf_counter()
        degraded = False
        try:
            try:
                value, stale = self._fast_path(op, args, deadline)
            except QueryTimeoutError:
                raise
            except (GraphError, ServiceError):
                raise  # caller errors: no fallback will fix a bad argument
            except Exception:
                # Cached/paged read failed (I/O error, CRC mismatch, injected
                # fault): answer from the sequential cold path instead.
                degraded = True
                bundle.degraded.inc()
                value, stale = self._cold_path(op, args, deadline)
        except QueryTimeoutError:
            bundle.timeouts.inc()
            raise
        except (GraphError, ServiceError):
            bundle.errors.inc()
            raise
        except Exception as exc:
            bundle.errors.inc()
            raise ServiceError(f"{op} query failed on both paths: {exc}") from exc
        elapsed = time.perf_counter() - started
        bundle.queries[op].inc()
        bundle.latency.observe(elapsed)
        if stale:
            bundle.stale_answers.inc()
        return QueryResult(
            op=op, value=value, degraded=degraded, stale=stale,
            elapsed_seconds=elapsed,
        )

    def _get_postings(self, vertex: int, deadline: _Deadline) -> tuple[int, ...]:
        """Postings through the LRU (stale vertices bypass the cache)."""
        bundle = _METRICS()
        deadline.check(f"postings lookup for vertex {vertex}")
        token = self._generation_token()
        if self._index.is_stale(vertex):
            self._postings_cache.pop(vertex, None)
        else:
            cached = self._postings_cache.get(vertex)
            if cached is not None:
                minted, postings = cached
                if minted == token:
                    self._postings_cache.move_to_end(vertex)
                    bundle.cache_hits.inc()
                    return postings
                self._postings_cache.pop(vertex, None)
        bundle.cache_misses.inc()
        # Token read precedes the index read: if a compaction swaps the
        # generation in between, the fresh postings get stamped with the
        # older token and simply miss once more — never the reverse.
        postings = tuple(self._index.postings(vertex))
        if self._cache_capacity and not self._index.is_stale(vertex):
            self._postings_cache[vertex] = (token, postings)
            self._postings_cache.move_to_end(vertex)
            while len(self._postings_cache) > self._cache_capacity:
                self._postings_cache.popitem(last=False)
        return postings

    def _fast_path(self, op: str, args: dict, deadline: _Deadline):
        with self._io_lock:
            if op == "stats":
                return self._index.stats(), bool(self._index.stale_vertices)
            if op == "cliques_containing":
                v = int(args["v"])
                return list(self._get_postings(v, deadline)), self._index.is_stale(v)
            if op == "cliques_containing_edge":
                u, v = int(args["u"]), int(args["v"])
                if u == v:
                    raise GraphError(f"edge endpoints must differ, got ({u}, {v})")
                first = self._get_postings(u, deadline)
                second = self._get_postings(v, deadline)
                if len(first) > len(second):
                    first, second = second, first
                other = set(second)
                return (
                    [cid for cid in first if cid in other],
                    self._index.is_stale(u, v),
                )
            if op == "membership":
                vertices = sorted(set(int(v) for v in args["vertices"]))
                if not vertices:
                    raise GraphError("membership query needs at least one vertex")
                result: set[int] | None = None
                for v in vertices:
                    postings = self._get_postings(v, deadline)
                    if not postings:
                        return [], self._index.is_stale(*vertices)
                    result = set(postings) if result is None else result & set(postings)
                    if not result:
                        break
                return sorted(result or ()), self._index.is_stale(*vertices)
            if op == "clique":
                cid = int(args["clique_id"])
                deadline.check(f"record read for clique {cid}")
                return list(self._index.clique(cid)), False
            if op == "top_k_largest":
                k = int(args["k"])
                deadline.check("top-k size scan")
                value = [list(c) for c in self._index.top_k_largest(k)]
                return value, bool(self._index.stale_vertices)
            raise ServiceError(f"unhandled operation {op!r}")  # pragma: no cover

    def _cold_path(self, op: str, args: dict, deadline: _Deadline):
        """Answer by sequentially scanning the record file.

        Slower but independent of the offsets/postings files and the
        page caches — the paths a fault just broke.
        """
        if op == "stats":
            return self._index.stats(), bool(self._index.stale_vertices)
        stale_set = self._index.stale_vertices

        def records():
            for count, (clique_id, vertices) in enumerate(self._index.scan_cliques()):
                if count % 1024 == 0:
                    deadline.check("cold-path record scan")
                yield clique_id, vertices

        if op == "cliques_containing":
            v = int(args["v"])
            return (
                [cid for cid, vs in records() if v in vs],
                v in stale_set,
            )
        if op == "cliques_containing_edge":
            u, v = int(args["u"]), int(args["v"])
            if u == v:
                raise GraphError(f"edge endpoints must differ, got ({u}, {v})")
            return (
                [cid for cid, vs in records() if u in vs and v in vs],
                bool({u, v} & stale_set),
            )
        if op == "membership":
            wanted = set(int(v) for v in args["vertices"])
            if not wanted:
                raise GraphError("membership query needs at least one vertex")
            return (
                [cid for cid, vs in records() if wanted <= set(vs)],
                bool(wanted & stale_set),
            )
        if op == "clique":
            cid = int(args["clique_id"])
            # A live store's id space is sparse (tombstones, overlay adds
            # past the base); ``id_space`` bounds it, num_cliques does not.
            bound = getattr(self._index, "id_space", self._index.num_cliques)
            if not 0 <= cid < bound:
                raise GraphError(f"clique id {cid} out of range [0, {bound})")
            for found, vertices in records():
                if found == cid:
                    return list(vertices), False
            raise ServiceError(f"clique {cid} missing from the record file")
        if op == "top_k_largest":
            k = int(args["k"])
            if k <= 0:
                raise GraphError(f"k must be positive, got {k}")
            winners = heapq.nsmallest(
                k, (((-len(vs), cid), vs) for cid, vs in records())
            )
            return [list(vs) for _key, vs in winners], bool(stale_set)
        raise ServiceError(f"unhandled operation {op!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Cheap liveness facts for the server's ``health`` probe.

        Never touches the data files: everything here comes from
        in-memory state (plus the live store's own :meth:`health` when
        it offers one), so the probe stays answerable under the exact
        I/O faults that would fail a real query.
        """
        payload = {
            "live": self._live,
            "cached_postings": len(self._postings_cache),
            "generation": self._generation_token(),
        }
        store_health = getattr(self._index, "health", None)
        if callable(store_health):
            payload["store"] = store_health()
        return payload

    # ------------------------------------------------------------------
    # Change subscriptions (live stores only)
    # ------------------------------------------------------------------
    def subscribe(self, vertex: int, callback) -> int:
        """Notify ``callback(event)`` when a clique containing ``vertex``
        appears or dies; returns a token for :meth:`unsubscribe`.

        Only a live store can change under the engine, so this raises
        :class:`~repro.errors.ServiceError` over a frozen index.
        Callbacks fire on the writer thread after the triggering delta is
        durable and visible to queries.
        """
        if not self._live:
            raise ServiceError(
                "change subscriptions need a live store; this engine serves "
                "a frozen index"
            )
        return self._index.subscribe(int(vertex), callback)

    def unsubscribe(self, token: int) -> bool:
        """Cancel one subscription; returns whether it existed."""
        if not self._live:
            raise ServiceError(
                "change subscriptions need a live store; this engine serves "
                "a frozen index"
            )
        return self._index.unsubscribe(token)

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    @property
    def cached_postings(self) -> int:
        """Entries currently held by the LRU postings cache."""
        return len(self._postings_cache)

    def invalidate(self, *vertices: int) -> None:
        """Drop cached postings (all of them when called with no args)."""
        with self._io_lock:
            if not vertices:
                self._postings_cache.clear()
            for v in vertices:
                self._postings_cache.pop(v, None)
