"""Resilient JSON-lines client for :class:`CliqueQueryServer`.

One socket, one request/response exchange at a time — the simplest
correct client for the line protocol — wrapped in the failure handling
any client of a real service needs:

* **Connect and read timeouts** — a dead or unresponsive peer raises
  :class:`~repro.errors.ServiceUnavailableError` instead of blocking
  forever (the bug this module used to have).
* **Jittered exponential backoff retry** — transport failures on
  *idempotent query operations* are retried against a fresh connection,
  sleeping ``base * multiplier^attempt`` with ±50% jitter; a server
  ``overloaded`` reply becomes :class:`~repro.errors.ServerOverloadedError`
  and its ``retry_after_ms`` hint overrides the computed backoff.
  Non-idempotent operations (``subscribe``/``unsubscribe``) and protocol
  errors are never retried.
* **Circuit breaker** — after ``failure_threshold`` consecutive
  transport failures the breaker opens and requests fail fast with
  :class:`~repro.errors.CircuitOpenError` (no network touch) until the
  ``reset_timeout`` lets a single half-open probe through; a successful
  probe closes the breaker, a failed one reopens it.  Overload sheds do
  not count toward the streak — a shedding server is alive.

Server-side errors come back as :class:`~repro.errors.ServiceError` (or
:class:`~repro.errors.QueryTimeoutError` when the server reports a
deadline miss); framing violations raise
:class:`~repro.errors.ServiceProtocolError`.

When the server fronts a live store, the client can also
:meth:`~CliqueQueryClient.subscribe` to change notifications.  Pushed
event lines carry no ``"id"`` key; the client routes them into an event
queue as they arrive, so no line is ever misread as the wrong kind.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from types import SimpleNamespace

from repro import metrics
from repro.errors import (
    CircuitOpenError,
    QueryTimeoutError,
    ServerOverloadedError,
    ServiceError,
    ServiceProtocolError,
    ServiceUnavailableError,
)

#: Operations safe to retry: pure reads, plus the admission-exempt probes.
IDEMPOTENT_OPERATIONS = frozenset(
    {
        "cliques_containing",
        "cliques_containing_edge",
        "clique",
        "membership",
        "top_k_largest",
        "stats",
        "health",
        "ready",
    }
)

_METRICS = metrics.bound(
    lambda registry: SimpleNamespace(
        retries=registry.counter(
            "repro_client_retries_total", "request attempts beyond the first"
        ),
        backoff_seconds=registry.counter(
            "repro_client_backoff_seconds_total", "total time slept backing off"
        ),
        unavailable=registry.counter(
            "repro_client_unavailable_total",
            "transport-level failures (connect, timeout, reset)",
        ),
        overloaded=registry.counter(
            "repro_client_overloaded_total", "requests shed by the server"
        ),
        breaker_opens=registry.counter(
            "repro_client_breaker_opens_total", "circuit breaker trips"
        ),
        breaker_fast_fails=registry.counter(
            "repro_client_breaker_fast_fails_total",
            "requests failed fast by an open breaker",
        ),
    )
)


@dataclass(frozen=True)
class Response:
    """One successful server response."""

    result: object
    degraded: bool
    stale: bool
    elapsed_ms: float


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff for idempotent requests.

    ``max_attempts`` counts total tries (1 = no retries).  Sleep before
    attempt ``n`` (n ≥ 1) is ``base * multiplier^(n-1)`` capped at
    ``max_sleep``, scaled by a uniform jitter in ``[1-jitter, 1+jitter]``
    — the decorrelation that keeps a thundering herd from re-arriving in
    lockstep.  A server ``retry_after_ms`` hint replaces the computed
    base for that attempt (jitter still applies).
    """

    max_attempts: int = 3
    base_sleep: float = 0.05
    max_sleep: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def sleep_before(self, attempt: int, hint_ms: float | None = None) -> float:
        """Backoff before retry ``attempt`` (1-based), in seconds."""
        if hint_ms is not None:
            base = hint_ms / 1000.0
        else:
            base = self.base_sleep * (self.multiplier ** (attempt - 1))
        base = min(base, self.max_sleep)
        if self.jitter <= 0.0:
            return base
        return base * random.uniform(1.0 - self.jitter, 1.0 + self.jitter)


class CircuitBreaker:
    """Per-endpoint breaker: closed → open → half-open → closed.

    Thread-safe.  ``failure_threshold`` *consecutive* failures open the
    circuit; while open, :meth:`before_request` raises
    :class:`~repro.errors.CircuitOpenError` without touching the
    network.  After ``reset_timeout_seconds`` one caller wins the
    half-open probe slot; its success closes the breaker, its failure
    reopens it (restarting the timer).
    """

    def __init__(
        self, failure_threshold: int = 5, reset_timeout_seconds: float = 1.0
    ) -> None:
        self.failure_threshold = max(1, int(failure_threshold))
        self.reset_timeout_seconds = float(reset_timeout_seconds)
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"``."""
        with self._lock:
            return self._state

    def before_request(self) -> None:
        """Gate one request; raises :class:`CircuitOpenError` when open."""
        with self._lock:
            if self._state == "closed":
                return
            elapsed = time.monotonic() - self._opened_at
            if elapsed >= self.reset_timeout_seconds and not self._probing:
                # This caller wins the single half-open probe slot.
                self._state = "half_open"
                self._probing = True
                return
            _METRICS().breaker_fast_fails.inc()
            raise CircuitOpenError(
                f"circuit open after {self._failures} consecutive failures; "
                f"retry in {max(0.0, self.reset_timeout_seconds - elapsed):.2f}s"
            )

    def record_success(self) -> None:
        """A request got through: close the circuit, clear the streak."""
        with self._lock:
            self._state = "closed"
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        """A transport failure: extend the streak, maybe trip the breaker."""
        with self._lock:
            self._failures += 1
            was_open = self._state != "closed"
            if was_open or self._failures >= self.failure_threshold:
                if self._state != "open":
                    _METRICS().breaker_opens.inc()
                self._state = "open"
                self._opened_at = time.monotonic()
                self._probing = False


class CliqueQueryClient:
    """Talk to a running clique query server, surviving its bad days."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout_seconds: float | None = 30.0,
        *,
        connect_timeout_seconds: float | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout_seconds
        self._connect_timeout = (
            connect_timeout_seconds
            if connect_timeout_seconds is not None
            else timeout_seconds
        )
        self._retry = retry_policy if retry_policy is not None else RetryPolicy()
        self._breaker = breaker if breaker is not None else CircuitBreaker()
        self._sock: socket.socket | None = None
        self._buffer = bytearray()
        self._events: deque[dict] = deque()
        self._next_id = 0
        self._connect()

    @property
    def breaker(self) -> CircuitBreaker:
        """This endpoint's circuit breaker (share it across clients to pool)."""
        return self._breaker

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _connect(self) -> None:
        self._breaker.before_request()
        try:
            self._sock = socket.create_connection(
                (self._host, self._port), timeout=self._connect_timeout
            )
        except OSError as exc:
            self._sock = None
            self._breaker.record_failure()
            _METRICS().unavailable.inc()
            raise ServiceUnavailableError(
                f"cannot connect to clique service at {self._host}:{self._port}: {exc}"
            ) from exc
        # No record_success yet: a half-open probe only closes the
        # breaker once a full request round-trip comes back.
        self._buffer.clear()

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._buffer.clear()

    def _ensure_connected(self) -> socket.socket:
        if self._sock is None:
            self._connect()
        assert self._sock is not None
        return self._sock

    def close(self) -> None:
        """Close the connection."""
        self._drop_connection()

    def __enter__(self) -> "CliqueQueryClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Framing
    # ------------------------------------------------------------------
    def _read_line(self, timeout: float | None) -> bytes | None:
        """One ``\\n``-terminated line; ``None`` on timeout, ``b""`` on EOF.

        The client owns its buffering (no ``makefile``): a timeout mid-
        line leaves the partial bytes in ``_buffer`` instead of losing
        them inside a file object's internals.
        """
        sock = self._ensure_connected()
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[: newline + 1])
                del self._buffer[: newline + 1]
                return line
            sock.settimeout(timeout)
            try:
                chunk = sock.recv(65536)
            except TimeoutError:
                return None
            if not chunk:
                return b""
            self._buffer += chunk

    def _parse_line(self, line: bytes) -> dict:
        try:
            message = json.loads(line)
        except ValueError as exc:
            raise ServiceProtocolError(f"unparseable response line: {line!r}") from exc
        if not isinstance(message, dict):
            raise ServiceProtocolError(f"expected a JSON object line, got {line!r}")
        return message

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def request(self, op: str, timeout: float | None = None, **args) -> Response:
        """Send one request, retrying transport failures when safe.

        Idempotent query operations retry under the client's
        :class:`RetryPolicy` (reconnecting between attempts); others get
        exactly one try.  Raises
        :class:`~repro.errors.ServiceUnavailableError` when every
        attempt failed at the transport,
        :class:`~repro.errors.ServerOverloadedError` when the server
        kept shedding, and :class:`~repro.errors.CircuitOpenError` when
        the breaker fails fast.
        """
        attempts = self._retry.max_attempts if op in IDEMPOTENT_OPERATIONS else 1
        bundle = _METRICS()
        last: ServiceUnavailableError | None = None
        for attempt in range(1, attempts + 1):
            if attempt > 1:
                hint = (
                    last.retry_after_ms
                    if isinstance(last, ServerOverloadedError)
                    else None
                )
                pause = self._retry.sleep_before(attempt - 1, hint_ms=hint)
                bundle.retries.inc()
                bundle.backoff_seconds.inc(pause)
                time.sleep(pause)
            try:
                return self._request_once(op, timeout, args)
            except ServerOverloadedError as exc:
                # The server is alive and answering — no breaker hit,
                # and the connection is still good.
                bundle.overloaded.inc()
                last = exc
            except CircuitOpenError:
                raise
            except ServiceUnavailableError as exc:
                bundle.unavailable.inc()
                self._breaker.record_failure()
                self._drop_connection()
                last = exc
        assert last is not None
        raise last

    def _request_once(self, op: str, timeout: float | None, args: dict) -> Response:
        if self._sock is None:
            self._connect()  # breaker-gated; raises on open circuit
        else:
            self._breaker.before_request()
        sock = self._ensure_connected()
        self._next_id += 1
        payload: dict = {"id": self._next_id, "op": op, "args": args}
        if timeout is not None:
            payload["timeout"] = timeout
        try:
            sock.settimeout(self._timeout)
            sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        except OSError as exc:
            raise ServiceUnavailableError(
                f"transport failure sending {op}: {exc}"
            ) from exc
        while True:
            try:
                line = self._read_line(self._timeout)
            except OSError as exc:
                raise ServiceUnavailableError(
                    f"transport failure during {op}: {exc}"
                ) from exc
            if line is None:
                raise ServiceUnavailableError(
                    f"timed out after {self._timeout}s waiting for {op} response"
                )
            if not line:
                raise ServiceUnavailableError(
                    f"server closed the connection during {op}"
                )
            message = self._parse_line(line)
            if "id" not in message:
                self._events.append(message)
                continue
            break
        self._breaker.record_success()
        if message.get("id") != self._next_id:
            raise ServiceProtocolError(
                f"response id {message.get('id')!r} does not match request "
                f"{self._next_id}"
            )
        if not message.get("ok"):
            error = str(message.get("error", "unknown server error"))
            if message.get("overloaded"):
                raise ServerOverloadedError(
                    error,
                    retry_after_ms=(
                        float(message["retry_after_ms"])
                        if message.get("retry_after_ms") is not None
                        else None
                    ),
                )
            if message.get("timeout"):
                raise QueryTimeoutError(error)
            raise ServiceError(error)
        return Response(
            result=message.get("result"),
            degraded=bool(message.get("degraded")),
            stale=bool(message.get("stale")),
            elapsed_ms=float(message.get("elapsed_ms", 0.0)),
        )

    # Convenience wrappers ----------------------------------------------
    def cliques_containing(self, v: int, **kw) -> Response:
        """Clique ids containing vertex ``v``."""
        return self.request("cliques_containing", v=v, **kw)

    def cliques_containing_edge(self, u: int, v: int, **kw) -> Response:
        """Clique ids containing the edge ``(u, v)``."""
        return self.request("cliques_containing_edge", u=u, v=v, **kw)

    def clique(self, clique_id: int, **kw) -> Response:
        """The vertex list of one clique id."""
        return self.request("clique", clique_id=clique_id, **kw)

    def membership(self, vertices, **kw) -> Response:
        """Clique ids containing every vertex of ``vertices``."""
        return self.request("membership", vertices=sorted(set(vertices)), **kw)

    def top_k_largest(self, k: int, **kw) -> Response:
        """The ``k`` largest cliques."""
        return self.request("top_k_largest", k=k, **kw)

    def stats(self, **kw) -> Response:
        """Index statistics."""
        return self.request("stats", **kw)

    def health(self, **kw) -> dict:
        """The server's ``health`` probe payload (admission-exempt)."""
        return dict(self.request("health", **kw).result)  # type: ignore[arg-type]

    def ready(self, **kw) -> bool:
        """Whether the server reports itself ready for new traffic."""
        return bool(dict(self.request("ready", **kw).result).get("ready"))  # type: ignore[arg-type]

    # Change subscriptions ----------------------------------------------
    def subscribe(self, v: int, **kw) -> int:
        """Subscribe to cliques containing ``v`` appearing or dying.

        Returns the subscription id stamped on every pushed event; only
        servers fronting a live store accept this.
        """
        return int(self.request("subscribe", v=v, **kw).result)  # type: ignore[arg-type]

    def unsubscribe(self, subscription: int, **kw) -> bool:
        """Cancel a subscription; returns whether the server knew it."""
        return bool(self.request("unsubscribe", subscription=subscription, **kw).result)

    def next_event(self, timeout: float | None = None) -> dict | None:
        """The next pushed subscription event, or ``None`` on timeout.

        Events already routed aside during :meth:`request` calls drain
        first; otherwise the socket is read for up to ``timeout`` seconds
        (``None`` blocks under the connection default).
        """
        if self._events:
            return self._events.popleft()
        effective = timeout if timeout is not None else self._timeout
        try:
            line = self._read_line(effective)
        except OSError as exc:
            raise ServiceUnavailableError(
                f"transport failure while waiting for events: {exc}"
            ) from exc
        if line is None:
            return None
        if not line:
            raise ServiceUnavailableError(
                "server closed the connection while waiting for events"
            )
        message = self._parse_line(line)
        if "id" in message:
            raise ServiceProtocolError(
                f"unsolicited response line while waiting for events: {message!r}"
            )
        return message
