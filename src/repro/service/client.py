"""Blocking JSON-lines client for :class:`CliqueQueryServer`.

One socket, one request/response exchange at a time — the simplest
correct client for the line protocol.  Server-side errors come back as
:class:`~repro.errors.ServiceError` (or
:class:`~repro.errors.QueryTimeoutError` when the server reports a
deadline miss); transport and framing problems raise
:class:`~repro.errors.ServiceProtocolError`.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass

from repro.errors import QueryTimeoutError, ServiceError, ServiceProtocolError


@dataclass(frozen=True)
class Response:
    """One successful server response."""

    result: object
    degraded: bool
    stale: bool
    elapsed_ms: float


class CliqueQueryClient:
    """Talk to a running clique query server."""

    def __init__(
        self, host: str, port: int, timeout_seconds: float | None = 30.0
    ) -> None:
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout_seconds)
        except OSError as exc:
            raise ServiceProtocolError(
                f"cannot connect to clique service at {host}:{port}: {exc}"
            ) from exc
        self._reader = self._sock.makefile("rb")
        self._next_id = 0

    def close(self) -> None:
        """Close the connection."""
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "CliqueQueryClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def request(
        self, op: str, timeout: float | None = None, **args
    ) -> Response:
        """Send one request and block for its response."""
        self._next_id += 1
        payload: dict = {"id": self._next_id, "op": op, "args": args}
        if timeout is not None:
            payload["timeout"] = timeout
        try:
            self._sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
            line = self._reader.readline()
        except OSError as exc:
            raise ServiceProtocolError(f"transport failure during {op}: {exc}") from exc
        if not line:
            raise ServiceProtocolError(f"server closed the connection during {op}")
        try:
            response = json.loads(line)
        except ValueError as exc:
            raise ServiceProtocolError(f"unparseable response line: {line!r}") from exc
        if not isinstance(response, dict) or response.get("id") != self._next_id:
            raise ServiceProtocolError(
                f"response id {response.get('id')!r} does not match request "
                f"{self._next_id}"
            )
        if not response.get("ok"):
            message = str(response.get("error", "unknown server error"))
            if response.get("timeout"):
                raise QueryTimeoutError(message)
            raise ServiceError(message)
        return Response(
            result=response.get("result"),
            degraded=bool(response.get("degraded")),
            stale=bool(response.get("stale")),
            elapsed_ms=float(response.get("elapsed_ms", 0.0)),
        )

    # Convenience wrappers ----------------------------------------------
    def cliques_containing(self, v: int, **kw) -> Response:
        """Clique ids containing vertex ``v``."""
        return self.request("cliques_containing", v=v, **kw)

    def cliques_containing_edge(self, u: int, v: int, **kw) -> Response:
        """Clique ids containing the edge ``(u, v)``."""
        return self.request("cliques_containing_edge", u=u, v=v, **kw)

    def clique(self, clique_id: int, **kw) -> Response:
        """The vertex list of one clique id."""
        return self.request("clique", clique_id=clique_id, **kw)

    def membership(self, vertices, **kw) -> Response:
        """Clique ids containing every vertex of ``vertices``."""
        return self.request("membership", vertices=sorted(set(vertices)), **kw)

    def top_k_largest(self, k: int, **kw) -> Response:
        """The ``k`` largest cliques."""
        return self.request("top_k_largest", k=k, **kw)

    def stats(self, **kw) -> Response:
        """Index statistics."""
        return self.request("stats", **kw)
