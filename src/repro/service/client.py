"""Blocking JSON-lines client for :class:`CliqueQueryServer`.

One socket, one request/response exchange at a time — the simplest
correct client for the line protocol.  Server-side errors come back as
:class:`~repro.errors.ServiceError` (or
:class:`~repro.errors.QueryTimeoutError` when the server reports a
deadline miss); transport and framing problems raise
:class:`~repro.errors.ServiceProtocolError`.

When the server fronts a live store, the client can also
:meth:`~CliqueQueryClient.subscribe` to change notifications.  Pushed
event lines carry no ``"id"`` key; the client routes them into an event
queue as they arrive — whether that happens while blocked inside
:meth:`~CliqueQueryClient.next_event` or interleaved with a pending
request's response — so no line is ever misread as the wrong kind.
"""

from __future__ import annotations

import json
import socket
from collections import deque
from dataclasses import dataclass

from repro.errors import QueryTimeoutError, ServiceError, ServiceProtocolError


@dataclass(frozen=True)
class Response:
    """One successful server response."""

    result: object
    degraded: bool
    stale: bool
    elapsed_ms: float


class CliqueQueryClient:
    """Talk to a running clique query server."""

    def __init__(
        self, host: str, port: int, timeout_seconds: float | None = 30.0
    ) -> None:
        self._timeout = timeout_seconds
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout_seconds)
        except OSError as exc:
            raise ServiceProtocolError(
                f"cannot connect to clique service at {host}:{port}: {exc}"
            ) from exc
        self._buffer = bytearray()
        self._events: deque[dict] = deque()
        self._next_id = 0

    def close(self) -> None:
        """Close the connection."""
        self._sock.close()

    def __enter__(self) -> "CliqueQueryClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Framing
    # ------------------------------------------------------------------
    def _read_line(self, timeout: float | None) -> bytes | None:
        """One ``\\n``-terminated line; ``None`` on timeout, ``b""`` on EOF.

        The client owns its buffering (no ``makefile``): a timeout mid-
        line leaves the partial bytes in ``_buffer`` instead of losing
        them inside a file object's internals.
        """
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[: newline + 1])
                del self._buffer[: newline + 1]
                return line
            self._sock.settimeout(timeout)
            try:
                chunk = self._sock.recv(65536)
            except TimeoutError:
                return None
            if not chunk:
                return b""
            self._buffer += chunk

    def _parse_line(self, line: bytes) -> dict:
        try:
            message = json.loads(line)
        except ValueError as exc:
            raise ServiceProtocolError(f"unparseable response line: {line!r}") from exc
        if not isinstance(message, dict):
            raise ServiceProtocolError(f"expected a JSON object line, got {line!r}")
        return message

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def request(
        self, op: str, timeout: float | None = None, **args
    ) -> Response:
        """Send one request and block for its response.

        Subscription events arriving while the response is in flight are
        queued for :meth:`next_event`, never dropped.
        """
        self._next_id += 1
        payload: dict = {"id": self._next_id, "op": op, "args": args}
        if timeout is not None:
            payload["timeout"] = timeout
        try:
            self._sock.settimeout(self._timeout)
            self._sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        except OSError as exc:
            raise ServiceProtocolError(f"transport failure during {op}: {exc}") from exc
        while True:
            try:
                line = self._read_line(self._timeout)
            except OSError as exc:
                raise ServiceProtocolError(
                    f"transport failure during {op}: {exc}"
                ) from exc
            if line is None:
                raise ServiceProtocolError(f"timed out waiting for {op} response")
            if not line:
                raise ServiceProtocolError(f"server closed the connection during {op}")
            message = self._parse_line(line)
            if "id" not in message:
                self._events.append(message)
                continue
            break
        if message.get("id") != self._next_id:
            raise ServiceProtocolError(
                f"response id {message.get('id')!r} does not match request "
                f"{self._next_id}"
            )
        if not message.get("ok"):
            error = str(message.get("error", "unknown server error"))
            if message.get("timeout"):
                raise QueryTimeoutError(error)
            raise ServiceError(error)
        return Response(
            result=message.get("result"),
            degraded=bool(message.get("degraded")),
            stale=bool(message.get("stale")),
            elapsed_ms=float(message.get("elapsed_ms", 0.0)),
        )

    # Convenience wrappers ----------------------------------------------
    def cliques_containing(self, v: int, **kw) -> Response:
        """Clique ids containing vertex ``v``."""
        return self.request("cliques_containing", v=v, **kw)

    def cliques_containing_edge(self, u: int, v: int, **kw) -> Response:
        """Clique ids containing the edge ``(u, v)``."""
        return self.request("cliques_containing_edge", u=u, v=v, **kw)

    def clique(self, clique_id: int, **kw) -> Response:
        """The vertex list of one clique id."""
        return self.request("clique", clique_id=clique_id, **kw)

    def membership(self, vertices, **kw) -> Response:
        """Clique ids containing every vertex of ``vertices``."""
        return self.request("membership", vertices=sorted(set(vertices)), **kw)

    def top_k_largest(self, k: int, **kw) -> Response:
        """The ``k`` largest cliques."""
        return self.request("top_k_largest", k=k, **kw)

    def stats(self, **kw) -> Response:
        """Index statistics."""
        return self.request("stats", **kw)

    # Change subscriptions ----------------------------------------------
    def subscribe(self, v: int, **kw) -> int:
        """Subscribe to cliques containing ``v`` appearing or dying.

        Returns the subscription id stamped on every pushed event; only
        servers fronting a live store accept this.
        """
        return int(self.request("subscribe", v=v, **kw).result)  # type: ignore[arg-type]

    def unsubscribe(self, subscription: int, **kw) -> bool:
        """Cancel a subscription; returns whether the server knew it."""
        return bool(self.request("unsubscribe", subscription=subscription, **kw).result)

    def next_event(self, timeout: float | None = None) -> dict | None:
        """The next pushed subscription event, or ``None`` on timeout.

        Events already routed aside during :meth:`request` calls drain
        first; otherwise the socket is read for up to ``timeout`` seconds
        (``None`` blocks under the connection default).
        """
        if self._events:
            return self._events.popleft()
        effective = timeout if timeout is not None else self._timeout
        try:
            line = self._read_line(effective)
        except OSError as exc:
            raise ServiceProtocolError(
                f"transport failure while waiting for events: {exc}"
            ) from exc
        if line is None:
            return None
        if not line:
            raise ServiceProtocolError(
                "server closed the connection while waiting for events"
            )
        message = self._parse_line(line)
        if "id" in message:
            raise ServiceProtocolError(
                f"unsolicited response line while waiting for events: {message!r}"
            )
        return message
