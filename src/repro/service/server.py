"""Stdlib TCP/JSON-lines server over a :class:`CliqueQueryEngine`.

Wire protocol — one JSON object per ``\\n``-terminated line, both ways::

    -> {"id": 7, "op": "cliques_containing", "args": {"v": 12}}
    <- {"id": 7, "ok": true, "result": [0, 3, 19], "degraded": false,
        "stale": false, "elapsed_ms": 0.41}

    -> {"id": 8, "op": "nonsense", "args": {}}
    <- {"id": 8, "ok": false, "error": "unknown operation 'nonsense'..."}

Operations mirror :data:`repro.service.engine.OPERATIONS`; an optional
``"timeout"`` field (seconds) overrides the engine default for that
request.  Errors — bad JSON, unknown ops, timeouts, storage failures
that even the degraded path could not absorb — are *responses*, never
dropped connections: every request gets exactly one reply, which is what
the concurrent contract test in ``tests/service/`` holds the server to.

When the engine serves a live store, two connection-level operations
join the vocabulary::

    -> {"id": 9, "op": "subscribe", "args": {"v": 12}}
    <- {"id": 9, "ok": true, "result": 1, "subscription": 1}
    ...
    <- {"subscription": 1, "event": "clique_added", "vertex": 12,
        "clique": [4, 12, 31], "seq": 207}

Pushed event lines carry no ``"id"`` key — that is how clients tell them
from responses.  They interleave with responses on the same socket (a
per-connection write lock keeps lines whole) and stop at
``"unsubscribe"`` (``{"args": {"subscription": 1}}``) or disconnect,
which cancels every subscription the connection held.

The server is a :class:`socketserver.ThreadingTCPServer` (one daemon
thread per connection); the engine underneath provides the thread
safety, caching and deduplication.  ``repro-mce serve`` and
``repro-mce live`` wrap this class for the command line.
"""

from __future__ import annotations

import json
import socketserver
import threading
from types import SimpleNamespace

from repro import metrics
from repro.errors import QueryTimeoutError, ReproError
from repro.service.engine import OPERATIONS, CliqueQueryEngine

_METRICS = metrics.bound(
    lambda registry: SimpleNamespace(
        connections=registry.counter(
            "repro_server_connections_total", "client connections accepted"
        ),
        requests=registry.counter(
            "repro_server_requests_total", "request lines received"
        ),
        responses_ok=registry.counter(
            "repro_server_responses_ok_total", "successful responses sent"
        ),
        responses_error=registry.counter(
            "repro_server_responses_error_total", "error responses sent"
        ),
        subscriptions=registry.counter(
            "repro_server_subscriptions_total", "change subscriptions accepted"
        ),
        events_pushed=registry.counter(
            "repro_server_events_pushed_total",
            "subscription event lines pushed to clients",
        ),
    )
)


class _Handler(socketserver.StreamRequestHandler):
    """One connection: request/response lines plus pushed event lines.

    Responses and subscription events share the socket; ``_write_lock``
    keeps each line atomic no matter which thread (connection handler or
    store writer) is pushing.
    """

    def setup(self) -> None:  # pragma: no cover — exercised via the server
        super().setup()
        self._write_lock = threading.Lock()
        self._tokens: dict[int, int] = {}
        self._next_subscription = 0

    def push(self, payload: dict) -> bool:
        """Write one JSON line; returns whether the socket took it."""
        data = json.dumps(payload).encode("utf-8") + b"\n"
        try:
            with self._write_lock:
                self.wfile.write(data)
                self.wfile.flush()
        except (OSError, ValueError):
            return False
        _METRICS().events_pushed.inc()
        return True

    def handle(self) -> None:  # pragma: no cover — exercised via the server
        _METRICS().connections.inc()
        while True:
            try:
                line = self.rfile.readline()
            except OSError:
                return
            if not line:
                return
            if not line.strip():
                continue
            response = self.server.engine_respond(line, connection=self)  # type: ignore[attr-defined]
            try:
                with self._write_lock:
                    self.wfile.write(response)
                    self.wfile.flush()
            except OSError:
                return

    def finish(self) -> None:  # pragma: no cover — exercised via the server
        # A vanished connection takes its subscriptions with it.
        for token in self._tokens.values():
            try:
                self.server.engine.unsubscribe(token)  # type: ignore[attr-defined]
            except ReproError:
                pass
        self._tokens.clear()
        super().finish()


class CliqueQueryServer(socketserver.ThreadingTCPServer):
    """Serve one :class:`CliqueQueryEngine` over TCP JSON-lines."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        engine: CliqueQueryEngine,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.engine = engine
        self._thread: threading.Thread | None = None
        super().__init__((host, port), _Handler)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (port resolved when 0 was requested)."""
        return self.server_address[0], self.server_address[1]

    def start(self) -> "CliqueQueryServer":
        """Serve on a background daemon thread; returns self."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self.serve_forever, name="clique-query-server", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the serve loop down and close the listening socket."""
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "CliqueQueryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def engine_respond(self, line: bytes, connection: "_Handler | None" = None) -> bytes:
        """Answer one request line with one response line (never raises).

        ``connection`` carries the per-connection subscription state; the
        stateless query operations ignore it, so tests may call this
        method directly without a socket.
        """
        bundle = _METRICS()
        bundle.requests.inc()
        request_id = None
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            request_id = request.get("id")
            op = request.get("op")
            args = request.get("args") or {}
            if not isinstance(args, dict):
                raise ValueError("'args' must be a JSON object")
            if op in ("subscribe", "unsubscribe"):
                payload = self._respond_subscription(
                    op, args, request_id, connection
                )
                bundle.responses_ok.inc()
                return json.dumps(payload).encode("utf-8") + b"\n"
            if not isinstance(op, str) or op not in OPERATIONS:
                raise ValueError(
                    f"unknown operation {op!r}; choose from "
                    f"{list(OPERATIONS) + ['subscribe', 'unsubscribe']}"
                )
            timeout = request.get("timeout")
            result = self.engine.query(
                op,
                timeout_seconds=float(timeout) if timeout is not None else None,
                **args,
            )
            payload = {
                "id": request_id,
                "ok": True,
                "result": result.value,
                "degraded": result.degraded,
                "stale": result.stale,
                "elapsed_ms": round(result.elapsed_seconds * 1000.0, 3),
            }
            bundle.responses_ok.inc()
        except QueryTimeoutError as exc:
            payload = {"id": request_id, "ok": False, "error": str(exc), "timeout": True}
            bundle.responses_error.inc()
        except (ReproError, ValueError, TypeError) as exc:
            payload = {"id": request_id, "ok": False, "error": str(exc)}
            bundle.responses_error.inc()
        return json.dumps(payload).encode("utf-8") + b"\n"

    def _respond_subscription(
        self, op: str, args: dict, request_id, connection: "_Handler | None"
    ) -> dict:
        """Handle the connection-scoped subscription operations."""
        if connection is None:
            raise ValueError(f"{op!r} needs a persistent client connection")
        if op == "subscribe":
            if "v" not in args:
                raise ValueError("subscribe needs args {'v': <vertex>}")
            vertex = int(args["v"])
            connection._next_subscription += 1
            subscription = connection._next_subscription

            def deliver(event, _sid=subscription, _conn=connection) -> None:
                _conn.push({"subscription": _sid, **event.to_payload()})

            token = self.engine.subscribe(vertex, deliver)
            connection._tokens[subscription] = token
            _METRICS().subscriptions.inc()
            return {
                "id": request_id,
                "ok": True,
                "result": subscription,
                "subscription": subscription,
            }
        if "subscription" not in args:
            raise ValueError("unsubscribe needs args {'subscription': <id>}")
        subscription = int(args["subscription"])
        token = connection._tokens.pop(subscription, None)
        cancelled = token is not None and self.engine.unsubscribe(token)
        return {"id": request_id, "ok": True, "result": bool(cancelled)}
