"""Stdlib TCP/JSON-lines server over a :class:`CliqueQueryEngine`.

Wire protocol — one JSON object per ``\\n``-terminated line, both ways::

    -> {"id": 7, "op": "cliques_containing", "args": {"v": 12}}
    <- {"id": 7, "ok": true, "result": [0, 3, 19], "degraded": false,
        "stale": false, "elapsed_ms": 0.41}

    -> {"id": 8, "op": "nonsense", "args": {}}
    <- {"id": 8, "ok": false, "error": "unknown operation 'nonsense'..."}

Operations mirror :data:`repro.service.engine.OPERATIONS`; an optional
``"timeout"`` field (seconds) overrides the engine default for that
request.  Errors — bad JSON, oversized request lines, unknown ops,
timeouts, storage failures that even the degraded path could not absorb
— are *responses*, never dropped connections: every request gets exactly
one reply, which is what the concurrent contract test in
``tests/service/`` holds the server to.

Overload safety (the serving-tier robustness issue):

* **Bounded admission** — at most ``max_in_flight`` query operations
  execute at once; excess requests are *shed* with a typed reply
  (``"overloaded": true`` plus a ``retry_after_ms`` hint the client's
  backoff honours) instead of queueing without bound.
* **Bounded request lines** — a line longer than ``max_request_bytes``
  is discarded incrementally (never buffered whole) and answered with a
  typed error; the connection survives.
* **Bounded event queues** — subscription events are pushed through a
  per-connection bounded queue drained by a dedicated sender thread, so
  a slow consumer can never block the store's writer; a consumer whose
  queue overflows is disconnected (the slow-consumer policy every
  production pub/sub converges on).
* **``health`` / ``ready``** — admission-exempt probe operations
  reporting in-flight load, drain state, and the live-store supervisor's
  ``degraded`` flag.
* **Graceful drain** — :meth:`CliqueQueryServer.drain` stops accepting,
  sheds new requests with a ``draining`` reply, waits up to
  ``drain_timeout`` for in-flight requests, flushes the live store's
  WAL, and closes cleanly (``repro-mce serve``/``live`` wire this to
  SIGTERM).

A :class:`~repro.faults.FaultPlan` with ``"net"`` rules makes the
network misbehave deterministically: connection resets mid-line, slow
writes, accept stalls (see :mod:`repro.faults`).

The server is a :class:`socketserver.ThreadingTCPServer` (one daemon
thread per connection); the engine underneath provides the thread
safety, caching and deduplication.
"""

from __future__ import annotations

import json
import queue
import socket
import socketserver
import struct
import threading
import time
from types import SimpleNamespace
from typing import TYPE_CHECKING

from repro import metrics
from repro.errors import QueryTimeoutError, ReproError
from repro.service.engine import OPERATIONS, CliqueQueryEngine

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults import FaultPlan

#: Server-level operations answered without touching the engine's
#: admission-controlled query path.
PROBE_OPERATIONS = ("health", "ready")

_METRICS = metrics.bound(
    lambda registry: SimpleNamespace(
        connections=registry.counter(
            "repro_server_connections_total", "client connections accepted"
        ),
        requests=registry.counter(
            "repro_server_requests_total", "request lines received"
        ),
        responses_ok=registry.counter(
            "repro_server_responses_ok_total", "successful responses sent"
        ),
        responses_error=registry.counter(
            "repro_server_responses_error_total", "error responses sent"
        ),
        shed=registry.counter(
            "repro_server_shed_total",
            "requests shed by admission control (overload or drain)",
        ),
        oversized=registry.counter(
            "repro_server_oversized_requests_total",
            "request lines rejected for exceeding max_request_bytes",
        ),
        in_flight=registry.gauge(
            "repro_server_in_flight_requests", "query operations currently executing"
        ),
        subscriptions=registry.counter(
            "repro_server_subscriptions_total", "change subscriptions accepted"
        ),
        events_pushed=registry.counter(
            "repro_server_events_pushed_total",
            "subscription event lines pushed to clients",
        ),
        slow_consumers=registry.counter(
            "repro_server_slow_consumer_disconnects_total",
            "connections dropped because their event queue overflowed",
        ),
        net_faults=registry.counter(
            "repro_server_net_faults_total", "injected network faults fired"
        ),
        drains=registry.counter(
            "repro_server_drains_total", "graceful drains completed"
        ),
    )
)

#: Sentinel telling a connection's event-sender thread to exit.
_SENDER_STOP = object()


class _Handler(socketserver.StreamRequestHandler):
    """One connection: request/response lines plus pushed event lines.

    Responses are written by the connection thread; subscription events
    by a per-connection sender thread draining a bounded queue.  Both
    share ``_write_lock`` so each line stays atomic on the socket.
    """

    def setup(self) -> None:  # pragma: no cover — exercised via the server
        super().setup()
        self._write_lock = threading.Lock()
        self._tokens: dict[int, int] = {}
        self._next_subscription = 0
        self._closing = False
        self._events: queue.Queue = queue.Queue(
            maxsize=self.server.event_queue_limit  # type: ignore[attr-defined]
        )
        self._sender: threading.Thread | None = None
        self.server._track_handler(self)  # type: ignore[attr-defined]

    # -- outbound ------------------------------------------------------
    def _write_line(self, data: bytes) -> bool:
        """One framed line onto the socket; returns whether it was taken."""
        try:
            with self._write_lock:
                self.wfile.write(data)
                self.wfile.flush()
        except (OSError, ValueError):
            return False
        return True

    def push(self, payload: dict) -> bool:
        """Enqueue one event line for the sender thread.

        Called from the live store's writer thread, so it must never
        block: a full queue marks this connection a slow consumer and
        disconnects it instead of stalling the writer.
        """
        if self._closing:
            return False
        try:
            self._events.put_nowait(payload)
        except queue.Full:
            _METRICS().slow_consumers.inc()
            self.disconnect()
            return False
        if self._sender is None:
            # First event for this connection: start its sender thread.
            with self._write_lock:
                if self._sender is None:
                    self._sender = threading.Thread(
                        target=self._drain_events,
                        name="clique-event-sender",
                        daemon=True,
                    )
                    self._sender.start()
        return True

    def _drain_events(self) -> None:
        while True:
            payload = self._events.get()
            if payload is _SENDER_STOP:
                return
            data = json.dumps(payload).encode("utf-8") + b"\n"
            if not self._write_line(data):
                return
            _METRICS().events_pushed.inc()

    def disconnect(self) -> None:
        """Force the connection shut (drain, slow consumer, net fault)."""
        self._closing = True
        try:
            self.connection.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.connection.close()
        except OSError:
            pass

    def reset_connection(self) -> None:
        """Close with an RST (SO_LINGER 0) — the injected ``conn_reset``."""
        self._closing = True
        try:
            self.connection.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
        except OSError:
            pass
        try:
            self.connection.close()
        except OSError:
            pass

    # -- inbound -------------------------------------------------------
    def _read_bounded_line(self) -> bytes | None:
        """One request line of at most ``max_request_bytes`` bytes.

        Returns ``None`` at EOF and ``b""`` for an oversized line (whose
        remainder has been consumed in bounded chunks, never buffered
        whole).
        """
        limit = self.server.max_request_bytes  # type: ignore[attr-defined]
        line = self.rfile.readline(limit + 1)
        if not line:
            return None
        if len(line) <= limit or line.endswith(b"\n"):
            return line
        # Oversized: discard the rest of the line chunk by chunk.
        while True:
            chunk = self.rfile.readline(65536)
            if not chunk or chunk.endswith(b"\n"):
                return b""

    def handle(self) -> None:  # pragma: no cover — exercised via the server
        _METRICS().connections.inc()
        server: "CliqueQueryServer" = self.server  # type: ignore[assignment]
        fault = server._draw_net_fault("accept")
        if fault is not None and fault.kind == "accept_stall":
            time.sleep(fault.latency_seconds)
        while True:
            try:
                line = self._read_bounded_line()
            except OSError:
                return
            if line is None:
                return
            if line == b"":
                _METRICS().oversized.inc()
                response = server.format_error(
                    None,
                    f"request line exceeds {server.max_request_bytes} bytes",
                )
            elif not line.strip():
                continue
            else:
                response = server.engine_respond(line, connection=self)
            if not self._send_response(response):
                return

    def _send_response(self, response: bytes) -> bool:
        """Write one response line, applying any armed ``net`` fault."""
        server: "CliqueQueryServer" = self.server  # type: ignore[assignment]
        fault = server._draw_net_fault(f"write:{self.client_address}")
        if fault is not None:
            if fault.kind == "conn_reset":
                self.reset_connection()
                return False
            if fault.kind == "partial_line":
                cut = max(1, min(len(response) - 1, int(fault.fraction * len(response))))
                self._write_line(response[:cut])
                self.reset_connection()
                return False
            if fault.kind == "slow_write":
                # Server-side slow loris: the reply completes, slowly.
                step = max(1, len(response) // 8)
                pause = fault.latency_seconds / 8
                for start in range(0, len(response), step):
                    if not self._write_line(response[start : start + step]):
                        return False
                    time.sleep(pause)
                return True
        return self._write_line(response)

    def finish(self) -> None:  # pragma: no cover — exercised via the server
        self._closing = True
        # A vanished connection takes its subscriptions with it.
        for token in self._tokens.values():
            try:
                self.server.engine.unsubscribe(token)  # type: ignore[attr-defined]
            except ReproError:
                pass
        self._tokens.clear()
        if self._sender is not None:
            try:
                self._events.put_nowait(_SENDER_STOP)
            except queue.Full:
                pass  # the sender dies on its next failed write
        self.server._untrack_handler(self)  # type: ignore[attr-defined]
        super().finish()


class CliqueQueryServer(socketserver.ThreadingTCPServer):
    """Serve one :class:`CliqueQueryEngine` over TCP JSON-lines."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        engine: CliqueQueryEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_in_flight: int = 64,
        retry_after_ms: float = 50.0,
        max_request_bytes: int = 1 << 20,
        event_queue_limit: int = 256,
        drain_timeout_seconds: float = 10.0,
        fault_plan: "FaultPlan | None" = None,
        supervisor=None,
    ) -> None:
        self.engine = engine
        self.max_in_flight = max(1, int(max_in_flight))
        self.retry_after_ms = float(retry_after_ms)
        self.max_request_bytes = max(64, int(max_request_bytes))
        self.event_queue_limit = max(1, int(event_queue_limit))
        self.drain_timeout_seconds = float(drain_timeout_seconds)
        self._faults = fault_plan
        self._supervisor = supervisor
        self._thread: threading.Thread | None = None
        self._admission_lock = threading.Lock()
        self._in_flight = 0
        self._draining = False
        self._drained = threading.Event()
        self._handlers: set[_Handler] = set()
        self._handlers_lock = threading.Lock()
        super().__init__((host, port), _Handler)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (port resolved when 0 was requested)."""
        return self.server_address[0], self.server_address[1]

    @property
    def in_flight(self) -> int:
        """Query operations currently executing."""
        with self._admission_lock:
            return self._in_flight

    @property
    def draining(self) -> bool:
        """Whether a graceful drain has started."""
        with self._admission_lock:
            return self._draining

    def start(self) -> "CliqueQueryServer":
        """Serve on a background daemon thread; returns self."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self.serve_forever, name="clique-query-server", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the serve loop down and close the listening socket."""
        self.shutdown()
        self.server_close()
        with self._handlers_lock:
            handlers = list(self._handlers)
        for handler in handlers:
            handler.disconnect()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def drain(self, timeout_seconds: float | None = None) -> bool:
        """Gracefully drain: stop accepting, finish in-flight, flush, close.

        New requests on existing connections are shed with a
        ``draining`` reply while in-flight ones run to completion (up to
        ``timeout_seconds``, default ``drain_timeout_seconds``).  A live
        store's WAL is flushed before the sockets close, so an operator
        SIGTERM never loses an acknowledged update.  Returns whether
        every in-flight request finished inside the timeout.
        """
        timeout = (
            self.drain_timeout_seconds if timeout_seconds is None else timeout_seconds
        )
        with self._admission_lock:
            already = self._draining
            self._draining = True
            idle = self._in_flight == 0
        if idle:
            self._drained.set()
        if not already:
            self.shutdown()  # stop accepting new connections
        completed = self._drained.wait(timeout)
        flush = getattr(self.engine.index, "flush_wal", None)
        if callable(flush):
            flush()
        with self._handlers_lock:
            handlers = list(self._handlers)
        for handler in handlers:
            handler.disconnect()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        _METRICS().drains.inc()
        return completed

    def __enter__(self) -> "CliqueQueryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def _admit(self) -> str | None:
        """Reserve one in-flight slot; returns a shed reason when full."""
        with self._admission_lock:
            if self._draining:
                return "draining"
            if self._in_flight >= self.max_in_flight:
                return "overloaded"
            self._in_flight += 1
        _METRICS().in_flight.set(self._in_flight)
        return None

    def _release(self) -> None:
        with self._admission_lock:
            self._in_flight -= 1
            drained = self._draining and self._in_flight <= 0
        _METRICS().in_flight.set(max(0, self._in_flight))
        if drained:
            self._drained.set()

    def _shed_payload(self, request_id, reason: str) -> dict:
        _METRICS().shed.inc()
        return {
            "id": request_id,
            "ok": False,
            "error": (
                "server is draining; retry against a replica"
                if reason == "draining"
                else f"server overloaded: {self.max_in_flight} requests in flight"
            ),
            "overloaded": True,
            "draining": reason == "draining",
            "retry_after_ms": self.retry_after_ms,
        }

    # ------------------------------------------------------------------
    # Connection bookkeeping and fault injection
    # ------------------------------------------------------------------
    def _track_handler(self, handler: _Handler) -> None:
        with self._handlers_lock:
            self._handlers.add(handler)

    def _untrack_handler(self, handler: _Handler) -> None:
        with self._handlers_lock:
            self._handlers.discard(handler)

    def _draw_net_fault(self, path: str):
        if self._faults is None:
            return None
        fault = self._faults.draw("net", path=path)
        if fault is not None:
            _METRICS().net_faults.inc()
        return fault

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    @staticmethod
    def format_error(request_id, message: str, **extra) -> bytes:
        """One error response line (shared with the oversized-line path)."""
        _METRICS().responses_error.inc()
        payload = {"id": request_id, "ok": False, "error": message, **extra}
        return json.dumps(payload).encode("utf-8") + b"\n"

    def health_payload(self) -> dict:
        """The ``health`` probe: engine, store, admission, supervisor."""
        with self._admission_lock:
            in_flight = self._in_flight
            draining = self._draining
        payload = {
            "draining": draining,
            "in_flight": in_flight,
            "max_in_flight": self.max_in_flight,
        }
        payload.update(self.engine.health())
        degraded = False
        if self._supervisor is not None:
            supervisor = self._supervisor.to_payload()
            payload["supervisor"] = supervisor
            degraded = bool(supervisor.get("degraded"))
        payload["degraded"] = degraded
        payload["status"] = (
            "draining" if draining else ("degraded" if degraded else "ok")
        )
        return payload

    def ready_payload(self) -> dict:
        """The ``ready`` probe: can this process take new traffic?"""
        health = self.health_payload()
        reason = None
        if health["draining"]:
            reason = "draining"
        elif health["degraded"]:
            reason = "degraded: supervisor restarting a dead worker"
        return {"ready": reason is None, "reason": reason}

    def engine_respond(self, line: bytes, connection: "_Handler | None" = None) -> bytes:
        """Answer one request line with one response line (never raises).

        ``connection`` carries the per-connection subscription state; the
        stateless query operations ignore it, so tests may call this
        method directly without a socket.
        """
        bundle = _METRICS()
        bundle.requests.inc()
        request_id = None
        admitted = False
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            request_id = request.get("id")
            op = request.get("op")
            args = request.get("args") or {}
            if not isinstance(args, dict):
                raise ValueError("'args' must be a JSON object")
            if op in PROBE_OPERATIONS:
                # Probes bypass admission: an overloaded or draining
                # server must still answer its health checks.
                value = (
                    self.health_payload() if op == "health" else self.ready_payload()
                )
                payload = {"id": request_id, "ok": True, "result": value}
                bundle.responses_ok.inc()
                return json.dumps(payload).encode("utf-8") + b"\n"
            if op in ("subscribe", "unsubscribe"):
                payload = self._respond_subscription(
                    op, args, request_id, connection
                )
                bundle.responses_ok.inc()
                return json.dumps(payload).encode("utf-8") + b"\n"
            if not isinstance(op, str) or op not in OPERATIONS:
                raise ValueError(
                    f"unknown operation {op!r}; choose from "
                    f"{list(OPERATIONS) + list(PROBE_OPERATIONS) + ['subscribe', 'unsubscribe']}"
                )
            shed_reason = self._admit()
            if shed_reason is not None:
                payload = self._shed_payload(request_id, shed_reason)
                bundle.responses_error.inc()
                return json.dumps(payload).encode("utf-8") + b"\n"
            admitted = True
            timeout = request.get("timeout")
            result = self.engine.query(
                op,
                timeout_seconds=float(timeout) if timeout is not None else None,
                **args,
            )
            payload = {
                "id": request_id,
                "ok": True,
                "result": result.value,
                "degraded": result.degraded,
                "stale": result.stale,
                "elapsed_ms": round(result.elapsed_seconds * 1000.0, 3),
            }
            bundle.responses_ok.inc()
        except QueryTimeoutError as exc:
            payload = {"id": request_id, "ok": False, "error": str(exc), "timeout": True}
            bundle.responses_error.inc()
        except (ReproError, ValueError, TypeError) as exc:
            payload = {"id": request_id, "ok": False, "error": str(exc)}
            bundle.responses_error.inc()
        finally:
            if admitted:
                self._release()
        return json.dumps(payload).encode("utf-8") + b"\n"

    def _respond_subscription(
        self, op: str, args: dict, request_id, connection: "_Handler | None"
    ) -> dict:
        """Handle the connection-scoped subscription operations."""
        if connection is None:
            raise ValueError(f"{op!r} needs a persistent client connection")
        if op == "subscribe":
            if "v" not in args:
                raise ValueError("subscribe needs args {'v': <vertex>}")
            vertex = int(args["v"])
            connection._next_subscription += 1
            subscription = connection._next_subscription

            def deliver(event, _sid=subscription, _conn=connection) -> None:
                _conn.push({"subscription": _sid, **event.to_payload()})

            token = self.engine.subscribe(vertex, deliver)
            connection._tokens[subscription] = token
            _METRICS().subscriptions.inc()
            return {
                "id": request_id,
                "ok": True,
                "result": subscription,
                "subscription": subscription,
            }
        if "subscription" not in args:
            raise ValueError("unsubscribe needs args {'subscription': <id>}")
        subscription = int(args["subscription"])
        token = connection._tokens.pop(subscription, None)
        cancelled = token is not None and self.engine.unsubscribe(token)
        return {"id": request_id, "ok": True, "result": bool(cancelled)}
