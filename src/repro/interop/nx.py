"""networkx bridge.

networkx is an optional convenience (and, in the test suite, an
independent oracle: ``networkx.find_cliques`` is a third-party MCE
implementation to cross-check against).  The import is deferred so the
library itself stays dependency-free.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph


def to_networkx(graph: AdjacencyGraph):
    """Convert to a ``networkx.Graph`` (vertices and edges preserved)."""
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - environment dependent
        raise GraphError("networkx is not installed") from exc
    nx_graph = networkx.Graph()
    nx_graph.add_nodes_from(graph.vertices())
    nx_graph.add_edges_from(graph.edges())
    return nx_graph


def from_networkx(nx_graph) -> AdjacencyGraph:
    """Convert from a ``networkx.Graph``.

    Directed and multi-graphs are rejected rather than silently collapsed;
    self-loops are rejected because cliques never contain them.
    """
    if nx_graph.is_directed() or nx_graph.is_multigraph():
        raise GraphError(
            "only simple undirected networkx graphs can be converted"
        )
    return AdjacencyGraph.from_edges(
        nx_graph.edges(), vertices=nx_graph.nodes()
    )
