"""Interoperability with common graph formats and libraries.

Real MCE users arrive with graphs in DIMACS or METIS files or as networkx
objects; these adapters move them in and out of the library's
:class:`~repro.graph.adjacency.AdjacencyGraph` without losing vertices.
The networkx bridge doubles as an *independent correctness oracle*: the
test suite cross-checks every enumerator against ``networkx.find_cliques``.
"""

from repro.interop.formats import (
    read_dimacs,
    read_metis,
    write_dimacs,
    write_metis,
)
from repro.interop.nx import from_networkx, to_networkx

__all__ = [
    "from_networkx",
    "read_dimacs",
    "read_metis",
    "to_networkx",
    "write_dimacs",
    "write_metis",
]
