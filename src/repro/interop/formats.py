"""DIMACS and METIS graph file formats.

Both formats are 1-indexed on disk; the adapters shift to the library's
0-indexed vertices and back, so a graph round-trips exactly.

* **DIMACS** (the clique/coloring challenge format): a ``p edge n m``
  problem line, then ``e u v`` edge lines.  ``c`` comment lines are
  skipped.
* **METIS**: a header ``n m [fmt]``, then line ``i`` lists the neighbors
  of vertex ``i``.  Only the unweighted format (fmt 0/absent) is
  supported; weighted variants raise rather than silently dropping data.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import StorageFormatError
from repro.graph.adjacency import AdjacencyGraph


# ---------------------------------------------------------------------------
# DIMACS
# ---------------------------------------------------------------------------
def read_dimacs(path: str | Path) -> AdjacencyGraph:
    """Parse a DIMACS ``p edge`` file into a graph (0-indexed vertices)."""
    graph = AdjacencyGraph()
    declared_vertices: int | None = None
    with open(path, "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("c"):
                continue
            parts = stripped.split()
            if parts[0] == "p":
                if len(parts) != 4 or parts[1] not in ("edge", "col"):
                    raise StorageFormatError(
                        f"{path}:{line_number}: malformed problem line {stripped!r}"
                    )
                declared_vertices = int(parts[2])
                for v in range(declared_vertices):
                    graph.add_vertex(v)
            elif parts[0] == "e":
                if declared_vertices is None:
                    raise StorageFormatError(
                        f"{path}:{line_number}: edge before problem line"
                    )
                if len(parts) != 3:
                    raise StorageFormatError(
                        f"{path}:{line_number}: malformed edge line {stripped!r}"
                    )
                u, v = int(parts[1]) - 1, int(parts[2]) - 1
                if not (0 <= u < declared_vertices and 0 <= v < declared_vertices):
                    raise StorageFormatError(
                        f"{path}:{line_number}: vertex out of declared range"
                    )
                graph.add_edge(u, v)
            else:
                raise StorageFormatError(
                    f"{path}:{line_number}: unknown record type {parts[0]!r}"
                )
    if declared_vertices is None:
        raise StorageFormatError(f"{path}: no 'p edge' problem line found")
    return graph


def write_dimacs(path: str | Path, graph: AdjacencyGraph) -> None:
    """Write a graph as DIMACS ``p edge`` (vertices renumbered 1..n)."""
    vertices = sorted(graph.vertices())
    index = {v: i + 1 for i, v in enumerate(vertices)}
    with open(path, "w", encoding="ascii") as handle:
        handle.write("c written by repro (H*-graph MCE reproduction)\n")
        handle.write(f"p edge {len(vertices)} {graph.num_edges}\n")
        for u, v in sorted(
            (min(index[a], index[b]), max(index[a], index[b]))
            for a, b in graph.edges()
        ):
            handle.write(f"e {u} {v}\n")


# ---------------------------------------------------------------------------
# METIS
# ---------------------------------------------------------------------------
def read_metis(path: str | Path) -> AdjacencyGraph:
    """Parse an unweighted METIS file into a graph (0-indexed vertices)."""
    with open(path, "r", encoding="ascii") as handle:
        lines = [
            line.rstrip("\n")
            for line in handle
            if not line.lstrip().startswith("%")
        ]
    # Drop leading blank lines before the header; an isolated vertex's
    # adjacency line is legitimately empty, so blanks after it stay.
    while lines and not lines[0].strip():
        lines.pop(0)
    if not lines:
        raise StorageFormatError(f"{path}: empty METIS file")
    header = lines[0].split()
    if len(header) < 2:
        raise StorageFormatError(f"{path}: malformed METIS header {lines[0]!r}")
    num_vertices, num_edges = int(header[0]), int(header[1])
    if len(header) >= 3 and header[2] not in ("0", "00", "000"):
        raise StorageFormatError(
            f"{path}: weighted METIS format {header[2]!r} is not supported"
        )
    adjacency_lines = lines[1:]
    while len(adjacency_lines) > num_vertices and not adjacency_lines[-1].strip():
        adjacency_lines.pop()
    if len(adjacency_lines) != num_vertices:
        raise StorageFormatError(
            f"{path}: header declares {num_vertices} vertices "
            f"but file has {len(adjacency_lines)} adjacency lines"
        )
    lines = [lines[0]] + adjacency_lines
    graph = AdjacencyGraph()
    for v in range(num_vertices):
        graph.add_vertex(v)
    for v, line in enumerate(lines[1:]):
        for token in line.split():
            u = int(token) - 1
            if not 0 <= u < num_vertices:
                raise StorageFormatError(
                    f"{path}: neighbor {token} of vertex {v + 1} out of range"
                )
            if u == v:
                raise StorageFormatError(f"{path}: self-loop on vertex {v + 1}")
            graph.add_edge(v, u)
    if graph.num_edges != num_edges:
        raise StorageFormatError(
            f"{path}: header declares {num_edges} edges, found {graph.num_edges}"
        )
    return graph


def write_metis(path: str | Path, graph: AdjacencyGraph) -> None:
    """Write a graph in unweighted METIS format (vertices renumbered)."""
    vertices = sorted(graph.vertices())
    index = {v: i + 1 for i, v in enumerate(vertices)}
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"{len(vertices)} {graph.num_edges}\n")
        for v in vertices:
            neighbors = sorted(index[u] for u in graph.neighbors(v))
            handle.write(" ".join(str(u) for u in neighbors))
            handle.write("\n")
