"""In-memory graph substrate.

This package provides the undirected-graph data structure used throughout the
library, together with the graph-analysis helpers the paper relies on:
induced subgraphs (Section 2), vertex orderings (Definition 8), traversal
statistics (Table 5), and power-law degree-distribution analysis
(Section 3.2, Eqs. (1)-(9)).
"""

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.cores import core_numbers, degeneracy, k_core
from repro.graph.ordering import (
    degeneracy_ordering,
    degree_ordering,
    hstar_vertex_order,
)
from repro.graph.powerlaw import (
    PowerLawFit,
    fit_rank_exponent,
    predicted_h,
    predicted_hstar_size_bounds,
)
from repro.graph.stats import (
    average_closeness,
    average_clustering,
    degree_histogram,
    local_clustering,
    reachability_fraction,
)

__all__ = [
    "AdjacencyGraph",
    "PowerLawFit",
    "average_closeness",
    "average_clustering",
    "core_numbers",
    "degeneracy_ordering",
    "degree_histogram",
    "degeneracy",
    "degree_ordering",
    "fit_rank_exponent",
    "k_core",
    "hstar_vertex_order",
    "local_clustering",
    "predicted_h",
    "predicted_hstar_size_bounds",
    "reachability_fraction",
]
