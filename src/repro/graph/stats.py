"""Traversal statistics used by the paper's Table 5.

The paper reports, per dataset, the average *closeness* of the h-vertices
(mean shortest-path distance to every reachable vertex) and their
*reachability* (fraction of ``V`` reachable from the h-vertex set).  Both
are computed with plain breadth-first search; closeness supports sampling
so large graphs stay tractable.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.graph.adjacency import AdjacencyGraph, Vertex


def bfs_distances(graph: AdjacencyGraph, source: Vertex) -> dict[Vertex, int]:
    """Shortest-path (hop) distances from ``source`` to reachable vertices."""
    distances = {source: 0}
    frontier = [source]
    depth = 0
    while frontier:
        depth += 1
        next_frontier: list[Vertex] = []
        for v in frontier:
            for u in graph.neighbors(v):
                if u not in distances:
                    distances[u] = depth
                    next_frontier.append(u)
        frontier = next_frontier
    return distances


def closeness(graph: AdjacencyGraph, vertex: Vertex) -> float:
    """Average distance from ``vertex`` to every *other* reachable vertex.

    Matches the paper's ``AVG_{v in V, dist(u,v) != inf} dist(u, v)``;
    returns ``0.0`` for a vertex with no reachable peers.
    """
    distances = bfs_distances(graph, vertex)
    if len(distances) <= 1:
        return 0.0
    total = sum(distances.values())  # source contributes 0
    return total / (len(distances) - 1)


def average_closeness(
    graph: AdjacencyGraph,
    vertices: Iterable[Vertex],
    sample_size: int | None = None,
    seed: int = 0,
) -> float:
    """Mean closeness over ``vertices``, optionally BFS-sampling a subset.

    Table 5 reports this for the h-vertex set.  With ``sample_size`` set, a
    deterministic sample (seeded) is used, which is the standard approach
    for closeness on large graphs.
    """
    pool = sorted(vertices)
    if not pool:
        return 0.0
    if sample_size is not None and sample_size < len(pool):
        rng = random.Random(seed)
        pool = rng.sample(pool, sample_size)
    return sum(closeness(graph, v) for v in pool) / len(pool)


def reachability_fraction(graph: AdjacencyGraph, sources: Iterable[Vertex]) -> float:
    """Fraction of all vertices reachable from the source set.

    Sources count as reached.  Table 5's "reachability (h-vertices)" row.
    """
    if graph.num_vertices == 0:
        return 0.0
    reached: set[Vertex] = set()
    frontier: list[Vertex] = []
    for s in sources:
        if s not in reached:
            reached.add(s)
            frontier.append(s)
    while frontier:
        next_frontier: list[Vertex] = []
        for v in frontier:
            for u in graph.neighbors(v):
                if u not in reached:
                    reached.add(u)
                    next_frontier.append(u)
        frontier = next_frontier
    return len(reached) / graph.num_vertices


def local_clustering(graph: AdjacencyGraph, vertex: Vertex) -> float:
    """Local clustering coefficient of one vertex.

    The fraction of the vertex's neighbor pairs that are themselves
    adjacent; 0.0 for degree < 2.  Clustering is what turns a power-law
    graph into one with non-trivial cliques, so the generators are
    validated against it.
    """
    neighbors = sorted(graph.neighbors(vertex))
    degree = len(neighbors)
    if degree < 2:
        return 0.0
    closed = sum(
        1
        for i, u in enumerate(neighbors)
        for w in neighbors[i + 1 :]
        if graph.has_edge(u, w)
    )
    return 2.0 * closed / (degree * (degree - 1))


def average_clustering(
    graph: AdjacencyGraph,
    sample_size: int | None = None,
    seed: int = 0,
) -> float:
    """Mean local clustering coefficient (optionally over a seeded sample)."""
    pool = sorted(graph.vertices())
    if not pool:
        return 0.0
    if sample_size is not None and sample_size < len(pool):
        rng = random.Random(seed)
        pool = rng.sample(pool, sample_size)
    return sum(local_clustering(graph, v) for v in pool) / len(pool)


def degree_histogram(graph: AdjacencyGraph) -> dict[int, int]:
    """Map ``degree -> number of vertices with that degree``."""
    histogram: dict[int, int] = {}
    for v in graph.vertices():
        d = graph.degree(v)
        histogram[d] = histogram.get(d, 0) + 1
    return histogram
