"""Undirected in-memory graph backed by adjacency sets.

The paper (Section 2) works with undirected, unlabeled graphs ``G = (V, E)``
where ``|G|`` is defined as the number of edges ``m``.  Vertices are integer
identifiers; the total order on vertex ids doubles as the order ``≺``
used by the H*-max-clique tree (Definition 8).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from repro.errors import EdgeNotFoundError, GraphError, VertexNotFoundError

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


class AdjacencyGraph:
    """An undirected graph stored as a dictionary of neighbor sets.

    The structure mirrors the paper's notation: ``nb(v)`` is the neighbor set
    of ``v`` and ``d(v) = |nb(v)|`` its degree.  Self-loops are rejected
    because a clique never contains one, and parallel edges collapse (the
    edge set is a set).

    Examples
    --------
    >>> g = AdjacencyGraph.from_edges([(1, 2), (2, 3), (1, 3)])
    >>> sorted(g.neighbors(2))
    [1, 3]
    >>> g.degree(1)
    2
    >>> g.num_edges
    3
    """

    def __init__(self) -> None:
        self._adj: dict[Vertex, set[Vertex]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        vertices: Iterable[Vertex] = (),
    ) -> "AdjacencyGraph":
        """Build a graph from an edge iterable, plus optional extra vertices.

        ``vertices`` lets callers register isolated vertices, which matter to
        the paper's recursion (a singleton is a maximal clique only when its
        *original* degree is zero, Section 4.3).
        """
        graph = cls()
        for vertex in vertices:
            graph.add_vertex(vertex)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    @classmethod
    def from_adjacency(cls, adjacency: dict[Vertex, Iterable[Vertex]]) -> "AdjacencyGraph":
        """Build a graph from a mapping ``vertex -> neighbor iterable``.

        The mapping is symmetrised: an entry ``u -> [v]`` implies the edge
        ``(u, v)`` even when ``v``'s own list omits ``u``.
        """
        graph = cls()
        for vertex, neighbors in adjacency.items():
            graph.add_vertex(vertex)
            for neighbor in neighbors:
                graph.add_edge(vertex, neighbor)
        return graph

    def copy(self) -> "AdjacencyGraph":
        """Return an independent deep copy of the graph."""
        clone = AdjacencyGraph()
        clone._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        """Add an isolated vertex; a no-op when the vertex already exists."""
        self._adj.setdefault(v, set())

    def add_edge(self, u: Vertex, v: Vertex) -> bool:
        """Add the undirected edge ``(u, v)``; return ``True`` if it is new.

        Raises :class:`~repro.errors.GraphError` on a self-loop.
        """
        if u == v:
            raise GraphError(f"self-loop on vertex {u!r} is not allowed")
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1
        return True

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the undirected edge ``(u, v)``.

        Raises :class:`~repro.errors.EdgeNotFoundError` when absent.
        """
        if u not in self._adj or v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` and all incident edges.

        Raises :class:`~repro.errors.VertexNotFoundError` when absent.
        """
        if v not in self._adj:
            raise VertexNotFoundError(v)
        for neighbor in self._adj[v]:
            self._adj[neighbor].discard(v)
        self._num_edges -= len(self._adj[v])
        del self._adj[v]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """``n = |V|``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """``m = |E|``; the paper's ``|G|`` (Section 2)."""
        return self._num_edges

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge exactly once, as ``(u, v)``.

        For orderable vertex types each edge is reported with ``u < v``.
        """
        seen: set[Vertex] = set()
        for u, neighbors in self._adj.items():
            for v in neighbors:
                if v not in seen:
                    yield (u, v) if _orderable_le(u, v) else (v, u)
            seen.add(u)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return whether the undirected edge ``(u, v)`` exists."""
        return u in self._adj and v in self._adj[u]

    def neighbors(self, v: Vertex) -> set[Vertex]:
        """``nb(v)``: the neighbor set of ``v`` (a live reference; do not
        mutate).  Raises :class:`~repro.errors.VertexNotFoundError`."""
        try:
            return self._adj[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def degree(self, v: Vertex) -> int:
        """``d(v) = |nb(v)|``."""
        return len(self.neighbors(v))

    def degree_sequence(self) -> list[int]:
        """All vertex degrees in descending order."""
        return sorted((len(nbrs) for nbrs in self._adj.values()), reverse=True)

    # ------------------------------------------------------------------
    # Subgraphs (paper Section 2: G_S)
    # ------------------------------------------------------------------
    def induced_subgraph(self, subset: Iterable[Vertex]) -> "AdjacencyGraph":
        """``G_S``: the subgraph induced by the vertex set ``subset``.

        Vertices absent from the graph are ignored, matching the paper's
        convention that ``G_S`` is defined over ``S ⊆ V``.
        """
        chosen = {v for v in subset if v in self._adj}
        sub = AdjacencyGraph()
        for v in chosen:
            sub.add_vertex(v)
        for v in chosen:
            for u in self._adj[v] & chosen:
                sub.add_edge(v, u)
        return sub

    def is_clique(self, subset: Iterable[Vertex]) -> bool:
        """Return whether ``subset`` induces a complete subgraph.

        Raises :class:`~repro.errors.VertexNotFoundError` when a member is
        missing from the graph.
        """
        members = list(dict.fromkeys(subset))
        for v in members:
            if v not in self._adj:
                raise VertexNotFoundError(v)
        for i, v in enumerate(members):
            neighbors = self._adj[v]
            for u in members[i + 1 :]:
                if u not in neighbors:
                    return False
        return True

    def is_maximal_clique(self, subset: Iterable[Vertex]) -> bool:
        """Return whether ``subset`` is a clique with no common neighbor."""
        members = set(subset)
        if not members:
            return False
        if not self.is_clique(members):
            return False
        common = self.common_neighbors(members)
        return not common

    def common_neighbors(self, subset: Iterable[Vertex]) -> set[Vertex]:
        """Vertices adjacent to *every* member of ``subset`` (excluding it).

        For the empty set this returns all vertices, mirroring the convention
        that an empty intersection ranges over the whole universe.
        """
        members = list(subset)
        if not members:
            return set(self._adj)
        members.sort(key=self.degree)
        common = set(self.neighbors(members[0]))
        for v in members[1:]:
            common &= self.neighbors(v)
            if not common:
                break
        return common - set(members)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )


def _orderable_le(u: Vertex, v: Vertex) -> bool:
    """Best-effort ``u <= v`` that tolerates unorderable vertex types."""
    try:
        return u <= v  # type: ignore[operator]
    except TypeError:
        return True
