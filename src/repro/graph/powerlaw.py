"""Power-law degree-distribution analysis (paper Section 3.2).

The paper bounds the memory footprint of the H*-graph using the rank
exponent ``R`` of Faloutsos et al.: for a scale-free graph the degree of the
``r``-th highest-degree vertex satisfies ``d(v) = (r / n) ** R`` (Eq. (1),
with ``R < 0``).  From this follow the bound ``h <= n ** (R / (R - 1))``
(Eq. (3)) and upper/lower bounds on ``|G_H*|`` (Eqs. (4)-(7)).

These predictions are what let ExtMCE provision memory *before* reading the
graph; :mod:`repro.core.hstar` compares them with measured values in the
Table 4 experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyGraph


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of the rank/degree power law.

    Attributes
    ----------
    rank_exponent:
        The fitted ``R`` of Eq. (1); negative for scale-free graphs
        (Faloutsos et al. measured -0.8 .. -0.7 for internet snapshots).
    intercept:
        Fitted intercept of ``log d = R * log r + intercept``.
    r_squared:
        Coefficient of determination of the log-log fit; values near 1
        indicate the graph really is scale-free.
    """

    rank_exponent: float
    intercept: float
    r_squared: float


def fit_rank_exponent(graph: AdjacencyGraph, min_degree: int = 1) -> PowerLawFit:
    """Fit ``R`` by regressing ``log d(v)`` on ``log r(v)``.

    ``r(v)`` is the degree rank (1 = highest degree).  Vertices with degree
    below ``min_degree`` are excluded, since the power law concerns the
    upper tail and zero-degree vertices have no logarithm.
    """
    degrees = [d for d in graph.degree_sequence() if d >= max(min_degree, 1)]
    if len(degrees) < 2:
        raise GraphError("rank-exponent fit needs at least two vertices with degree >= 1")
    xs = [math.log(rank) for rank in range(1, len(degrees) + 1)]
    ys = [math.log(d) for d in degrees]
    slope, intercept, r_squared = _least_squares(xs, ys)
    return PowerLawFit(rank_exponent=slope, intercept=intercept, r_squared=r_squared)


def predicted_h(num_vertices: int, rank_exponent: float) -> int:
    """Upper bound on ``h`` from Eq. (3): ``h <= n ** (R / (R - 1))``.

    For example ``n = 10**6`` with ``R = -0.8`` gives roughly 464, matching
    the paper's Section 3.2 worked example.
    """
    if num_vertices <= 0:
        return 0
    if rank_exponent >= 0:
        raise GraphError(f"rank exponent must be negative, got {rank_exponent}")
    exponent = rank_exponent / (rank_exponent - 1.0)
    return int(math.floor(num_vertices**exponent))


@dataclass(frozen=True)
class HStarSizeBounds:
    """Predicted bounds on ``|G_H*|`` (Eqs. (4)-(7))."""

    h: int
    upper_edges: float
    lower_edges: float
    total_edges_estimate: float

    @property
    def upper_fraction(self) -> float:
        """Upper bound on ``|G_H*| / |G|`` per Eq. (7)."""
        if self.total_edges_estimate == 0:
            return 0.0
        return self.upper_edges / self.total_edges_estimate

    @property
    def lower_fraction(self) -> float:
        """Lower bound on ``|G_H*| / |G|`` per Eq. (7)."""
        if self.total_edges_estimate == 0:
            return 0.0
        return self.lower_edges / self.total_edges_estimate


def predicted_hstar_size_bounds(num_vertices: int, rank_exponent: float) -> HStarSizeBounds:
    """Predict ``|G_H*|`` bounds for a scale-free graph of ``n`` vertices.

    Follows the paper's derivation: the sum of the h-vertices' degrees
    ``sum_{r=1..h} (r/n)**R`` upper-bounds ``|G_H*|`` (Eq. (4)); edges with
    both endpoints in ``H`` are counted twice in that sum, and there are at
    most ``h * (h - 1) / 2`` of them, giving the lower bound.  The total
    edge count is estimated as half the full degree sum, which yields the
    fraction-of-``|G|`` form of Eq. (7).
    """
    h = predicted_h(num_vertices, rank_exponent)
    upper = _degree_sum(1, h, num_vertices, rank_exponent)
    lower = max(upper - h * (h - 1) / 2.0, 0.0)
    total = _degree_sum(1, num_vertices, num_vertices, rank_exponent) / 2.0
    return HStarSizeBounds(
        h=h,
        upper_edges=upper,
        lower_edges=lower,
        total_edges_estimate=total,
    )


def _degree_sum(first_rank: int, last_rank: int, n: int, rank_exponent: float) -> float:
    """``sum_{r=first..last} (r / n) ** R`` evaluated stably.

    For wide rank ranges the sum is evaluated via the integral
    approximation; for narrow ones (the h-vertex head) it is computed
    exactly, since the head dominates the H*-graph bound.
    """
    if last_rank < first_rank:
        return 0.0
    width = last_rank - first_rank + 1
    if width <= 100_000:
        return sum((r / n) ** rank_exponent for r in range(first_rank, last_rank + 1))
    # Integral of (r/n)^R dr = n/(R+1) * (r/n)^(R+1); R != -1 for real fits.
    exponent = rank_exponent + 1.0
    if abs(exponent) < 1e-12:
        return n * (math.log(last_rank + 0.5) - math.log(first_rank - 0.5))
    upper = n / exponent * ((last_rank + 0.5) / n) ** exponent
    lower = n / exponent * ((first_rank - 0.5) / n) ** exponent
    return upper - lower


def _least_squares(xs: list[float], ys: list[float]) -> tuple[float, float, float]:
    """Plain least-squares line fit returning (slope, intercept, r**2)."""
    count = len(xs)
    mean_x = sum(xs) / count
    mean_y = sum(ys) / count
    ss_xx = sum((x - mean_x) ** 2 for x in xs)
    ss_xy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    ss_yy = sum((y - mean_y) ** 2 for y in ys)
    if ss_xx == 0:
        raise GraphError("degenerate degree sequence: all ranks identical")
    slope = ss_xy / ss_xx
    intercept = mean_y - slope * mean_x
    r_squared = 0.0 if ss_yy == 0 else (ss_xy * ss_xy) / (ss_xx * ss_yy)
    return slope, intercept, r_squared
