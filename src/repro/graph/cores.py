"""k-core decomposition.

The h-index core of Definition 1 is a close cousin of the classical
k-core: both pick out the densely connected heart of a scale-free network.
The decomposition here supports the analysis extensions (core overlap
statistics) and the Eppstein-Strash baseline's theory (its running time is
parameterised by the degeneracy, which equals the maximum core number).
"""

from __future__ import annotations

from repro.graph.adjacency import AdjacencyGraph, Vertex


def core_numbers(graph: AdjacencyGraph) -> dict[Vertex, int]:
    """Core number of every vertex (Batagelj-Zaveršnik bucket algorithm).

    The core number of ``v`` is the largest ``k`` such that ``v`` belongs
    to a subgraph in which every vertex has degree at least ``k``.
    """
    degrees = {v: graph.degree(v) for v in graph.vertices()}
    if not degrees:
        return {}
    max_degree = max(degrees.values())
    buckets: list[list[Vertex]] = [[] for _ in range(max_degree + 1)]
    for v, d in degrees.items():
        buckets[d].append(v)
    core: dict[Vertex, int] = {}
    removed: set[Vertex] = set()
    current = 0
    while len(core) < len(degrees):
        while current <= max_degree and not buckets[current]:
            current += 1
        bucket = buckets[current]
        vertex = bucket.pop()
        if vertex in removed or degrees[vertex] != current:
            continue  # stale bucket entry
        core[vertex] = current
        removed.add(vertex)
        for u in graph.neighbors(vertex):
            if u in removed:
                continue
            if degrees[u] > current:
                degrees[u] -= 1
                buckets[degrees[u]].append(u)
        current = max(0, current - 1)
    return core


def k_core(graph: AdjacencyGraph, k: int) -> AdjacencyGraph:
    """The subgraph induced by vertices with core number at least ``k``."""
    numbers = core_numbers(graph)
    return graph.induced_subgraph(v for v, c in numbers.items() if c >= k)


def degeneracy(graph: AdjacencyGraph) -> int:
    """The graph's degeneracy (the maximum core number)."""
    numbers = core_numbers(graph)
    return max(numbers.values(), default=0)
