"""Vertex orderings.

Definition 8 of the paper requires a total order ``≺`` over ``H ∪ Hnb``
where every h-vertex precedes every h-neighbor; within each class we order
by vertex id.  Degeneracy ordering is provided for the Eppstein-Strash
baseline used in the ablation benches.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graph.adjacency import AdjacencyGraph, Vertex


def degree_ordering(graph: AdjacencyGraph, descending: bool = True) -> list[Vertex]:
    """Vertices sorted by degree, ties broken by vertex id (deterministic)."""
    return sorted(
        graph.vertices(),
        key=lambda v: (-graph.degree(v), v) if descending else (graph.degree(v), v),
    )


def hstar_vertex_order(h_vertices: Iterable[Vertex], h_neighbors: Iterable[Vertex]) -> dict[Vertex, int]:
    """The total order ``≺`` of Definition 8 as a rank mapping.

    Every h-vertex ranks before every h-neighbor; within each class vertices
    are ranked by their id.  The returned dict maps vertex -> rank, usable as
    a sort key when laying out root-to-leaf paths of the H*-max-clique tree.
    """
    rank: dict[Vertex, int] = {}
    position = 0
    for v in sorted(h_vertices):
        rank[v] = position
        position += 1
    for v in sorted(h_neighbors):
        if v in rank:
            raise ValueError(f"vertex {v!r} is both an h-vertex and an h-neighbor")
        rank[v] = position
        position += 1
    return rank


def degeneracy_ordering(graph: AdjacencyGraph) -> tuple[list[Vertex], int]:
    """Compute a degeneracy ordering and the degeneracy number.

    Repeatedly removes a minimum-degree vertex (smallest id on ties).  The
    returned list is in removal order; the second element is the graph's
    degeneracy (the largest minimum degree seen).  Used by the
    Eppstein-Strash maximal clique baseline.
    """
    degrees = {v: graph.degree(v) for v in graph.vertices()}
    # Bucket queue over degrees for O(n + m) behaviour.
    max_degree = max(degrees.values(), default=0)
    buckets: list[set[Vertex]] = [set() for _ in range(max_degree + 1)]
    for v, d in degrees.items():
        buckets[d].add(v)

    ordering: list[Vertex] = []
    removed: set[Vertex] = set()
    degeneracy = 0
    current = 0
    for _ in range(graph.num_vertices):
        while current <= max_degree and not buckets[current]:
            current += 1
        if current > max_degree:
            break
        vertex = min(buckets[current])
        buckets[current].discard(vertex)
        degeneracy = max(degeneracy, current)
        ordering.append(vertex)
        removed.add(vertex)
        for neighbor in graph.neighbors(vertex):
            if neighbor in removed:
                continue
            d = degrees[neighbor]
            buckets[d].discard(neighbor)
            degrees[neighbor] = d - 1
            buckets[d - 1].add(neighbor)
        # A removal can only lower neighbor degrees, so the scan pointer
        # steps back by at most one bucket.
        current = max(0, current - 1)
    return ordering, degeneracy
