"""Bench: sequential scans (ExtMCE) vs random access (naive external BK).

The quantitative version of the paper's Section 1 motivation: running an
in-memory MCE algorithm against a disk-resident graph turns every
neighborhood fetch into a potential seek.  Both algorithms see the same
on-disk graph; the I/O model charges sequential pages at disk bandwidth
and every random read a 5 ms seek (``repro/storage/iostats.py``).
"""

import tempfile

from repro.analysis.tables import render_table
from repro.baselines.ondisk import tomita_maximal_cliques_on_disk
from repro.core.extmce import ExtMCE, ExtMCEConfig
from repro.experiments.common import dataset_graph
from repro.storage.diskgraph import DiskGraph
from repro.storage.iostats import IOStats
from repro.storage.random_access import RandomAccessDiskGraph

DATASET = "protein"
POOL_PAGES = 8  # same order as ExtMCE's resident H*-graph for this dataset


def _measure():
    graph = dataset_graph(DATASET)
    with tempfile.TemporaryDirectory(prefix="ra_") as tmp:
        stats = IOStats()
        disk = DiskGraph.create(f"{tmp}/g.bin", graph, io_stats=stats)
        stats.pages_read = stats.random_reads = stats.sequential_scans = 0
        radg = RandomAccessDiskGraph(disk, capacity_pages=POOL_PAGES)
        ondisk_cliques = sum(1 for _ in tomita_maximal_cliques_on_disk(radg))
        ondisk = {
            "cliques": ondisk_cliques,
            "seeks": stats.random_reads,
            "pages": stats.pages_read,
            "scans": stats.sequential_scans,
            "sim_seconds": stats.simulated_read_seconds,
            "hit_rate": radg.pool.hit_rate,
        }
    with tempfile.TemporaryDirectory(prefix="ra_") as tmp:
        stats = IOStats()
        disk = DiskGraph.create(f"{tmp}/g.bin", graph, io_stats=stats)
        stats.pages_read = stats.random_reads = stats.sequential_scans = 0
        algo = ExtMCE(disk, ExtMCEConfig(workdir=tmp))
        ext_cliques = sum(1 for _ in algo.enumerate_cliques())
        extmce = {
            "cliques": ext_cliques,
            "seeks": stats.random_reads,
            "pages": stats.pages_read,
            "scans": stats.sequential_scans,
            "sim_seconds": stats.simulated_read_seconds,
            "hit_rate": float("nan"),
        }
    return ondisk, extmce


def test_random_vs_sequential(benchmark, save_result):
    ondisk, extmce = benchmark.pedantic(_measure, rounds=1, iterations=1)
    save_result(
        "random_access",
        render_table(
            "Section 1 motivation: random access vs sequential scans (protein)",
            ["approach", "seeks", "pages read", "scans", "modelled I/O time (s)", "cliques"],
            [
                (
                    f"in-mem BK over {POOL_PAGES}-page cache",
                    ondisk["seeks"],
                    ondisk["pages"],
                    ondisk["scans"],
                    f"{ondisk['sim_seconds']:.1f}",
                    ondisk["cliques"],
                ),
                (
                    "ExtMCE (sequential)",
                    extmce["seeks"],
                    extmce["pages"],
                    extmce["scans"],
                    f"{extmce['sim_seconds']:.3f}",
                    extmce["cliques"],
                ),
            ],
        ),
    )
    # Same answer either way...
    assert ondisk["cliques"] == extmce["cliques"]
    # ...but ExtMCE never seeks, while the naive approach seeks constantly.
    assert extmce["seeks"] == 0
    assert ondisk["seeks"] > 1_000
    # Modelled disk time: orders of magnitude apart.
    assert ondisk["sim_seconds"] > 100 * extmce["sim_seconds"]
