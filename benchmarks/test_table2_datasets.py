"""Bench: regenerate Table 2 (dataset sizes).

Times dataset generation plus on-disk materialisation, and records the
measured n/m/storage columns next to the paper's originals.
"""

from repro.experiments import table2


def test_table2(benchmark, save_result):
    rows = benchmark.pedantic(table2.run, rounds=1, iterations=1)
    save_result("table2", table2.render(rows))
    # Shape checks: four datasets, ordered by scale as in the paper.
    assert [row.dataset for row in rows] == ["protein", "blogs", "lj", "web"]
    edges = [row.num_edges for row in rows]
    assert edges == sorted(edges)
    for row in rows:
        assert row.storage_mb > 0
        # The stand-ins are uniformly scaled-down versions.
        assert row.num_edges < row.paper_edges
