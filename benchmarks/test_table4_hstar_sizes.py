"""Bench: regenerate Table 4 (sizes of H, Hnb, G_H, G_H*, G_H+).

Paper shape: |G_H| is ~1% of |G| (too small to amortise scans), |G_H+| is
25-68% (too large for memory), |G_H*| sits usefully in between.
"""

from repro.experiments import table4


def test_table4(benchmark, save_result):
    rows = benchmark.pedantic(table4.run, rounds=1, iterations=1)
    save_result("table4", table4.render(rows))
    for row in rows:
        sizes = row.sizes
        # The sandwich that justifies the H*-graph (Section 3.3).
        assert sizes.core_fraction < sizes.star_fraction < sizes.extended_fraction
        # G_H is tiny; G_H* is a small-but-significant share of |G|.
        assert sizes.core_fraction < 0.05
        assert 0.04 <= sizes.star_fraction <= 0.45
        assert sizes.extended_fraction <= 0.9
        # Scale-free fit: negative rank exponent (paper: -0.8..-0.7 for
        # internet snapshots; co-occurrence stand-ins fit shallower).
        assert row.rank_exponent < -0.2
