"""Smoke benchmark: live store update throughput and serving latency.

Drives a randomized insert/delete edge stream through the full live
stack (``HStarMaintainer`` → ``LiveIngestor`` → ``LiveCliqueStore``)
and records three things to ``BENCH_live.json`` at the repository root:

1. sustained ingestion throughput (edge updates/second and clique
   deltas/second) over the whole stream;
2. query latency (p50/p95 of ``cliques_containing`` through
   :class:`CliqueQueryEngine`) over the idle store; and
3. the same latency *while a compaction is running* — the build stage
   is artificially stretched with an injected ``latency`` fault so the
   measurement window is real.

The non-blocking-compaction contract is asserted, making this a
pass/fail smoke: p95 during compaction must stay within 2x the idle
p95 (plus a 2 ms absolute grace so microsecond-scale noise on shared
CI boxes cannot flip the verdict).  The raw quantiles land in the JSON
either way, so the regression signal lives in its committed history.

Run directly (as CI does)::

    PYTHONPATH=src python benchmarks/bench_live_updates.py
"""

from __future__ import annotations

import json
import random
import shutil
import tempfile
import threading
import time
from pathlib import Path

from repro.dynamic.maintainer import HStarMaintainer
from repro.faults import FaultPlan, FaultRule
from repro.live import LiveCliqueStore, LiveIngestor
from repro.service import CliqueQueryEngine

try:  # pytest collection from the repository root
    from benchmarks.common import quantiles, random_edge_stream
except ImportError:  # executed directly: benchmarks/ itself is sys.path[0]
    from common import quantiles, random_edge_stream

NUM_VERTICES = 60
NUM_EVENTS = 1_500
DELETE_SHARE = 0.25
SEED = 11
IDLE_SAMPLES = 400
COMPACTION_WINDOW_SECONDS = 2.0
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_live.json"


def _sample_queries(engine: CliqueQueryEngine, rng: random.Random,
                    count: int, stop: threading.Event | None = None,
                    ) -> list[float]:
    samples: list[float] = []
    while len(samples) < count:
        vertex = rng.randrange(NUM_VERTICES)
        started = time.perf_counter()
        result = engine.cliques_containing(vertex)
        samples.append(time.perf_counter() - started)
        assert not result.degraded, "query degraded during the benchmark"
        if stop is not None and stop.is_set():
            break
    return samples


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="bench_live_"))
    directory = tmp / "live"
    try:
        rng = random.Random(SEED)
        events = random_edge_stream(NUM_VERTICES, NUM_EVENTS, DELETE_SHARE, rng)

        store = LiveCliqueStore.initialize(directory)
        ingestor = LiveIngestor(HStarMaintainer(), store)
        ingestor.ingest(events)
        report = ingestor.report
        store.close()

        # Reopen with a stretched compaction build stage: readers get a
        # guaranteed measurement window while the fold runs.
        plan = FaultPlan([
            FaultRule(operation="compaction", kind="latency",
                      path_contains="build",
                      latency_seconds=COMPACTION_WINDOW_SECONDS),
        ])
        store = LiveCliqueStore.open(directory, fault_plan=plan)
        engine = CliqueQueryEngine(store)
        num_cliques = store.num_cliques

        idle = _sample_queries(engine, rng, IDLE_SAMPLES)

        done = threading.Event()
        compactor = threading.Thread(
            target=lambda: (store.compact(), done.set()), daemon=True
        )
        compactor.start()
        time.sleep(0.2)  # let the thread park inside the build stage
        during = _sample_queries(engine, rng, 100_000, stop=done)
        compactor.join(timeout=60.0)
        assert done.is_set(), "compaction never finished"
        assert store.tail_length == 0

        store.verify()
        store.close()

        idle_q = quantiles(idle, include_count=True)
        during_q = quantiles(during, include_count=True)
        grace_us = 2_000.0
        non_blocking = during_q["p95_us"] <= 2 * idle_q["p95_us"] + grace_us

        payload = {
            "bench": "live_updates",
            "stream": {
                "vertices": NUM_VERTICES,
                "events": len(events),
                "delete_share": DELETE_SHARE,
                "seed": SEED,
            },
            "ingest": {
                "edges_applied": report.edges_applied,
                "insertions": report.insertions,
                "deletions": report.deletions,
                "deltas_emitted": report.deltas_emitted,
                "seconds": report.seconds,
                "updates_per_second": report.updates_per_second,
            },
            "num_cliques": num_cliques,
            "latency_idle": idle_q,
            "latency_during_compaction": during_q,
            "compaction_window_seconds": COMPACTION_WINDOW_SECONDS,
            "non_blocking_p95_grace_us": grace_us,
            "non_blocking_compaction": non_blocking,
        }
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

        print("live update smoke benchmark")
        print(f"  stream           : {len(events)} events over "
              f"{NUM_VERTICES} vertices ({report.insertions} inserts, "
              f"{report.deletions} deletes)")
        print(f"  sustained ingest : {report.updates_per_second:9.0f} updates/s "
              f"({report.deltas_emitted} clique deltas)")
        print(f"  live cliques     : {num_cliques}")
        print(f"  idle queries     : p50 {idle_q['p50_us']:8.1f} us   "
              f"p95 {idle_q['p95_us']:8.1f} us")
        print(f"  during compaction: p50 {during_q['p50_us']:8.1f} us   "
              f"p95 {during_q['p95_us']:8.1f} us "
              f"({during_q['samples']} samples)")
        print(f"  results written  : {RESULT_PATH}")
        assert non_blocking, (
            f"compaction blocked readers: p95 {during_q['p95_us']:.1f} us "
            f"during vs {idle_q['p95_us']:.1f} us idle"
        )
        print("PASS")
        return 0
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
