"""Bench: regenerate Figure 3 (time panel (a) and memory panel (b)).

Paper shape, asserted below:

* ExtMCE completes **all** datasets under the shared memory budget.
* in-mem completes the two small datasets but **runs out of memory** on
  lj and web.
* Where both run, ExtMCE's peak memory is well below in-mem's while its
  time stays within a small factor (the paper's "comparable time,
  significantly less memory").
* streaming only runs on the smallest dataset and is slower than in-mem.
"""

from repro.experiments import figure3


def test_figure3(benchmark, save_result):
    rows = benchmark.pedantic(figure3.run, rounds=1, iterations=1)
    save_result("figure3", figure3.render(rows))
    by_key = {(row.dataset, row.algorithm): row for row in rows}

    # ExtMCE: bounded memory, completes everywhere.
    for dataset in ("protein", "blogs", "lj", "web"):
        assert by_key[(dataset, "ExtMCE")].status == "ok"

    # in-mem: fits the small sets, dies on the big ones.
    assert by_key[("protein", "in-mem")].status == "ok"
    assert by_key[("blogs", "in-mem")].status == "ok"
    assert by_key[("lj", "in-mem")].status == "out of memory"
    assert by_key[("web", "in-mem")].status == "out of memory"

    # Same answers where both complete.
    for dataset in ("protein", "blogs"):
        assert (
            by_key[(dataset, "ExtMCE")].cliques
            == by_key[(dataset, "in-mem")].cliques
        )
        # Less memory than in-mem (paper: ~1/4).
        assert (
            by_key[(dataset, "ExtMCE")].peak_memory_mb
            < by_key[(dataset, "in-mem")].peak_memory_mb
        )

    # streaming runs only on protein, slower than the in-memory algorithm.
    assert by_key[("protein", "streaming")].status == "ok"
    assert by_key[("blogs", "streaming")].status == "skipped"
    assert (
        by_key[("protein", "streaming")].seconds
        > by_key[("protein", "in-mem")].seconds
    )
