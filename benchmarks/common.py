"""Helpers shared across the benchmark sweeps and smoke scripts.

The scaling sweeps and the live/index smoke benchmarks previously each
carried private copies of the same three helpers (latency quantiles, the
powerlaw workload graph, the randomized edge-event stream); they live
here once so a tweak to one workload cannot silently diverge from the
others.

Importable both ways: as ``benchmarks.common`` when pytest collects the
sweeps from the repository root, and as plain ``common`` when a smoke
script is executed directly (``python benchmarks/bench_live_updates.py``
puts ``benchmarks/`` itself on ``sys.path``).
"""

from __future__ import annotations

import random
import statistics

from repro.generators.scale_free import powerlaw_cluster_graph


def scaling_graph(n: int, m: int = 5, p: float = 0.7, seed: int = 99):
    """The standard powerlaw-cluster workload used by the scaling sweeps."""
    return powerlaw_cluster_graph(n, m, p, seed=seed)


def quantiles(samples: list[float], include_count: bool = False) -> dict[str, float]:
    """p50/p95/mean of a latency sample list, reported in microseconds."""
    ordered = sorted(samples)
    summary = {
        "p50_us": statistics.median(ordered) * 1e6,
        "p95_us": ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))] * 1e6,
        "mean_us": statistics.fmean(ordered) * 1e6,
    }
    if include_count:
        summary = {"samples": len(ordered), **summary}
    return summary


def random_edge_stream(
    num_vertices: int,
    num_events: int,
    delete_share: float,
    rng: random.Random,
) -> list[tuple]:
    """Randomized insert/delete edge events in the live-ingest wire format."""
    edges: set[tuple[int, int]] = set()
    events: list[tuple] = []
    ts = 0
    while len(events) < num_events:
        if edges and rng.random() < delete_share:
            u, v = rng.choice(sorted(edges))
            edges.discard((u, v))
            events.append((ts, "delete", u, v))
        else:
            u, v = rng.sample(range(num_vertices), 2)
            u, v = min(u, v), max(u, v)
            if (u, v) in edges:
                continue
            edges.add((u, v))
            events.append((ts, u, v))
        ts += 1
    return events
