"""Scaling sweep: ExtMCE's external-memory costs as the graph grows.

Not a table in the paper, but the quantitative heart of its Section 4.4
complexity argument: sequential scans grow like the recursion count
``|G| / |G_H*|`` (a few passes per step), while peak memory grows like
``|G_H*| + |T_H*|`` — strictly sublinearly in ``|G|``.
"""

import tempfile
import time

from repro.analysis.tables import render_table
from repro.core.extmce import ExtMCE, ExtMCEConfig
from repro.generators.scale_free import powerlaw_cluster_graph
from repro.storage.diskgraph import DiskGraph

SIZES = (1_000, 2_000, 4_000, 8_000)


def _run_one(num_vertices):
    graph = powerlaw_cluster_graph(num_vertices, 5, 0.7, seed=99)
    with tempfile.TemporaryDirectory(prefix="scaling_") as tmp:
        disk = DiskGraph.create(f"{tmp}/g.bin", graph)
        algo = ExtMCE(disk, ExtMCEConfig(workdir=tmp))
        started = time.perf_counter()
        cliques = sum(1 for _ in algo.enumerate_cliques())
        elapsed = time.perf_counter() - started
    report = algo.report
    return {
        "n": num_vertices,
        "m": graph.num_edges,
        "cliques": cliques,
        "seconds": elapsed,
        "recursions": report.num_recursions,
        "scans": report.sequential_scans,
        "peak_units": report.peak_memory_units,
    }


def test_scaling_sweep(benchmark, save_result):
    results = benchmark.pedantic(
        lambda: [_run_one(n) for n in SIZES], rounds=1, iterations=1
    )
    save_result(
        "scaling",
        render_table(
            "Scaling: ExtMCE cost vs graph size (powerlaw-cluster, m=5, p=0.7)",
            ["n", "m", "cliques", "seconds", "recursions", "scans", "peak units", "peak/m"],
            [
                (
                    r["n"],
                    r["m"],
                    r["cliques"],
                    f"{r['seconds']:.2f}",
                    r["recursions"],
                    r["scans"],
                    r["peak_units"],
                    f"{r['peak_units'] / (2 * r['m']):.2f}",
                )
                for r in results
            ],
        ),
    )
    # Scans stay a small multiple of the recursion count at every size.
    for r in results:
        assert r["scans"] <= 5 * r["recursions"] + 5
    # Peak memory is sublinear in the graph: the peak/(2m) ratio falls
    # as the graph grows (the paper's |G_H*|/|G| shrinkage, Eq. (7)).
    ratios = [r["peak_units"] / (2 * r["m"]) for r in results]
    assert ratios[-1] < ratios[0]
    # And always below the in-memory requirement 2m + n.
    for r in results:
        assert r["peak_units"] < 2 * r["m"] + r["n"]
