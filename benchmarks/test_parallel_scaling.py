"""Parallel scaling sweep: ParallelExtMCE speedup over worker counts.

Runs the same enumeration at 1, 2 and 4 workers and reports wall-clock
speedup relative to the serial driver.  Besides the rendered table
(``benchmarks/results/parallel_scaling.txt``) the sweep writes a
machine-readable ``BENCH_parallel.json`` summary next to it.

The >1.5x-at-4-workers assertion only makes sense with real cores to
run on, so it is guarded on ``os.cpu_count()``; the table and JSON are
emitted unconditionally so single-core CI still records the numbers.

Runs with more workers than the host has CPUs measure scheduler churn,
not parallel speedup, so they are marked ``"oversubscribed": true`` in
``BENCH_parallel.json`` and excluded from the ``headline_speedup``
field (which is ``null`` when no honestly-parallel run exists).
"""

import json
import os
import tempfile
import time

from repro.analysis.tables import render_table
from repro.core.extmce import ExtMCE, ExtMCEConfig
from repro.generators.scale_free import powerlaw_cluster_graph
from repro.parallel import ParallelExtMCE
from repro.storage.diskgraph import DiskGraph

WORKER_COUNTS = (1, 2, 4)
NUM_VERTICES = 4_000


def _run_one(graph, workers):
    with tempfile.TemporaryDirectory(prefix="par_scaling_") as tmp:
        disk = DiskGraph.create(f"{tmp}/g.bin", graph)
        config = ExtMCEConfig(workdir=tmp, workers=workers)
        driver = ParallelExtMCE if workers > 1 else ExtMCE
        algo = driver(disk, config)
        started = time.perf_counter()
        cliques = sum(1 for _ in algo.enumerate_cliques())
        elapsed = time.perf_counter() - started
    return {
        "workers": workers,
        "cliques": cliques,
        "seconds": elapsed,
        "recursions": algo.report.num_recursions,
        "fallback_steps": getattr(algo, "fallback_steps", 0),
        "payload_bytes": getattr(algo, "last_payload_bytes", 0),
    }


def test_parallel_scaling_sweep(benchmark, save_result, results_dir):
    graph = powerlaw_cluster_graph(NUM_VERTICES, 5, 0.7, seed=99)
    results = benchmark.pedantic(
        lambda: [_run_one(graph, w) for w in WORKER_COUNTS], rounds=1, iterations=1
    )
    serial_seconds = results[0]["seconds"]
    host_cpus = os.cpu_count() or 1
    for r in results:
        r["speedup"] = serial_seconds / r["seconds"] if r["seconds"] else float("inf")
        r["oversubscribed"] = r["workers"] > host_cpus
    honest = [
        r for r in results if r["workers"] > 1 and not r["oversubscribed"]
    ]
    headline_speedup = max(r["speedup"] for r in honest) if honest else None

    save_result(
        "parallel_scaling",
        render_table(
            f"Parallel scaling: ParallelExtMCE on powerlaw-cluster "
            f"(n={NUM_VERTICES}, m=5, p=0.7), host cpus={os.cpu_count()}",
            ["workers", "cliques", "seconds", "speedup", "recursions",
             "fallbacks", "payload B"],
            [
                (
                    r["workers"],
                    r["cliques"],
                    f"{r['seconds']:.2f}",
                    f"{r['speedup']:.2f}x"
                    + (" (oversubscribed)" if r["oversubscribed"] else ""),
                    r["recursions"],
                    r["fallback_steps"],
                    r["payload_bytes"],
                )
                for r in results
            ],
        ),
    )
    summary = {
        "bench": "parallel_scaling",
        "graph": {"model": "powerlaw_cluster", "n": NUM_VERTICES, "m": 5, "p": 0.7},
        "host_cpus": host_cpus,
        "headline_speedup": headline_speedup,
        "runs": results,
    }
    (results_dir.parent.parent / "BENCH_parallel.json").write_text(
        json.dumps(summary, indent=2) + "\n"
    )

    # Correctness invariants hold at every worker count, speedup or not.
    for r in results:
        assert r["cliques"] == results[0]["cliques"]
        assert r["fallback_steps"] == 0

    cpus = host_cpus
    if cpus >= 4:
        assert results[-1]["speedup"] > 1.5, (
            f"expected >1.5x at 4 workers on a {cpus}-cpu host, "
            f"got {results[-1]['speedup']:.2f}x"
        )
    else:
        # Single-/dual-core CI: pool overhead makes a wall-clock speedup
        # impossible, so only sanity-check that parallelism is not
        # pathologically slow (>4x regression would indicate a pool bug).
        assert results[-1]["seconds"] < 4 * serial_seconds + 1.0
