"""Parallel scaling sweep: ParallelExtMCE speedup over worker counts.

Runs the same enumeration at 1, 2 and 4 workers (plus a coarse-grain
comparison run) and reports wall-clock speedup relative to the serial
driver.  Besides the rendered table
(``benchmarks/results/parallel_scaling.txt``) the sweep writes a
machine-readable ``BENCH_parallel.json`` summary next to it.

Every run reports the same payload fields — ``payload_bytes`` (pickled
task descriptors shipped through the pool) and ``shm_bytes`` (CSR bytes
published through shared-memory segments) — with explicit zeros for the
serial run, so the JSON history is comparable row-to-row.  The sweep
also measures the headline engine claim directly: a shared-memory task
descriptor must be at least 10x smaller than the pickled in-band graph
payload it replaces.

The speedup assertions only make sense with real cores to run on, so
they are guarded on ``os.cpu_count()``; the table and JSON are emitted
unconditionally so single-core CI still records the numbers.  Runs with
more workers than the host has CPUs measure scheduler churn, not
parallel speedup, so they are marked ``"oversubscribed": true`` and
excluded from the ``headline_speedup`` field (which is ``null`` when no
honestly-parallel run exists).
"""

import json
import os
import pickle
import tempfile
import time

from repro.analysis.tables import render_table
from repro.core.extmce import ExtMCE, ExtMCEConfig
from repro.core.hstar import extract_hstar_graph
from repro.core.lstar import extract_lstar_graph
from repro.parallel import ParallelExtMCE, ParallelEngine, serialize_star
from repro.storage.diskgraph import DiskGraph

try:  # pytest collection from the repository root
    from benchmarks.common import scaling_graph
except ImportError:  # executed directly: benchmarks/ itself is sys.path[0]
    from common import scaling_graph

WORKER_COUNTS = (1, 2, 4)
NUM_VERTICES = 4_000
PAYLOAD_REDUCTION_FLOOR = 10.0


def _run_one(graph, workers, task_grain="fine"):
    with tempfile.TemporaryDirectory(prefix="par_scaling_") as tmp:
        disk = DiskGraph.create(f"{tmp}/g.bin", graph)
        config = ExtMCEConfig(workdir=tmp, workers=workers, task_grain=task_grain)
        driver = ParallelExtMCE if workers > 1 else ExtMCE
        algo = driver(disk, config)
        started = time.perf_counter()
        cliques = sum(1 for _ in algo.enumerate_cliques())
        elapsed = time.perf_counter() - started
    return {
        "workers": workers,
        "task_grain": task_grain if workers > 1 else None,
        "cliques": cliques,
        "seconds": elapsed,
        "recursions": algo.report.num_recursions,
        "fallback_steps": getattr(algo, "fallback_steps", 0),
        # Uniform payload accounting: zeros for the serial driver, real
        # totals for the parallel ones — never an absent field.
        "payload_bytes": getattr(algo, "payload_bytes_total", 0),
        "shm_bytes": getattr(algo, "shm_bytes_total", 0),
        "tasks_split": getattr(algo, "tasks_split_total", 0),
        "tasks_stolen": getattr(algo, "tasks_stolen_total", 0),
        "spooled_chunks": getattr(algo, "spooled_chunks_total", 0),
    }


def _payload_reduction(graph):
    """Descriptor bytes vs the pickled in-band graphs they replace.

    Measured on both step shapes the recursion actually publishes: the
    first step's H*-star (small core on this workload) and an L*-step
    star sized like steps 2+ (the steady state, where the bulk of the
    run happens and the reduction is largest).  The 10x floor is
    asserted on the steady-state shape.
    """
    with tempfile.TemporaryDirectory(prefix="par_payload_") as tmp:
        disk = DiskGraph.create(f"{tmp}/g.bin", graph)
        hstar = extract_hstar_graph(disk)
        lstar = extract_lstar_graph(disk, max(hstar.size_edges, 1), seed=100)
    steps = {}
    with ParallelEngine(1) as engine:
        for name, star in (("first_step_hstar", hstar), ("steady_state_lstar", lstar)):
            inband_bytes = len(pickle.dumps(serialize_star(star, kernel="bitset")))
            descriptor = engine.publish_star(star, "bitset")
            descriptor_bytes = len(pickle.dumps(descriptor))
            steps[name] = {
                "descriptor_bytes": descriptor_bytes,
                "inband_bytes": inband_bytes,
                "ratio": inband_bytes / max(1, descriptor_bytes),
                "via_shm": "shm" in descriptor,
            }
    return steps


def test_parallel_scaling_sweep(benchmark, save_result, results_dir):
    graph = scaling_graph(NUM_VERTICES)
    plan = [(w, "fine") for w in WORKER_COUNTS] + [(2, "coarse")]
    results = benchmark.pedantic(
        lambda: [_run_one(graph, w, grain) for w, grain in plan],
        rounds=1, iterations=1,
    )
    serial_seconds = results[0]["seconds"]
    host_cpus = os.cpu_count() or 1
    for r in results:
        r["speedup"] = serial_seconds / r["seconds"] if r["seconds"] else float("inf")
        r["oversubscribed"] = r["workers"] > host_cpus
    honest = [
        r for r in results if r["workers"] > 1 and not r["oversubscribed"]
    ]
    headline_speedup = max(r["speedup"] for r in honest) if honest else None
    reduction = _payload_reduction(graph)

    save_result(
        "parallel_scaling",
        render_table(
            f"Parallel scaling: ParallelExtMCE on powerlaw-cluster "
            f"(n={NUM_VERTICES}, m=5, p=0.7), host cpus={os.cpu_count()}",
            ["workers", "grain", "cliques", "seconds", "speedup",
             "fallbacks", "payload B", "shm B", "split", "stolen"],
            [
                (
                    r["workers"],
                    r["task_grain"] or "-",
                    r["cliques"],
                    f"{r['seconds']:.2f}",
                    f"{r['speedup']:.2f}x"
                    + (" (oversubscribed)" if r["oversubscribed"] else ""),
                    r["fallback_steps"],
                    r["payload_bytes"],
                    r["shm_bytes"],
                    r["tasks_split"],
                    r["tasks_stolen"],
                )
                for r in results
            ],
        ),
    )
    summary = {
        "bench": "parallel_scaling",
        "graph": {"model": "powerlaw_cluster", "n": NUM_VERTICES, "m": 5, "p": 0.7},
        "host_cpus": host_cpus,
        "headline_speedup": headline_speedup,
        "payload_reduction": reduction,
        "runs": results,
    }
    (results_dir.parent.parent / "BENCH_parallel.json").write_text(
        json.dumps(summary, indent=2) + "\n"
    )

    # Correctness invariants hold at every worker count, speedup or not.
    for r in results:
        assert r["cliques"] == results[0]["cliques"]
        assert r["fallback_steps"] == 0
        if r["workers"] > 1:
            assert r["shm_bytes"] > 0, "parallel runs must publish via shm"

    # The engine claim that holds on ANY host: task descriptors are at
    # least 10x smaller than the pickled graph payloads they replace on
    # the recursion's steady-state steps.
    steady = reduction["steady_state_lstar"]
    assert steady["via_shm"], "shm publication failed on this host"
    assert steady["ratio"] >= PAYLOAD_REDUCTION_FLOOR, (
        f"descriptor {steady['descriptor_bytes']} B vs in-band "
        f"{steady['inband_bytes']} B: only {steady['ratio']:.1f}x"
    )

    if host_cpus >= 4:
        fine_runs = [r for r in results if r["task_grain"] == "fine"]
        assert fine_runs[-1]["speedup"] > 1.5, (
            f"expected >1.5x at 4 workers on a {host_cpus}-cpu host, "
            f"got {fine_runs[-1]['speedup']:.2f}x"
        )
    if host_cpus >= 2:
        assert headline_speedup is not None and headline_speedup > 1.0, (
            f"expected >1x from the persistent pool on a {host_cpus}-cpu "
            f"host, got {headline_speedup}"
        )
    else:
        # Single-core CI: a wall-clock speedup is impossible, so only
        # sanity-check that parallelism is not pathologically slow
        # (>4x regression would indicate a pool bug).
        assert results[1]["seconds"] < 4 * serial_seconds + 1.0
