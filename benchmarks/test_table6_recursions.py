"""Bench: regenerate Table 6 (actual vs estimated recursion counts).

Paper shape: the measured number of recursions tracks |G|/|G_H*| closely,
and a large share of total time goes to the first (H*-graph) step.
"""

from repro.experiments import table6


def test_table6(benchmark, save_result):
    rows = benchmark.pedantic(table6.run, rounds=1, iterations=1)
    save_result("table6", table6.render(rows))
    for row in rows:
        # Actual recursions within ~2.5x of the |G|/|G_H*| estimate
        # (paper: within ~1.1x except LJ; random L-selection adds noise
        # at our reduced scale).
        assert row.recursions <= 2.5 * row.estimated_recursions + 2
        assert row.recursions >= 0.4 * row.estimated_recursions
        # First step carries substantial weight (paper: 34-67%).
        assert row.first_step_fraction > 0.1
        # Sequential scans stay linear in the recursion count: a handful
        # of passes per step (extract/partition x2/rewrite), never the
        # random-access blowup the paper warns about.
        assert row.sequential_scans <= 8 * row.recursions + 8
