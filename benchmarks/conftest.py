"""Benchmark-suite fixtures.

Every benchmark regenerates one of the paper's tables or figures.  Besides
timing (pytest-benchmark), each bench writes the rendered paper-style
table to ``benchmarks/results/`` so the numbers quoted in EXPERIMENTS.md
can be reproduced with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write a rendered table under benchmarks/results/ and echo it."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _save
