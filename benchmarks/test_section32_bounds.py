"""Bench: the Section 3.2 analytical bounds on exact rank-law graphs.

The paper predicts, from the rank exponent alone: ``h <= n ** (R/(R-1))``
(Eq. 3) and an ``[lower, upper]`` band for ``|G_H*| / |G|`` (Eq. 7, e.g.
12-15% for R = -0.7 at a million vertices).  The dataset stand-ins only
approximate the law, so this bench generates configuration-model graphs
that satisfy Eq. (1) *exactly* and checks the formulas quantitatively —
measured h matches the prediction to within rounding on every case.
"""

from repro.experiments import section32


def test_section32_bounds(benchmark, save_result):
    rows = benchmark.pedantic(section32.run, rounds=1, iterations=1)
    save_result("section32_bounds", section32.render(rows))
    for row in rows:
        # Eq. (3): essentially exact on graphs satisfying its hypothesis.
        assert abs(row.measured_h - row.predicted_h) <= max(2, 0.05 * row.predicted_h)
        # Eq. (7): measured fraction inside (or marginally under, from the
        # simple-graph projection) the predicted band.
        assert (
            0.85 * row.predicted_lower
            <= row.measured_fraction
            <= 1.1 * row.predicted_upper
        )
