"""Smoke benchmark: admission control under 2x saturation.

Serves a frozen index through a server whose engine sleeps a fixed
4 ms per query (a known service time), caps admission at
``MAX_IN_FLIGHT``, then drives a closed-loop client population twice
that size — offered concurrency 2x the saturation point.  Records to
``BENCH_service.json`` at the repository root:

1. the shed rate (requests answered ``overloaded`` with a
   ``retry_after_ms`` hint instead of queueing unboundedly); and
2. the latency quantiles of the *accepted* requests, which admission
   control must keep near the raw service time no matter the overload.

Two pass/fail gates make it a smoke test: at 2x saturation the server
must actually shed (a zero shed rate means admission is broken), and
accepted-request p95 must stay within ``LATENCY_BUDGET`` of the
service time (sheds are how latency stays flat; queueing would show up
right here).  Every request must get exactly one reply either way.

Run directly (as CI does)::

    PYTHONPATH=src python benchmarks/bench_service_overload.py
"""

from __future__ import annotations

import json
import socket
import tempfile
import threading
import time
from pathlib import Path

from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.index import CliqueIndex, build_index
from repro.service import CliqueQueryEngine, CliqueQueryServer

try:  # pytest collection from the repository root
    from benchmarks.common import quantiles, scaling_graph
except ImportError:  # executed directly: benchmarks/ itself is sys.path[0]
    from common import quantiles, scaling_graph

NUM_VERTICES = 200
SERVICE_TIME_SECONDS = 0.004
MAX_IN_FLIGHT = 4
OFFERED_CONCURRENCY = 2 * MAX_IN_FLIGHT  # 2x the saturation point
REQUESTS_PER_CLIENT = 60
RETRY_AFTER_MS = 25.0
#: Accepted-request p95 ceiling: service time plus generous scheduling
#: slack for shared CI boxes.  Queueing past the admission limit would
#: blow through this by an order of magnitude.
LATENCY_BUDGET_SECONDS = SERVICE_TIME_SECONDS * 10 + 0.02
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"


class _MeteredEngine(CliqueQueryEngine):
    """Fixed service time per query, so saturation is a known number."""

    def query(self, op, timeout_seconds=None, **args):
        time.sleep(SERVICE_TIME_SECONDS)
        return super().query(op, timeout_seconds=timeout_seconds, **args)


def _client(host: str, port: int, worker_id: int,
            accepted: list[float], shed: list[int], lock: threading.Lock) -> None:
    with socket.create_connection((host, port), timeout=30.0) as sock:
        handle = sock.makefile("rb")
        for n in range(REQUESTS_PER_CLIENT):
            request = json.dumps({
                "id": n,
                "op": "cliques_containing",
                "args": {"v": (worker_id * 37 + n) % NUM_VERTICES},
            }).encode() + b"\n"
            started = time.perf_counter()
            sock.sendall(request)
            reply = json.loads(handle.readline())
            elapsed = time.perf_counter() - started
            assert reply["id"] == n, f"reply for {n} carried id {reply['id']}"
            with lock:
                if reply.get("overloaded"):
                    assert reply["retry_after_ms"] == RETRY_AFTER_MS
                    shed[0] += 1
                else:
                    assert reply["ok"] is True
                    accepted.append(elapsed)


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="bench_service_"))
    try:
        graph = scaling_graph(NUM_VERTICES)
        cliques = sorted(
            tuple(sorted(c)) for c in set(tomita_maximal_cliques(graph))
        )
        build_index(cliques, tmp / "idx")
        with CliqueIndex(tmp / "idx") as index:
            engine = _MeteredEngine(index, cache_entries=0)
            server = CliqueQueryServer(
                engine,
                max_in_flight=MAX_IN_FLIGHT,
                retry_after_ms=RETRY_AFTER_MS,
            ).start()
            host, port = server.address
            accepted: list[float] = []
            shed = [0]
            lock = threading.Lock()
            started = time.perf_counter()
            workers = [
                threading.Thread(
                    target=_client, args=(host, port, w, accepted, shed, lock)
                )
                for w in range(OFFERED_CONCURRENCY)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            elapsed = time.perf_counter() - started
            server.stop()

        total = OFFERED_CONCURRENCY * REQUESTS_PER_CLIENT
        assert len(accepted) + shed[0] == total, "a request went unanswered"
        shed_rate = shed[0] / total
        latency = quantiles(accepted, include_count=True)
        result = {
            "service_overload": {
                "service_time_ms": SERVICE_TIME_SECONDS * 1e3,
                "max_in_flight": MAX_IN_FLIGHT,
                "offered_concurrency": OFFERED_CONCURRENCY,
                "requests": total,
                "accepted": len(accepted),
                "shed": shed[0],
                "shed_rate": shed_rate,
                "retry_after_ms": RETRY_AFTER_MS,
                "throughput_rps": total / elapsed,
                "accepted_latency": latency,
            }
        }
        RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
        print(json.dumps(result, indent=2))

        assert shed_rate > 0.0, (
            "2x saturation produced zero sheds — admission control is not "
            "engaging"
        )
        p95_seconds = latency["p95_us"] / 1e6
        assert p95_seconds <= LATENCY_BUDGET_SECONDS, (
            f"accepted p95 {p95_seconds * 1e3:.1f} ms blew the "
            f"{LATENCY_BUDGET_SECONDS * 1e3:.1f} ms budget — requests are "
            "queueing instead of shedding"
        )
        print(f"PASS: shed rate {shed_rate:.1%}, accepted p95 "
              f"{p95_seconds * 1e3:.2f} ms within budget")
        return 0
    finally:
        import shutil

        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
