"""Smoke benchmark: clique-index query latency.

Builds a persisted clique index (``repro.index``) from an ExtMCE run
over the defective-clique-community generator — the workload whose
near-clique blocks give every vertex a non-trivial postings list — then
drives a mixed query workload through :class:`CliqueQueryEngine` and
records per-operation p50/p95 latency to ``BENCH_index.json`` at the
repository root (alongside ``BENCH_kernel.json`` and
``BENCH_parallel.json``).

Two properties are asserted, making this a pass/fail smoke rather than
a pure measurement:

1. the double build is deterministic — building the same clique set
   twice produces byte-identical index files;
2. every benchmarked query answers on the fast path (no degradations,
   no timeouts) and matches a brute-force scan of the clique stream.

Latency numbers themselves are reported, not asserted: wall-clock
budgets on shared CI boxes produce flaky failures, and the regression
signal lives in the committed JSON's history instead.

Run directly (as CI does)::

    PYTHONPATH=src python benchmarks/bench_index_queries.py
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path

from repro import DiskGraph, ExtMCE, ExtMCEConfig
from repro.generators.communities import defective_clique_communities
from repro.index import CliqueIndex, build_index
from repro.service import CliqueQueryEngine

try:  # pytest collection from the repository root
    from benchmarks.common import quantiles
except ImportError:  # executed directly: benchmarks/ itself is sys.path[0]
    from common import quantiles

NUM_VERTICES = 400
SEED = 7
QUERIES_PER_OP = 200
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_index.json"


def _workload(engine: CliqueQueryEngine, stats: dict) -> dict[str, dict]:
    """Run the mixed query workload; returns per-op latency summaries."""
    num_cliques = stats["num_cliques"]
    num_vertices = stats["num_vertices"]
    plans = {
        "cliques_containing": lambda i: {"v": i % num_vertices},
        "cliques_containing_edge": lambda i: {
            "u": i % num_vertices, "v": (i + 1) % num_vertices
        },
        "clique": lambda i: {"clique_id": i % num_cliques},
        "membership": lambda i: {
            "vertices": [i % num_vertices, (i + 2) % num_vertices]
        },
        "top_k_largest": lambda i: {"k": 1 + i % 10},
    }
    summaries: dict[str, dict] = {}
    for op, make_args in plans.items():
        samples: list[float] = []
        for i in range(QUERIES_PER_OP):
            started = time.perf_counter()
            result = engine.query(op, **make_args(i))
            samples.append(time.perf_counter() - started)
            assert not result.degraded, f"{op} degraded during the benchmark"
        summaries[op] = quantiles(samples)
    return summaries


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="bench_index_"))
    try:
        graph = defective_clique_communities(
            NUM_VERTICES, seed=SEED, community_min=16, community_max=28,
            defects=4, background_edges=2,
        )
        disk = DiskGraph.create(tmp / "g.bin", graph)
        enumerate_started = time.perf_counter()
        cliques = list(
            ExtMCE(disk, ExtMCEConfig(workdir=tmp / "w")).enumerate_cliques()
        )
        enumerate_seconds = time.perf_counter() - enumerate_started

        build_started = time.perf_counter()
        report = build_index(cliques, tmp / "idx")
        build_seconds = time.perf_counter() - build_started
        build_index(cliques, tmp / "idx2")
        for name in report.bytes_by_file:
            first = (tmp / "idx" / name).read_bytes()
            second = (tmp / "idx2" / name).read_bytes()
            assert first == second, f"double build diverged in {name}"

        with CliqueIndex(tmp / "idx") as index:
            stats = index.stats()
            engine = CliqueQueryEngine(index)
            # Spot-check against brute force before timing anything.
            probe = max(range(stats["num_vertices"]),
                        key=lambda v: len(index.postings(v)))
            expected = sorted(
                i for i, c in enumerate(sorted(tuple(sorted(c)) for c in set(
                    frozenset(c) for c in cliques
                ))) if probe in c
            )
            assert list(index.cliques_containing(probe)) == expected
            latencies = _workload(engine, stats)

        payload = {
            "bench": "index_queries",
            "graph": {
                "generator": "defective_clique_communities",
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
                "seed": SEED,
            },
            "num_cliques": stats["num_cliques"],
            "max_clique_size": stats["max_clique_size"],
            "index_bytes": report.total_bytes,
            "enumerate_seconds": enumerate_seconds,
            "build_seconds": build_seconds,
            "queries_per_op": QUERIES_PER_OP,
            "deterministic_double_build": True,
            "latency": latencies,
        }
        existing = {}
        if RESULT_PATH.exists():
            try:
                existing = json.loads(RESULT_PATH.read_text())
            except ValueError:
                existing = {}
        if "service_contract" in existing:
            # Preserve the contract test's measurements when re-running.
            payload["service_contract"] = existing["service_contract"]
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

        print("index query smoke benchmark")
        print(f"  graph            : {graph.num_vertices} vertices, "
              f"{graph.num_edges} edges")
        print(f"  maximal cliques  : {stats['num_cliques']} "
              f"(largest {stats['max_clique_size']})")
        print(f"  index size       : {report.total_bytes} bytes")
        print(f"  enumerate        : {enumerate_seconds * 1e3:9.1f} ms")
        print(f"  build            : {build_seconds * 1e3:9.1f} ms")
        for op, summary in latencies.items():
            print(f"  {op:<24s}: p50 {summary['p50_us']:8.1f} us   "
                  f"p95 {summary['p95_us']:8.1f} us")
        print(f"  results written  : {RESULT_PATH}")
        print("PASS")
        return 0
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
