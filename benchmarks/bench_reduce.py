"""Smoke benchmark: graph reduction must earn its keep, exactly.

Two acceptance bars, checked on every CI run:

1. **It bites.**  On the community workload the reduction pass targets —
   dense near-clique blocks wrapped in a preferential low-degree fringe
   — ``reduction="full"`` must remove **at least 30 %** of the vertices
   or edges before the H*-machinery starts, and the delivered clique
   stream must be exactly the unreduced one (same set, no divergence).

2. **It is free when useless.**  On a workload with nothing to remove
   (every degree above the peel cap, twins broken by background edges)
   the end-to-end enumeration with ``reduction="full"`` must cost
   **under 5 %** more wall time than ``reduction="off"``, best-of-N
   both sides.

Results go to ``BENCH_reduce.json`` at the repository root.

Run directly (as CI does)::

    PYTHONPATH=src python benchmarks/bench_reduce.py
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro import DiskGraph, ExtMCE, ExtMCEConfig
from repro.core.result import render_clique_lines
from repro.generators import (
    defective_clique_communities,
    fringed_clique_communities,
)
from repro.reduce import reduce_graph

REDUCTION_FLOOR = 0.30
OVERHEAD_BUDGET = 0.05
REPEATS = 3
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_reduce.json"


def community_graph():
    """The reduction target: clique communities plus a peelable fringe."""
    return fringed_clique_communities(
        400, seed=5, core_fraction=0.7,
        community_min=14, community_max=20, defects=5,
    )


def noop_graph():
    """Nothing to reduce: degrees beat the peel cap, background kills twins."""
    return defective_clique_communities(
        120, seed=7, community_min=20, community_max=28,
        defects=5, background_edges=2,
    )


def enumerate_once(graph, workdir: Path, reduction: str) -> tuple[float, list]:
    """One full enumeration; returns (wall seconds, clique stream)."""
    if workdir.exists():
        shutil.rmtree(workdir)
    workdir.mkdir(parents=True)
    disk = DiskGraph.create(workdir / "graph.bin", graph)
    algo = ExtMCE(disk, ExtMCEConfig(workdir=workdir, reduction=reduction))
    started = time.perf_counter()
    stream = list(algo.enumerate_cliques())
    return time.perf_counter() - started, stream


def paired_best(n: int, graph, workdir: Path) -> tuple[float, float]:
    """Best-of-``n`` walls for off and full, interleaved back-to-back.

    Alternating the two configurations inside one loop means slow drift
    (CPU frequency, page cache warmth) hits both sides equally instead
    of biasing whichever side ran last.
    """
    enumerate_once(graph, workdir / "warm", "off")  # warm-up, discarded
    off = full = float("inf")
    for _ in range(n):
        off = min(off, enumerate_once(graph, workdir / "off", "off")[0])
        full = min(full, enumerate_once(graph, workdir / "full", "full")[0])
    return off, full


def canonical(stream) -> bytes:
    return render_clique_lines(sorted(stream)).encode("ascii")


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="bench_reduce_"))
    failures = []
    try:
        # ------------------------------------------------------------------
        # 1. The community workload: reduction bites, stream is exact
        # ------------------------------------------------------------------
        graph = community_graph()
        shrink = {
            level: reduce_graph(graph, level).map
            for level in ("prune", "full")
        }
        vertex_cut = shrink["full"].vertices_removed / graph.num_vertices
        edge_cut = shrink["full"].edges_removed / graph.num_edges

        off_seconds, off_stream = enumerate_once(graph, tmp / "off", "off")
        runs = {"off": {"seconds": off_seconds, "cliques": len(off_stream)}}
        for level in ("prune", "full"):
            seconds, stream = enumerate_once(graph, tmp / level, level)
            diverged = canonical(stream) != canonical(off_stream)
            runs[level] = {
                "seconds": seconds,
                "cliques": len(stream),
                "diverged": diverged,
            }
            if diverged:
                failures.append(f"{level}: clique stream diverged from off")
        if max(vertex_cut, edge_cut) < REDUCTION_FLOOR:
            failures.append(
                f"full reduction removed only {vertex_cut:.1%} vertices / "
                f"{edge_cut:.1%} edges (floor {REDUCTION_FLOOR:.0%})"
            )

        # ------------------------------------------------------------------
        # 2. The no-op workload: reduction must be near-free
        # ------------------------------------------------------------------
        dense = noop_graph()
        noop_map = reduce_graph(dense, "full").map
        if not noop_map.is_identity:
            failures.append(
                "no-op workload was reducible: "
                f"{noop_map.vertices_removed} vertices removed"
            )
        off_wall, full_wall = paired_best(REPEATS, dense, tmp / "noop")
        overhead = full_wall / off_wall - 1.0
        if overhead >= OVERHEAD_BUDGET:
            failures.append(
                f"no-op overhead {overhead:.1%} exceeds "
                f"budget {OVERHEAD_BUDGET:.0%}"
            )

        document = {
            "bench": "reduce",
            "headline": {
                "vertex_reduction": vertex_cut,
                "edge_reduction": edge_cut,
                "noop_overhead": overhead,
                "stream_exact": not any(
                    runs[level].get("diverged") for level in ("prune", "full")
                ),
            },
            "community": {
                "graph": {
                    "model": "fringed_clique_communities",
                    "n": graph.num_vertices,
                    "edges": graph.num_edges,
                },
                "lower_bound": shrink["full"].lower_bound,
                "levels": {
                    level: {
                        "vertices_removed": rmap.vertices_removed,
                        "edges_removed": rmap.edges_removed,
                        "peeled": len(rmap.peeled),
                        "folded": len(rmap.folds),
                        "direct_cliques": len(rmap.direct),
                    }
                    for level, rmap in shrink.items()
                },
                "runs": runs,
            },
            "noop": {
                "graph": {
                    "model": "defective_clique_communities",
                    "n": dense.num_vertices,
                    "edges": dense.num_edges,
                },
                "off_seconds": off_wall,
                "full_seconds": full_wall,
                "overhead": overhead,
                "repeats": REPEATS,
            },
        }
        RESULT_PATH.write_text(json.dumps(document, indent=2) + "\n")

        print("graph reduction smoke benchmark")
        print(f"  community graph      : {graph.num_vertices} vertices, "
              f"{graph.num_edges} edges")
        print(f"  full reduction       : {vertex_cut:.1%} vertices, "
              f"{edge_cut:.1%} edges removed (floor {REDUCTION_FLOOR:.0%})")
        for level in ("off", "prune", "full"):
            entry = runs[level]
            print(f"  enumerate {level:5s}      : {entry['seconds'] * 1e3:8.1f} ms, "
                  f"{entry['cliques']} cliques")
        print(f"  no-op graph          : {dense.num_vertices} vertices, "
              f"{dense.num_edges} edges")
        print(f"  no-op walls (best/{REPEATS}) : off {off_wall * 1e3:.1f} ms, "
              f"full {full_wall * 1e3:.1f} ms "
              f"({overhead:+.2%}, budget {OVERHEAD_BUDGET:.0%})")
        print(f"  results              : {RESULT_PATH.name}")
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("PASS")
        return 0
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
