"""Bench: regenerate Table 5 (closeness, reachability, clique counts,
|T_H*| estimate accuracy).

Paper shape: h-vertices reach (almost) the whole graph within a few hops;
cliques containing h-vertices are a small minority (which is what makes
maintaining only them cheap); cliques touching h-neighbors are the vast
majority; the Knuth estimate is within a small factor of the true size.
"""

from repro.experiments import table5


def test_table5(benchmark, save_result):
    rows = benchmark.pedantic(table5.run, rounds=1, iterations=1)
    save_result("table5", table5.render(rows))
    for row in rows:
        # Few-hop closeness (paper: 3.1-7.1).
        assert 1.0 < row.closeness < 8.0
        # High reachability (paper: 47-100%).
        assert row.reachability > 0.4
        # Cliques containing h-vertices are a proper minority...
        assert row.cliques.containing_core < 0.6 * row.cliques.total
        # ...while cliques touching h-neighbors dominate (paper: >90%).
        assert row.cliques.containing_periphery > 0.6 * row.cliques.total
        # Against its true target (the backtracking tree) the estimate is
        # unbiased: close to 1, like the paper's 0.93-1.01 row.
        assert 0.6 <= row.backtrack_ratio <= 1.7
        # Against the minimal prefix tree it is a conservative upper
        # bound, so memory is never under-provisioned.
        assert row.estimate_ratio >= 0.8
