"""Smoke benchmark: disabled metrics must be near-free.

The instrumentation threaded through the storage layer, the kernels and
the driver calls into ``repro.metrics`` on every page read, subproblem
and emitted clique.  When no registry is installed those calls hit the
shared null instruments, and the budget for that is strict: the
acceptance bar is **under 5 % of enumeration wall time**.

Measuring "disabled minus uninstrumented" directly would need a second,
stripped build of the package, so the bound is assembled from two
measurements that together overestimate the true cost:

1. the per-call price of a null-instrument method, timed in a tight
   loop (the real call sites also pay one cached ``is`` check in
   :func:`repro.metrics.bound`, so the loop times that path too);
2. the number of instrument calls one enumeration makes, counted
   exactly by running once with a registry whose instruments do nothing
   but bump a shared call counter.

``bound = calls * per_call_cost`` must stay under ``BUDGET_FRACTION``
of the best-of-N disabled-path wall time.  The enabled/disabled wall
times are reported alongside for context but are deliberately not
asserted on: two full-enumeration timings differ by more than the
instrumentation costs on a noisy CI box, which is exactly why the
bound is built analytically.

Run directly (as CI does)::

    PYTHONPATH=src python benchmarks/bench_metrics_overhead.py
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import time
import timeit
from pathlib import Path

from repro import DiskGraph, ExtMCE, ExtMCEConfig, metrics
from repro.generators.scale_free import powerlaw_cluster_graph

BUDGET_FRACTION = 0.05
REPEATS = 3
NULL_LOOP_CALLS = 200_000


def _enumerate_once(disk: DiskGraph, workdir: Path) -> tuple[float, int]:
    """One full enumeration; returns (wall seconds, cliques emitted)."""
    if workdir.exists():
        shutil.rmtree(workdir)
    algo = ExtMCE(disk, ExtMCEConfig(workdir=workdir))
    started = time.perf_counter()
    emitted = sum(1 for _ in algo.enumerate_cliques())
    return time.perf_counter() - started, emitted


def _best_of(n: int, disk: DiskGraph, workdir: Path) -> float:
    return min(_enumerate_once(disk, workdir)[0] for _ in range(n))


def _null_call_cost() -> float:
    """Seconds per instrument call on the disabled path.

    Times the same shape the call sites use: fetch the cached bundle
    through ``bound()`` (one identity check), then a no-op ``inc``.
    """
    bundle = metrics.bound(
        lambda registry: registry.counter("bench_null_total", "bench")
    )

    def loop() -> None:
        for _ in range(NULL_LOOP_CALLS):
            bundle().inc()

    assert not metrics.enabled()
    return min(timeit.repeat(loop, number=1, repeat=5)) / NULL_LOOP_CALLS


class _CountingInstrument:
    """Counts invocations; stands in for counter, gauge, histogram, timer."""

    __slots__ = ("_registry",)

    def __init__(self, registry: "_CountingRegistry") -> None:
        self._registry = registry

    def _hit(self) -> None:
        self._registry.calls += 1

    def inc(self, amount: int | float = 1) -> None:  # noqa: ARG002
        self._hit()

    def dec(self, amount: int | float = 1) -> None:  # noqa: ARG002
        self._hit()

    def set(self, value: int | float) -> None:  # noqa: ARG002
        self._hit()

    def observe(self, value: int | float) -> None:  # noqa: ARG002
        self._hit()

    def __enter__(self) -> "_CountingInstrument":
        self._hit()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._hit()


class _CountingRegistry(metrics.NullRegistry):
    """Looks disabled to ``metrics.enabled()`` yet tallies every call."""

    def __init__(self) -> None:
        super().__init__()
        self.calls = 0
        self._instrument = _CountingInstrument(self)

    def counter(self, name, help="", labels=None, buckets=None):  # noqa: ARG002
        return self._instrument

    gauge = counter
    histogram = counter  # type: ignore[assignment]
    timer = counter  # type: ignore[assignment]


def _count_instrument_calls(disk: DiskGraph, workdir: Path) -> int:
    """Exact number of instrument calls one enumeration makes."""
    counting = _CountingRegistry()
    metrics.set_registry(counting)
    try:
        _enumerate_once(disk, workdir)
    finally:
        metrics.disable()
    return counting.calls


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="bench_metrics_"))
    try:
        graph = powerlaw_cluster_graph(400, 6, 0.5, seed=9)
        disk = DiskGraph.create(tmp / "g.bin", graph)
        workdir = tmp / "w"

        metrics.disable()
        disabled = _best_of(REPEATS, disk, workdir)
        calls = _count_instrument_calls(disk, workdir)
        metrics.enable(metrics.MetricsRegistry())
        enabled = _best_of(REPEATS, disk, workdir)
        metrics.disable()
        per_call = _null_call_cost()

        bound = calls * per_call
        fraction = bound / disabled
        print("metrics overhead smoke benchmark")
        print(f"  graph                  : {graph.num_vertices} vertices, "
              f"{graph.num_edges} edges")
        print(f"  disabled wall (best/{REPEATS}): {disabled * 1e3:9.1f} ms")
        print(f"  enabled wall  (best/{REPEATS}): {enabled * 1e3:9.1f} ms")
        print(f"  instrument calls       : {calls:9d}")
        print(f"  null call cost         : {per_call * 1e9:9.1f} ns")
        print(f"  disabled-path bound    : {bound * 1e3:9.3f} ms "
              f"({fraction * 100:.2f}% of wall)")
        print(f"  budget                 : {BUDGET_FRACTION * 100:.0f}%")
        if fraction >= BUDGET_FRACTION:
            print("FAIL: disabled-path bound exceeds budget", file=sys.stderr)
            return 1
        print("PASS")
        return 0
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
