"""Bench: regenerate Table 7 (dynamic update maintenance over P1-P6).

Paper shape: updates that touch T_H* cost milliseconds and are a small
fraction of all updates; the h-vertex set grows steadily with very high
retention between periods; recomputing the full clique set from the
maintained tree is cheaper than from scratch.
"""

from repro.experiments import table7


def test_table7(benchmark, save_result):
    rows = benchmark.pedantic(
        table7.run, kwargs={"dataset": "blogs", "num_periods": 6}, rounds=1, iterations=1
    )
    save_result("table7", table7.render(rows))
    assert len(rows) == 6

    # Millisecond-scale maintenance (paper: 2-10 ms on 2004 hardware).
    for row in rows:
        assert row.average_update_ms < 50.0
        # Only a minority of updates touch the H*-graph.
        assert row.updates_in_star < 0.5 * row.updates_in_graph

    # h grows as the network grows; retention between periods is high.
    h_counts = [row.num_h_vertices for row in rows]
    assert h_counts[-1] >= h_counts[0]
    for row in rows[1:]:
        assert row.h_vertices_retained >= 0.8

    # Seeding the on-demand enumeration with the maintained tree is never
    # slower than scratch by more than noise, and usually faster.
    with_tree = sum(row.seconds_with_tree for row in rows)
    without_tree = sum(row.seconds_without_tree for row in rows)
    assert with_tree <= 1.15 * without_tree
