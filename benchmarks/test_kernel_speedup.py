"""Bitset kernel speedup: big-int bitmask hot path vs set-based Tomita.

Times full maximal-clique enumeration over the 4000-vertex benchmark
graphs with ``kernel="set"`` and ``kernel="bitset"`` (bitset timings
*include* the CSR/bitmask conversion), asserts the two clique streams
are identical element-for-element, and writes ``BENCH_kernel.json``.

Three graphs spanning the regimes documented in docs/ALGORITHMS.md:

* ``community`` — defective-clique communities, the headline row: large
  candidate sets keep the enumeration inside wide big-int AND/OR ops,
  where the kernel wins by >3x.
* ``powerlaw m=16`` — a denser scale-free graph, moderate win.
* ``powerlaw m=5`` — the sparse scaling graph, where both paths are
  interpreter-bound and the win is small; recorded for honesty.

The sweep also pickles both worker-payload formats for each graph's
H*-star so the CSR-vs-dict payload shrinkage lands in the same JSON.
"""

import json
import pickle
import time

from repro.analysis.tables import render_table
from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.core.hstar import extract_hstar_graph
from repro.generators.communities import defective_clique_communities
from repro.generators.scale_free import powerlaw_cluster_graph
from repro.parallel.partition import serialize_star

NUM_VERTICES = 4_000

GRAPHS = [
    (
        "community",
        lambda: defective_clique_communities(NUM_VERTICES, seed=99),
    ),
    (
        "powerlaw m=16",
        lambda: powerlaw_cluster_graph(NUM_VERTICES, 16, 0.5, seed=99),
    ),
    (
        "powerlaw m=5",
        lambda: powerlaw_cluster_graph(NUM_VERTICES, 5, 0.7, seed=99),
    ),
]

#: The committed acceptance bar for the headline (community) row.
HEADLINE_SPEEDUP = 3.0


def _time_enumeration(graph, kernel):
    started = time.perf_counter()
    stream = list(tomita_maximal_cliques(graph, kernel=kernel))
    return time.perf_counter() - started, stream


def _payload_bytes(graph):
    star = extract_hstar_graph(graph)
    return {
        kernel: len(pickle.dumps(serialize_star(star, kernel=kernel)))
        for kernel in ("set", "bitset")
    }


def _run_one(name, make_graph):
    graph = make_graph()
    set_seconds, set_stream = _time_enumeration(graph, "set")
    bitset_seconds, bitset_stream = _time_enumeration(graph, "bitset")
    assert bitset_stream == set_stream, (
        f"{name}: bitset stream diverged from the set stream"
    )
    payload = _payload_bytes(graph)
    return {
        "graph": name,
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "cliques": len(set_stream),
        "set_seconds": set_seconds,
        "bitset_seconds": bitset_seconds,
        "speedup": set_seconds / bitset_seconds if bitset_seconds else float("inf"),
        "payload_bytes_set": payload["set"],
        "payload_bytes_bitset": payload["bitset"],
    }


def test_kernel_speedup_sweep(benchmark, save_result, results_dir):
    results = benchmark.pedantic(
        lambda: [_run_one(name, make) for name, make in GRAPHS],
        rounds=1,
        iterations=1,
    )

    save_result(
        "kernel_speedup",
        render_table(
            f"Bitset kernel speedup (n={NUM_VERTICES}, identical streams "
            "asserted; bitset timings include conversion)",
            [
                "graph", "edges", "cliques", "set s", "bitset s",
                "speedup", "payload set", "payload csr",
            ],
            [
                (
                    r["graph"],
                    r["edges"],
                    r["cliques"],
                    f"{r['set_seconds']:.2f}",
                    f"{r['bitset_seconds']:.2f}",
                    f"{r['speedup']:.2f}x",
                    r["payload_bytes_set"],
                    r["payload_bytes_bitset"],
                )
                for r in results
            ],
        ),
    )
    summary = {
        "bench": "kernel_speedup",
        "num_vertices": NUM_VERTICES,
        "stream_identical": True,
        "headline": {
            "graph": results[0]["graph"],
            "speedup": results[0]["speedup"],
        },
        "runs": results,
    }
    (results_dir.parent.parent / "BENCH_kernel.json").write_text(
        json.dumps(summary, indent=2) + "\n"
    )

    # Sparse rows sit at interpreter-bound parity (~1x), so they only
    # guard against a pathological regression; the dense-community
    # headline graph must clear the committed 3x bar.
    for r in results:
        assert r["speedup"] > 0.8, f"{r['graph']}: bitset regressed vs set"
        assert r["payload_bytes_bitset"] < r["payload_bytes_set"]
    assert results[0]["speedup"] > HEADLINE_SPEEDUP, (
        f"headline speedup {results[0]['speedup']:.2f}x below "
        f"{HEADLINE_SPEEDUP}x on {results[0]['graph']}"
    )
