"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation flips one knob on the `blogs` stand-in and reports the cost
delta, with correctness pinned (every variant must produce the same clique
set).
"""

import tempfile
import time

from repro.analysis.tables import render_table
from repro.baselines.stix import StixDynamicMCE
from repro.core.clique_tree import build_clique_tree
from repro.core.estimator import estimate_tree_size
from repro.core.extmce import ExtMCE, ExtMCEConfig
from repro.core.hstar import extract_hstar_graph
from repro.experiments.common import dataset_graph, dataset_spec, make_disk_graph

DATASET = "blogs"


def _run_extmce(tmp, **config_kwargs):
    disk = make_disk_graph(DATASET, tmp)
    config = ExtMCEConfig(workdir=tmp, **config_kwargs)
    algo = ExtMCE(disk, config)
    started = time.perf_counter()
    cliques = set(algo.enumerate_cliques())
    return cliques, time.perf_counter() - started, algo.report


def test_ablation_lemma2_structured_enumeration(benchmark, save_result):
    """Lemma-2 structured tree construction vs generic pivoted MCE."""
    star = extract_hstar_graph(dataset_graph(DATASET))

    def structured():
        return build_clique_tree(star, use_structure=True)

    tree_fast, _ = benchmark.pedantic(structured, rounds=3, iterations=1)
    started = time.perf_counter()
    tree_slow, _ = build_clique_tree(star, use_structure=False)
    generic_seconds = time.perf_counter() - started
    assert set(tree_fast.cliques()) == set(tree_slow.cliques())
    save_result(
        "ablation_lemma2",
        render_table(
            "Ablation: T_H* construction (Lemma 2 structure on/off)",
            ["variant", "seconds", "tree nodes"],
            [
                ("structured (paper)", f"{benchmark.stats.stats.mean:.3f}", tree_fast.num_nodes),
                ("generic pivoted MCE", f"{generic_seconds:.3f}", tree_slow.num_nodes),
            ],
        ),
    )


def test_ablation_hashtable_cleanup(benchmark, save_result):
    """Section 4.3's end-of-round hashtable purge: memory vs bookkeeping."""
    with tempfile.TemporaryDirectory() as tmp_on:
        def run_with_cleanup():
            return _run_extmce(tmp_on, hashtable_cleanup=True)

        cliques_on, seconds_on, report_on = benchmark.pedantic(
            run_with_cleanup, rounds=1, iterations=1
        )
    with tempfile.TemporaryDirectory() as tmp_off:
        cliques_off, seconds_off, report_off = _run_extmce(
            tmp_off, hashtable_cleanup=False
        )
    assert cliques_on == cliques_off
    save_result(
        "ablation_cleanup",
        render_table(
            "Ablation: maximality-hashtable cleanup (Section 4.3)",
            ["variant", "seconds", "peak memory units"],
            [
                ("cleanup on (paper)", f"{seconds_on:.2f}", report_on.peak_memory_units),
                ("cleanup off", f"{seconds_off:.2f}", report_off.peak_memory_units),
            ],
        ),
    )
    # Cleanup can only reduce (or match) the peak.
    assert report_on.peak_memory_units <= report_off.peak_memory_units


def test_ablation_estimator_probe_count(benchmark, save_result):
    """Estimator accuracy/cost vs probe count (Section 4.1.3)."""
    star = extract_hstar_graph(dataset_graph(DATASET))
    tree, _ = build_clique_tree(star)
    actual = tree.num_nodes

    def probe_64():
        return estimate_tree_size(star, num_probes=64, seed=0)

    benchmark.pedantic(probe_64, rounds=3, iterations=1)
    rows = []
    for probes in (4, 16, 64, 256, 1024):
        estimates = [
            estimate_tree_size(star, num_probes=probes, seed=s) for s in range(5)
        ]
        mean = sum(estimates) / len(estimates)
        spread = max(estimates) - min(estimates)
        rows.append(
            (probes, f"{mean / actual:.2f}", f"{spread / actual:.2f}")
        )
    save_result(
        "ablation_estimator",
        render_table(
            "Ablation: |T_H*| estimator probes (ratio to actual, seed spread)",
            ["probes", "mean est/actual", "spread/actual"],
            rows,
        ),
    )
    # More probes shrink the seed-to-seed spread.
    spreads = [float(r[2]) for r in rows]
    assert spreads[-1] <= spreads[0]


def test_ablation_stix_indexing(benchmark, save_result):
    """Stix faithful full-scan mode vs the per-vertex-indexed extension."""
    spec = dataset_spec("protein")
    edges = spec.edges()

    def faithful():
        return StixDynamicMCE.from_edges(edges, indexed=False)

    algo_faithful = benchmark.pedantic(faithful, rounds=1, iterations=1)
    started = time.perf_counter()
    algo_indexed = StixDynamicMCE.from_edges(edges, indexed=True)
    indexed_seconds = time.perf_counter() - started
    assert set(algo_faithful.cliques()) == set(algo_indexed.cliques())
    save_result(
        "ablation_stix",
        render_table(
            "Ablation: streaming baseline, full-scan (paper) vs indexed",
            ["variant", "seconds", "cliques"],
            [
                ("full-scan (Stix 2004)", f"{benchmark.stats.stats.mean:.2f}", algo_faithful.num_cliques()),
                ("per-vertex index", f"{indexed_seconds:.2f}", algo_indexed.num_cliques()),
            ],
        ),
    )


def test_ablation_partition_fraction(benchmark, save_result):
    """Section 4.2.3 partition sizing: spill-file budget vs run time."""
    rows = []
    baseline_cliques = None
    for fraction in (0.25, 0.5, 1.0, 2.0):
        with tempfile.TemporaryDirectory() as tmp:
            cliques, seconds, report = _run_extmce(tmp, partition_fraction=fraction)
        if baseline_cliques is None:
            baseline_cliques = cliques
        assert cliques == baseline_cliques
        rows.append((fraction, f"{seconds:.2f}", report.peak_memory_units))

    def timed_default():
        with tempfile.TemporaryDirectory() as tmp:
            return _run_extmce(tmp)

    benchmark.pedantic(timed_default, rounds=1, iterations=1)
    save_result(
        "ablation_partitions",
        render_table(
            "Ablation: h-neighbor partition budget (fraction of |G_H*|)",
            ["fraction", "seconds", "peak memory units"],
            rows,
        ),
    )


def test_ablation_buffer_pool_policies(benchmark, save_result):
    """Page-replacement policies under the MCE access pattern."""
    import tempfile as _tempfile

    from repro.baselines.ondisk import tomita_maximal_cliques_on_disk
    from repro.storage.diskgraph import DiskGraph
    from repro.storage.iostats import IOStats
    from repro.storage.random_access import RandomAccessDiskGraph
    from tests.helpers import seeded_gnp

    graph = seeded_gnp(400, 0.05, seed=2)
    rows = []
    baseline = None
    for policy in ("lru", "clock", "fifo"):
        with _tempfile.TemporaryDirectory() as tmp:
            stats = IOStats()
            disk = DiskGraph.create(f"{tmp}/g.bin", graph, io_stats=stats)
            stats.pages_read = stats.random_reads = 0
            radg = RandomAccessDiskGraph(disk, capacity_pages=4, policy=policy)
            cliques = sum(1 for _ in tomita_maximal_cliques_on_disk(radg))
            if baseline is None:
                baseline = cliques
            assert cliques == baseline
            rows.append(
                (policy, stats.random_reads, f"{radg.pool.hit_rate:.3f}", cliques)
            )

    def timed_lru():
        with _tempfile.TemporaryDirectory() as tmp:
            disk = DiskGraph.create(f"{tmp}/g.bin", graph)
            radg = RandomAccessDiskGraph(disk, capacity_pages=4, policy="lru")
            return sum(1 for _ in tomita_maximal_cliques_on_disk(radg))

    benchmark.pedantic(timed_lru, rounds=1, iterations=1)
    save_result(
        "ablation_bufferpool",
        render_table(
            "Ablation: buffer-pool replacement policy (4-page cache)",
            ["policy", "seeks (misses)", "hit rate", "cliques"],
            rows,
        ),
    )
    by_policy = {row[0]: row[1] for row in rows}
    # LRU should not lose to FIFO on this access pattern.
    assert by_policy["lru"] <= 1.1 * by_policy["fifo"]


def test_ablation_batch_updates(benchmark, save_result):
    """Section 5 extension: batched vs per-edge update application."""
    from repro.dynamic.maintainer import HStarMaintainer
    from repro.generators.scale_free import powerlaw_cluster_edges

    edges = powerlaw_cluster_edges(1500, 4, 0.7, seed=5)

    def sequential():
        maintainer = HStarMaintainer()
        for u, v in edges:
            maintainer.insert_edge(u, v)
        return maintainer

    seq = benchmark.pedantic(sequential, rounds=1, iterations=1)
    started = time.perf_counter()
    batched = HStarMaintainer()
    for start in range(0, len(edges), 200):
        batched.insert_batch(edges[start : start + 200])
    batch_seconds = time.perf_counter() - started
    save_result(
        "ablation_batch_updates",
        render_table(
            "Ablation: dynamic maintenance, per-edge vs 200-edge batches",
            ["variant", "seconds", "core rebuilds", "h"],
            [
                ("per-edge (paper)", f"{benchmark.stats.stats.mean:.2f}",
                 seq.stats.core_rebuilds, seq.h),
                ("batched", f"{batch_seconds:.2f}",
                 batched.stats.core_rebuilds, batched.h),
            ],
        ),
    )
    assert batched.stats.core_rebuilds <= seq.stats.core_rebuilds
    assert batched.graph.num_edges == seq.graph.num_edges


def test_ablation_update_churn(benchmark, save_result):
    """Section 5 under churn: growth streams with interleaved deletions.

    Table 7 replays pure growth; real networks also lose edges.  This
    ablation interleaves deletions of recently added edges (10%% churn)
    and checks maintenance stays exact and millisecond-scale.
    """
    import random as _random

    from repro.core.clique_tree import enumerate_star_cliques
    from repro.dynamic.maintainer import HStarMaintainer
    from repro.generators.scale_free import powerlaw_cluster_edges

    edges = powerlaw_cluster_edges(1200, 4, 0.7, seed=11)
    rng = _random.Random(0)

    def replay():
        maintainer = HStarMaintainer()
        window = []
        for u, v in edges:
            maintainer.insert_edge(u, v)
            window.append((u, v))
            if len(window) > 50 and rng.random() < 0.1:
                du, dv = window.pop(rng.randrange(len(window) - 30))
                if maintainer.graph.has_edge(du, dv):
                    maintainer.delete_edge(du, dv)
        return maintainer

    maintainer = benchmark.pedantic(replay, rounds=1, iterations=1)
    stats = maintainer.stats
    # Maintained tree still exact after churn.
    expected = set(enumerate_star_cliques(maintainer.star()))
    assert set(maintainer.star_cliques()) == expected
    assert stats.deletions > 0
    save_result(
        "ablation_churn",
        render_table(
            "Ablation: maintenance under churn (10% deletions)",
            ["metric", "value"],
            [
                ("updates total", stats.updates_total),
                ("insertions", stats.insertions),
                ("deletions", stats.deletions),
                ("updates hitting G_H*", stats.updates_hitting_star),
                ("avg hit cost (ms)", f"{stats.average_hit_milliseconds:.2f}"),
                ("core rebuilds", stats.core_rebuilds),
                ("final h", maintainer.h),
            ],
        ),
    )
    assert stats.average_hit_milliseconds < 50.0


def test_ablation_budget_squeeze(benchmark, save_result):
    """Section 4.1.3 under pressure: tighter budgets force core shrinking.

    ExtMCE must stay correct as the budget drops below what the natural
    H*-graph needs — trading a smaller first-step core (and more
    recursions) for memory, exactly the compromise the paper describes.
    """
    from repro.baselines.bron_kerbosch import tomita_maximal_cliques as _oracle
    from repro.storage.memory import MemoryModel

    graph = dataset_graph(DATASET)
    oracle = set(_oracle(graph))
    natural_h = extract_hstar_graph(graph).h
    inmem_units = 2 * graph.num_edges + graph.num_vertices

    rows = []
    # 0.25 x (2m+n) is near the hard floor: the Section 4.3 hashtable
    # (~11K units on blogs, data-dependent and necessarily resident)
    # cannot be squeezed further -- the one structure the paper leaves
    # unbounded.
    for fraction in (1.0, 0.5, 0.35, 0.25):
        budget = int(inmem_units * fraction)
        with tempfile.TemporaryDirectory() as tmp:
            disk = make_disk_graph(DATASET, tmp)
            memory = MemoryModel(budget=budget)
            config = ExtMCEConfig(workdir=tmp, memory_budget_units=budget)
            algo = ExtMCE(disk, config, memory=memory)
            started = time.perf_counter()
            cliques = set(algo.enumerate_cliques())
            seconds = time.perf_counter() - started
        assert cliques == oracle, f"budget {budget}: wrong clique set"
        assert memory.peak_units <= budget
        rows.append(
            (
                f"{fraction:.3f} x (2m+n)",
                budget,
                algo.report.steps[0].core_size,
                algo.report.num_recursions,
                f"{seconds:.2f}",
                memory.peak_units,
            )
        )

    def timed_tightest():
        with tempfile.TemporaryDirectory() as tmp:
            disk = make_disk_graph(DATASET, tmp)
            budget = int(inmem_units * 0.25)
            config = ExtMCEConfig(workdir=tmp, memory_budget_units=budget)
            algo = ExtMCE(disk, config, memory=MemoryModel(budget=budget))
            return sum(1 for _ in algo.enumerate_cliques())

    benchmark.pedantic(timed_tightest, rounds=1, iterations=1)
    save_result(
        "ablation_budget_squeeze",
        render_table(
            f"Ablation: budget squeeze on {DATASET} (natural h = {natural_h})",
            ["budget", "units", "step-1 core", "recursions", "seconds", "peak units"],
            rows,
        ),
    )
    # Tighter budgets shrink the first-step core and add recursions...
    cores = [row[2] for row in rows]
    recursions = [row[3] for row in rows]
    assert cores[-1] < cores[0]
    assert recursions[-1] > recursions[0]
    # ...and every run honoured its cap (asserted above per run).
