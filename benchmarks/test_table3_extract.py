"""Bench: regenerate Table 3 (cost of extracting the H*-graph).

Paper shape: extraction is fast, dominated by the single disk scan, with
memory linear in |G_H*|.
"""

from repro.experiments import table3


def test_table3(benchmark, save_result):
    rows = benchmark.pedantic(table3.run, rounds=1, iterations=1)
    save_result("table3", table3.render(rows))
    by_name = {row.dataset: row for row in rows}
    # Extraction stays sub-second on every stand-in (paper: seconds to
    # an hour at 400-40000x the scale).
    for row in rows:
        assert row.total_seconds < 5.0
        assert row.h > 0
    # Memory tracks |G_H*|: the largest dataset needs the most.
    assert by_name["web"].memory_mb > by_name["protein"].memory_mb
    # h grows with network size, as in the paper's Table 4.
    assert by_name["web"].h > by_name["protein"].h
