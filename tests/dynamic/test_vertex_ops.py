"""Tests for vertex-level maintenance operations (Section 5's reduction)."""

import pytest

from repro.core.clique_tree import enumerate_star_cliques
from repro.dynamic.maintainer import HStarMaintainer
from repro.errors import GraphError

from tests.helpers import FIGURE1_ID, cliques_of, figure1_graph


def assert_consistent(maintainer):
    expected = cliques_of(enumerate_star_cliques(maintainer.star()))
    assert cliques_of(maintainer.star_cliques()) == expected


class TestInsertVertex:
    def test_isolated_vertex(self):
        maintainer = HStarMaintainer(figure1_graph())
        maintainer.insert_vertex(100)
        assert 100 in maintainer.graph
        assert maintainer.graph.degree(100) == 0
        assert_consistent(maintainer)

    def test_vertex_with_neighbors(self):
        maintainer = HStarMaintainer(figure1_graph())
        hubs = [FIGURE1_ID["a"], FIGURE1_ID["b"], FIGURE1_ID["c"]]
        maintainer.insert_vertex(100, neighbors=hubs)
        assert maintainer.graph.degree(100) == 3
        assert_consistent(maintainer)
        # The new vertex is adjacent to the abc clique -> appears in T_H*.
        assert any(100 in c for c in maintainer.star_cliques())

    def test_duplicate_vertex_rejected(self):
        maintainer = HStarMaintainer(figure1_graph())
        with pytest.raises(GraphError):
            maintainer.insert_vertex(FIGURE1_ID["a"])

    def test_counts_edge_updates(self):
        maintainer = HStarMaintainer(figure1_graph())
        before = maintainer.stats.updates_total
        maintainer.insert_vertex(100, neighbors=[FIGURE1_ID["a"], FIGURE1_ID["b"]])
        assert maintainer.stats.updates_total == before + 2


class TestDeleteVertex:
    def test_delete_periphery_vertex(self):
        maintainer = HStarMaintainer(figure1_graph())
        maintainer.delete_vertex(FIGURE1_ID["w"])
        assert FIGURE1_ID["w"] not in maintainer.graph
        assert_consistent(maintainer)

    def test_delete_core_vertex(self):
        maintainer = HStarMaintainer(figure1_graph())
        maintainer.delete_vertex(FIGURE1_ID["a"])
        assert FIGURE1_ID["a"] not in maintainer.graph
        assert_consistent(maintainer)

    def test_delete_unknown_vertex_rejected(self):
        maintainer = HStarMaintainer(figure1_graph())
        with pytest.raises(GraphError):
            maintainer.delete_vertex(12345)

    def test_insert_then_delete_round_trip(self):
        maintainer = HStarMaintainer(figure1_graph())
        before = cliques_of(maintainer.star_cliques())
        maintainer.insert_vertex(100, neighbors=[FIGURE1_ID["a"]])
        maintainer.delete_vertex(100)
        assert cliques_of(maintainer.star_cliques()) == before
        assert_consistent(maintainer)

    def test_degree_histogram_stays_consistent(self):
        maintainer = HStarMaintainer(figure1_graph())
        maintainer.insert_vertex(100, neighbors=[FIGURE1_ID["q"]])
        maintainer.delete_vertex(100)
        # A follow-up update must still compute h correctly.
        maintainer.insert_edge(FIGURE1_ID["q"], FIGURE1_ID["t"])
        assert_consistent(maintainer)


class TestBatchInsert:
    def test_batch_equals_fresh_enumeration(self):
        from repro.generators.scale_free import powerlaw_cluster_edges

        edges = powerlaw_cluster_edges(120, 3, 0.7, seed=9)
        maintainer = HStarMaintainer()
        maintainer.insert_batch(edges)
        assert_consistent(maintainer)

    def test_batch_matches_sequential_result(self):
        from repro.generators.scale_free import powerlaw_cluster_edges

        edges = powerlaw_cluster_edges(100, 3, 0.6, seed=4)
        sequential = HStarMaintainer()
        for u, v in edges:
            sequential.insert_edge(u, v)
        batched = HStarMaintainer()
        batched.insert_batch(edges)
        # Same graph and (after validity resolution) a valid core; the
        # clique sets agree for the respective cores.
        assert batched.graph.num_edges == sequential.graph.num_edges
        assert_consistent(batched)
        assert_consistent(sequential)

    def test_batch_needs_at_most_one_rebuild(self):
        from repro.generators.scale_free import powerlaw_cluster_edges

        edges = powerlaw_cluster_edges(150, 3, 0.7, seed=2)
        maintainer = HStarMaintainer()
        maintainer.insert_batch(edges)
        assert maintainer.stats.core_rebuilds <= 1

    def test_batch_fewer_rebuilds_than_sequential(self):
        from repro.generators.scale_free import powerlaw_cluster_edges

        edges = powerlaw_cluster_edges(150, 3, 0.7, seed=2)
        sequential = HStarMaintainer()
        for u, v in edges:
            sequential.insert_edge(u, v)
        batched = HStarMaintainer()
        for start in range(0, len(edges), 50):
            batched.insert_batch(edges[start : start + 50])
        assert batched.stats.core_rebuilds < sequential.stats.core_rebuilds

    def test_duplicate_edges_skipped(self):
        maintainer = HStarMaintainer()
        maintainer.insert_batch([(0, 1), (0, 1), (1, 0)])
        assert maintainer.stats.updates_total == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            HStarMaintainer().insert_batch([(2, 2)])

    def test_empty_batch_noop(self):
        maintainer = HStarMaintainer(figure1_graph())
        before = maintainer.stats.updates_total
        maintainer.insert_batch([])
        assert maintainer.stats.updates_total == before
