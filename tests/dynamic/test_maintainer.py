"""Tests for Section 5's dynamic maintenance of T_H*."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.core.clique_tree import enumerate_star_cliques
from repro.dynamic.maintainer import HStarMaintainer
from repro.errors import EdgeNotFoundError, GraphError

from tests.helpers import cliques_of, figure1_graph


def assert_consistent(maintainer):
    """The maintained tree holds exactly M_H* of the maintained star, and
    the maintained core is a valid Definition-1 h-vertex set."""
    expected = cliques_of(enumerate_star_cliques(maintainer.star()))
    assert cliques_of(maintainer.star_cliques()) == expected
    g, h, core = maintainer.graph, maintainer.h, maintainer.core
    assert len(core) == h
    for v in core:
        assert g.degree(v) >= h
    for v in g.vertices():
        if v not in core:
            assert g.degree(v) <= h


class TestBasics:
    def test_empty_start(self):
        maintainer = HStarMaintainer()
        assert maintainer.h == 0
        assert maintainer.star_cliques() == []

    def test_initial_graph_adopted(self):
        maintainer = HStarMaintainer(figure1_graph())
        assert maintainer.h == 5
        assert_consistent(maintainer)

    def test_initial_graph_copied_not_shared(self):
        g = figure1_graph()
        maintainer = HStarMaintainer(g)
        g.add_edge(100, 101)
        assert 100 not in maintainer.graph

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            HStarMaintainer().insert_edge(1, 1)

    def test_delete_missing_edge_raises(self):
        with pytest.raises(EdgeNotFoundError):
            HStarMaintainer(figure1_graph()).delete_edge(0, 100)

    def test_duplicate_insert_not_counted(self):
        maintainer = HStarMaintainer(figure1_graph())
        before = maintainer.stats.updates_total
        maintainer.insert_edge(0, 1)  # (a, b) already present
        assert maintainer.stats.updates_total == before


class TestUpdateRules:
    def test_insertion_outside_star_is_cheap(self):
        maintainer = HStarMaintainer(figure1_graph())
        from tests.helpers import FIGURE1_ID

        before = maintainer.stats.updates_hitting_star
        # (q, t): neither endpoint is an h-vertex, degrees stay below h.
        maintainer.insert_edge(FIGURE1_ID["q"], FIGURE1_ID["t"])
        assert maintainer.stats.updates_hitting_star == before
        assert_consistent(maintainer)

    def test_insertion_touching_core_updates_tree(self):
        from tests.helpers import FIGURE1_ID

        maintainer = HStarMaintainer(figure1_graph())
        # (a, z): a is an h-vertex, z a periphery vertex not adjacent to a.
        maintainer.insert_edge(FIGURE1_ID["a"], FIGURE1_ID["z"])
        assert maintainer.stats.updates_hitting_star >= 1
        assert_consistent(maintainer)

    def test_deletion_touching_core_updates_tree(self):
        from tests.helpers import FIGURE1_ID

        maintainer = HStarMaintainer(figure1_graph())
        maintainer.delete_edge(FIGURE1_ID["a"], FIGURE1_ID["w"])
        assert_consistent(maintainer)

    def test_new_vertex_via_insertion(self):
        maintainer = HStarMaintainer(figure1_graph())
        maintainer.insert_edge(0, 50)
        assert 50 in maintainer.graph
        assert_consistent(maintainer)

    def test_core_change_triggers_rebuild(self):
        # Growing a tiny graph changes h constantly -> rebuilds counted.
        maintainer = HStarMaintainer()
        for u, v in [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)]:
            maintainer.insert_edge(u, v)
        assert maintainer.stats.core_rebuilds >= 1
        assert_consistent(maintainer)


class TestPropertyEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100_000))
    def test_random_update_stream_stays_exact(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 20)
        maintainer = HStarMaintainer()
        present = set()
        for _ in range(rng.randint(10, 70)):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            edge = (min(u, v), max(u, v))
            if edge in present and rng.random() < 0.4:
                maintainer.delete_edge(*edge)
                present.discard(edge)
            elif edge not in present:
                maintainer.insert_edge(*edge)
                present.add(edge)
        assert_consistent(maintainer)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 100_000))
    def test_full_enumeration_matches_oracle(self, tmp_path_factory, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 14)
        maintainer = HStarMaintainer()
        for _ in range(30):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v and not maintainer.graph.has_edge(u, v):
                maintainer.insert_edge(u, v)
        tmp = tmp_path_factory.mktemp("dyn")
        oracle = cliques_of(tomita_maximal_cliques(maintainer.graph))
        with_tree, _ = maintainer.compute_all_max_cliques(tmp / "a", True)
        without_tree, _ = maintainer.compute_all_max_cliques(tmp / "b", False)
        assert cliques_of(with_tree) == oracle
        assert cliques_of(without_tree) == oracle


class TestStats:
    def test_hit_fraction_and_average(self):
        maintainer = HStarMaintainer(figure1_graph())
        from tests.helpers import FIGURE1_ID

        maintainer.insert_edge(FIGURE1_ID["a"], FIGURE1_ID["z"])
        stats = maintainer.stats
        assert 0 < stats.hit_fraction <= 1
        assert stats.average_hit_milliseconds >= 0

    def test_empty_stats(self):
        stats = HStarMaintainer().stats
        assert stats.hit_fraction == 0.0
        assert stats.average_hit_milliseconds == 0.0

    def test_resident_memory_units_positive_after_growth(self):
        maintainer = HStarMaintainer(figure1_graph())
        assert maintainer.resident_memory_units > 0

    def test_apply_stream(self):
        maintainer = HStarMaintainer()
        maintainer.apply_stream([(0, 1, 2), (1, 2, 3), (2, 1, 3)])
        assert maintainer.graph.num_edges == 3
        assert_consistent(maintainer)
