"""Stateful property tests: dynamic structures vs. a model oracle.

Hypothesis drives arbitrary interleavings of insertions and deletions
against :class:`StixDynamicMCE` and :class:`HStarMaintainer`, checking
after every step that the maintained state equals what a from-scratch
recomputation would give.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
from hypothesis import strategies as st

from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.baselines.stix import StixDynamicMCE
from repro.core.clique_tree import enumerate_star_cliques
from repro.dynamic.maintainer import HStarMaintainer

VERTICES = st.integers(min_value=0, max_value=9)


class StixMachine(RuleBasedStateMachine):
    """Stix maintainer must always hold exactly the maximal cliques."""

    def __init__(self):
        super().__init__()
        self.algo = StixDynamicMCE(indexed=False)
        self.shadow = StixDynamicMCE(indexed=True)
        self.present: set[tuple[int, int]] = set()

    @rule(u=VERTICES, v=VERTICES)
    def insert(self, u, v):
        if u == v:
            return
        edge = (min(u, v), max(u, v))
        if edge in self.present:
            return
        self.algo.insert_edge(*edge)
        self.shadow.insert_edge(*edge)
        self.present.add(edge)

    @precondition(lambda self: self.present)
    @rule(data=st.data())
    def delete(self, data):
        edge = data.draw(st.sampled_from(sorted(self.present)))
        self.algo.delete_edge(*edge)
        self.shadow.delete_edge(*edge)
        self.present.discard(edge)

    @rule(v=VERTICES)
    def add_vertex(self, v):
        self.algo.add_vertex(v)
        self.shadow.add_vertex(v)

    @invariant()
    def matches_oracle(self):
        oracle = set(tomita_maximal_cliques(self.algo.graph))
        assert set(self.algo.cliques()) == oracle
        assert set(self.shadow.cliques()) == oracle


class MaintainerMachine(RuleBasedStateMachine):
    """T_H* maintenance must track the star graph's true clique set."""

    def __init__(self):
        super().__init__()
        self.maintainer = HStarMaintainer()
        self.present: set[tuple[int, int]] = set()

    @rule(u=VERTICES, v=VERTICES)
    def insert(self, u, v):
        if u == v:
            return
        edge = (min(u, v), max(u, v))
        if edge in self.present:
            return
        self.maintainer.insert_edge(*edge)
        self.present.add(edge)

    @precondition(lambda self: self.present)
    @rule(data=st.data())
    def delete(self, data):
        edge = data.draw(st.sampled_from(sorted(self.present)))
        self.maintainer.delete_edge(*edge)
        self.present.discard(edge)

    @precondition(lambda self: self.present)
    @rule(data=st.data())
    def delete_vertex(self, data):
        vertices = sorted({v for edge in self.present for v in edge})
        vertex = data.draw(st.sampled_from(vertices))
        self.maintainer.delete_vertex(vertex)
        self.present = {e for e in self.present if vertex not in e}

    @invariant()
    def tree_matches_star(self):
        star = self.maintainer.star()
        expected = set(enumerate_star_cliques(star))
        assert set(self.maintainer.star_cliques()) == expected

    @invariant()
    def core_is_valid_h_set(self):
        g = self.maintainer.graph
        h = self.maintainer.h
        core = self.maintainer.core
        assert len(core) == h
        assert all(g.degree(v) >= h for v in core)
        assert all(g.degree(v) <= h for v in g.vertices() if v not in core)


TestStixMachine = StixMachine.TestCase
TestStixMachine.settings = settings(
    max_examples=25, stateful_step_count=25, deadline=None
)

TestMaintainerMachine = MaintainerMachine.TestCase
TestMaintainerMachine.settings = settings(
    max_examples=25, stateful_step_count=25, deadline=None
)
