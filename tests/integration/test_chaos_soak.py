"""Chaos soak: the full serving tier under concurrent overload, injected
connection resets, worker deaths, and a killed compactor — plus the
operator path: SIGTERM → graceful drain → clean exit → verifiable store.

The in-process soak runs readers (retrying clients), a writer stream
(through the supervisor), a network fault plan resetting connections
mid-reply, two injected ingest-worker deaths and one compactor death at
once, and then reconciles: the final clique set must equal an
uninterrupted run's, every acked update must survive, and no reader may
ever observe a wrong or duplicate answer — typed errors are the only
acceptable failure mode.  The subprocess half sends a real SIGTERM to
``repro-mce live --serve`` and requires exit code 0 with a store that
passes ``repro-mce verify-index``.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import metrics
from repro.baselines.bron_kerbosch import tomita_maximal_cliques
from repro.errors import ReproError, ServiceUnavailableError
from repro.faults import FaultPlan, FaultRule
from repro.live import LiveCliqueStore, LiveIngestor, LiveSupervisor
from repro.live.ingest import maintainer_from_store
from repro.service import (
    CliqueQueryClient,
    CliqueQueryEngine,
    CliqueQueryServer,
    RetryPolicy,
)

from tests.helpers import seeded_gnp

#: Soak dimensions — small enough for CI, busy enough to collide.
NUM_READERS = 6
READS_PER_READER = 30
SOAK_SEED = 23


def _seed_cliques():
    graph = seeded_gnp(24, 0.3, seed=SOAK_SEED)
    return graph, sorted(tuple(sorted(c)) for c in set(tomita_maximal_cliques(graph)))


def _stream_events():
    """A deterministic mixed stream on vertices disjoint from the seed."""
    events = []
    ts = 0
    for n in range(20):
        u, v = 100 + n, 100 + (n * 7 + 3) % 25
        if u == v:
            v += 1
        events.append((ts, u, v))
        ts += 1
    for n in range(0, 20, 5):
        u, v = 100 + n, 100 + (n * 7 + 3) % 25
        if u == v:
            v += 1
        events.append((ts, "delete", u, v))
        ts += 1
    return events


class _SlowEngine(CliqueQueryEngine):
    """A per-query delay so concurrent readers actually collide."""

    def query(self, op, timeout_seconds=None, **args):
        time.sleep(0.004)
        return super().query(op, timeout_seconds=timeout_seconds, **args)


@pytest.fixture()
def fresh_registry():
    previous = metrics.get_registry()
    registry = metrics.MetricsRegistry()
    metrics.set_registry(registry)
    yield registry
    metrics.set_registry(previous)


@pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")
def test_chaos_soak_serves_correctly_through_overload_and_failures(
    tmp_path, fresh_registry
):
    graph, seed_cliques = _seed_cliques()
    events = _stream_events()

    # The oracle: the same seed + stream, uninterrupted.
    reference_store = LiveCliqueStore.initialize(tmp_path / "reference", seed_cliques)
    try:
        LiveIngestor(maintainer_from_store(reference_store), reference_store).ingest(
            events
        )
        reference = reference_store.live_cliques()
    finally:
        reference_store.close()

    store = LiveCliqueStore.initialize(tmp_path / "live", seed_cliques)
    kills = {"remaining": 2}

    def chaos_hook(event):
        # Kill the ingest worker at two points of the stream.
        if kills["remaining"] and len(event) == 3 and event[1] in (105, 113):
            kills["remaining"] -= 1
            raise RuntimeError(f"chaos kill at {event!r}")

    plan = FaultPlan(
        [
            FaultRule(
                operation="net", kind="conn_reset", probability=0.08,
                max_firings=None, path_contains="write",
            ),
        ],
        seed=SOAK_SEED,
    )
    store.start_compactor(tail_threshold=24)
    supervisor = LiveSupervisor(
        store,
        lambda: LiveIngestor(maintainer_from_store(store), store),
        poll_interval_seconds=0.02,
        backoff_base_seconds=0.01,
        compactor_tail_threshold=24,
        fail_hook=chaos_hook,
    ).start()
    engine = _SlowEngine(store)
    server = CliqueQueryServer(
        engine,
        max_in_flight=4,
        retry_after_ms=20.0,
        fault_plan=plan,
        supervisor=supervisor,
    ).start()
    host, port = server.address

    # Kill the compactor once, mid-soak; the supervisor must revive it.
    original_compact = store.compact

    def lethal_compact(*a, **kw):
        store.compact = original_compact
        raise SystemExit("chaos compactor death")

    store.compact = lethal_compact

    protocol_violations: list[str] = []
    typed_errors = [0]
    successes = [0]
    counter_lock = threading.Lock()
    stop_readers = threading.Event()

    def reader(worker_id):
        client = CliqueQueryClient(
            host, port, timeout_seconds=15.0,
            retry_policy=RetryPolicy(max_attempts=4, base_sleep=0.01, max_sleep=0.2),
        )
        try:
            for n in range(READS_PER_READER):
                if stop_readers.is_set():
                    return
                vertex = (worker_id * 5 + n) % 24
                try:
                    # Invariants that hold at *every* moment of the soak.
                    ids = client.cliques_containing(vertex).result
                    if not ids:
                        protocol_violations.append(
                            f"vertex {vertex} in no clique"
                        )
                    top = client.top_k_largest(3).result
                    sizes = [len(c) for c in top]
                    if sizes != sorted(sizes, reverse=True):
                        protocol_violations.append(f"unsorted top-k {sizes}")
                    if client.stats().result["num_cliques"] <= 0:
                        protocol_violations.append("empty stats")
                    with counter_lock:
                        successes[0] += 3
                except (ServiceUnavailableError, ReproError):
                    with counter_lock:
                        typed_errors[0] += 1
                except Exception as exc:  # wrong/duplicate/torn answers
                    protocol_violations.append(f"{type(exc).__name__}: {exc}")
        finally:
            client.close()

    def prober():
        """Hammer without retries until an explicit shed reply is seen."""
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline and not stop_readers.is_set():
            try:
                with socket.create_connection((host, port), timeout=5.0) as sock:
                    sock.sendall(b'{"id": 1, "op": "stats", "args": {}}\n')
                    line = sock.makefile("rb").readline()
                if line.endswith(b"\n"):
                    reply = json.loads(line)
                    if reply.get("overloaded"):
                        shed_replies.append(reply)
                        return
            except OSError:
                continue

    shed_replies: list[dict] = []
    threads = [
        threading.Thread(target=reader, args=(n,)) for n in range(NUM_READERS)
    ]
    threads.append(threading.Thread(target=prober))
    for thread in threads:
        thread.start()
    try:
        for event in events:
            assert supervisor.submit(event, timeout=60.0)
            time.sleep(0.01)  # interleave writes with the reader storm
        assert supervisor.wait_idle(120.0)
    finally:
        for thread in threads:
            thread.join(timeout=60.0)
        stop_readers.set()

    try:
        # --- reconciliation: nothing lost, nothing wrong -------------
        assert protocol_violations == [], protocol_violations[:5]
        assert successes[0] > 0, "the soak never completed a single read"
        assert supervisor.acked_events == len(events)
        assert supervisor.restarts["ingest"] >= 1, "chaos never bit"
        assert kills["remaining"] == 0
        assert not supervisor.degraded
        assert store.live_cliques() == reference
        store.verify()
        # The shed path really fired, and carried the backoff hint.
        assert shed_replies, "overload was never provoked"
        assert shed_replies[0]["retry_after_ms"] == 20.0
        snapshot = fresh_registry.snapshot()
        assert metrics.counter_value(snapshot, "repro_server_shed_total") >= 1
        assert metrics.counter_value(
            snapshot, "repro_supervisor_worker_deaths_total"
        ) >= 2
        # The compactor died (SystemExit) and was restarted.
        assert supervisor.restarts["compactor"] >= 1
        health = server.health_payload()
        assert health["status"] == "ok"
        assert health["supervisor"]["degraded"] is False
    finally:
        supervisor.stop()
        server.stop()
        store.close()


@pytest.mark.slow
def test_sigterm_drains_flushes_and_leaves_a_verifiable_store(tmp_path):
    graph, _ = _seed_cliques()
    edges = tmp_path / "edges.txt"
    edges.write_text(
        "".join(f"{u} {v}\n" for u, v in graph.edges())
    )
    stream = tmp_path / "stream.txt"
    stream.write_text(
        "".join(
            f"{e[0]} {e[1]} {e[2]}\n" if len(e) == 3
            else f"{e[0]} {e[1]} {e[2]} {e[3]}\n"
            for e in _stream_events()
        )
    )
    store_dir = tmp_path / "store"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "live", str(store_dir),
            "--graph", str(edges), "--stream", str(stream), "--serve",
            "--drain-timeout", "10",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    try:
        # Wait for the server to come up (ingest happens before serve).
        output_lines: list[str] = []
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line:
                break
            output_lines.append(line)
            if "listening on" in line:
                break
        assert any("listening on" in line for line in output_lines), output_lines
        process.send_signal(signal.SIGTERM)
        remaining = process.communicate(timeout=60.0)[0]
        output = "".join(output_lines) + remaining
        assert process.returncode == 0, output
        assert "drained" in output and "clean" in output, output
        assert "WAL flushed" in output, output
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30.0)
    verify = subprocess.run(
        [sys.executable, "-m", "repro.cli", "verify-index", str(store_dir)],
        capture_output=True,
        env=env,
        text=True,
        timeout=120.0,
    )
    assert verify.returncode == 0, verify.stdout + verify.stderr
