"""Crash recovery under a hard kill (satellite of the fault-tolerance PR).

A real crash is not a Python exception: the process disappears mid-step
with no chance to clean up.  This test SIGKILLs a checkpointed run in a
subprocess, then exercises the documented consumer protocol — truncate
the partial output to the checkpoint's ``cliques_emitted``, resume, and
concatenate — asserting the spliced stream is *identical* (order
included) to an uninterrupted run.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.core.checkpoint import CHECKPOINT_FILENAME, read_checkpoint
from repro.core.extmce import ExtMCE, ExtMCEConfig
from repro.errors import StorageError
from repro.storage.diskgraph import DiskGraph

from tests.helpers import seeded_gnp

GRAPH_SEED = 5
RUN_SEED = 3

# The child enumerates the same graph the checkpoint suite uses, slowed
# down per clique so the parent can reliably kill it mid-run.
CHILD_SCRIPT = textwrap.dedent(
    """
    import random
    import sys
    import time

    from repro.core.extmce import ExtMCE, ExtMCEConfig
    from repro.graph.adjacency import AdjacencyGraph
    from repro.storage.diskgraph import DiskGraph

    workdir, graph_path, out_path = sys.argv[1], sys.argv[2], sys.argv[3]
    rng = random.Random({graph_seed})
    edges = [
        (u, v)
        for u in range(80)
        for v in range(u + 1, 80)
        if rng.random() < 0.2
    ]
    graph = AdjacencyGraph.from_edges(edges, vertices=range(80))
    disk = DiskGraph.create(graph_path, graph)
    config = ExtMCEConfig(workdir=workdir, checkpoint=True, seed={run_seed})
    with open(out_path, "w") as out:
        for clique in ExtMCE(disk, config).enumerate_cliques():
            out.write(",".join(str(v) for v in sorted(clique)) + chr(10))
            out.flush()
            time.sleep(0.003)
    """
).format(graph_seed=GRAPH_SEED, run_seed=RUN_SEED)


def read_stream(path: Path):
    lines = path.read_text().splitlines()
    # A line without a trailing newline may be torn by the kill; the
    # splice truncates to the checkpoint count anyway, but drop an
    # obviously incomplete final line so parsing never crashes.
    cliques = []
    for line in lines:
        try:
            cliques.append(frozenset(int(v) for v in line.split(",") if v))
        except ValueError:
            break
    return cliques


def test_sigkill_mid_run_resume_is_byte_identical(tmp_path):
    graph = seeded_gnp(80, 0.2, seed=GRAPH_SEED)
    baseline_disk = DiskGraph.create(tmp_path / "baseline.bin", graph)
    baseline = [
        frozenset(clique)
        for clique in ExtMCE(
            baseline_disk,
            ExtMCEConfig(workdir=tmp_path / "baseline_work", seed=RUN_SEED),
        ).enumerate_cliques()
    ]

    work = tmp_path / "work"
    out_path = tmp_path / "cliques.txt"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    root = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = os.pathsep.join([src, root])
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT,
         str(work), str(tmp_path / "input.bin"), str(out_path)],
        env=env,
    )
    try:
        # Wait until at least one checkpoint is durable, then pull the plug.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if child.poll() is not None:
                break
            if (work / CHECKPOINT_FILENAME).exists() and out_path.exists():
                break
            time.sleep(0.01)
        if child.poll() is None:
            child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:  # pragma: no cover - cleanup on test bug
            child.kill()
            child.wait()

    if not (work / CHECKPOINT_FILENAME).exists():
        # The child won the race and finished cleanly; the contract is
        # then simply that its output matches the baseline.
        assert read_stream(out_path) == baseline
        return

    state = read_checkpoint(work)
    emitted = read_stream(out_path)
    assert len(emitted) >= state.cliques_emitted
    kept = emitted[: state.cliques_emitted]
    resumed = ExtMCE.resume(work)
    rest = [frozenset(clique) for clique in resumed.enumerate_cliques()]
    assert kept + rest == baseline
    assert not (work / CHECKPOINT_FILENAME).exists()


def test_kill_before_first_checkpoint_restarts_cleanly(tmp_path):
    """With no checkpoint yet, recovery is a plain restart from zero."""
    graph = seeded_gnp(40, 0.2, seed=GRAPH_SEED)
    disk = DiskGraph.create(tmp_path / "g.bin", graph)
    work = tmp_path / "work"
    work.mkdir()
    with pytest.raises(StorageError):
        read_checkpoint(work)
    cliques = list(
        ExtMCE(
            disk, ExtMCEConfig(workdir=work, checkpoint=True, seed=RUN_SEED)
        ).enumerate_cliques()
    )
    assert cliques
    assert not (work / CHECKPOINT_FILENAME).exists()
