"""Cross-module integration tests: the full system on realistic workloads."""

import pytest

from repro import (
    CliqueCounter,
    CliqueFileSink,
    DiskGraph,
    ExtMCE,
    ExtMCEConfig,
    MemoryModel,
    StixDynamicMCE,
    bron_kerbosch_maximal_cliques,
    degeneracy_maximal_cliques,
    tomita_maximal_cliques,
)
from repro.core.hstar import extract_hstar_graph
from repro.dynamic import HStarMaintainer
from repro.generators import powerlaw_cluster_graph

from tests.helpers import cliques_of


@pytest.fixture(scope="module")
def scale_free():
    return powerlaw_cluster_graph(500, 4, 0.7, seed=77)


class TestFourWayAgreement:
    def test_all_enumerators_agree_on_scale_free_graph(self, scale_free, tmp_path):
        oracle = cliques_of(tomita_maximal_cliques(scale_free))
        assert cliques_of(bron_kerbosch_maximal_cliques(scale_free)) == oracle
        assert cliques_of(degeneracy_maximal_cliques(scale_free)) == oracle
        disk = DiskGraph.create(tmp_path / "g.bin", scale_free)
        ext = cliques_of(
            ExtMCE(disk, ExtMCEConfig(workdir=tmp_path / "w")).enumerate_cliques()
        )
        assert ext == oracle
        stix = StixDynamicMCE.from_edges(scale_free.edges(), indexed=True)
        assert cliques_of(stix.cliques()) == oracle


class TestMemoryContrast:
    def test_extmce_peak_below_inmem_footprint(self, scale_free, tmp_path):
        inmem_units = 2 * scale_free.num_edges + scale_free.num_vertices
        memory = MemoryModel()
        disk = DiskGraph.create(tmp_path / "g.bin", scale_free)
        algo = ExtMCE(disk, ExtMCEConfig(workdir=tmp_path / "w"), memory=memory)
        list(algo.enumerate_cliques())
        assert memory.peak_units < inmem_units

    def test_extmce_completes_under_budget_that_kills_inmem(
        self, scale_free, tmp_path
    ):
        from repro.errors import MemoryBudgetExceeded

        inmem_units = 2 * scale_free.num_edges + scale_free.num_vertices
        budget = int(0.8 * inmem_units)
        with pytest.raises(MemoryBudgetExceeded):
            list(
                tomita_maximal_cliques(scale_free, memory=MemoryModel(budget=budget))
            )
        disk = DiskGraph.create(tmp_path / "g.bin", scale_free)
        memory = MemoryModel(budget=budget)
        algo = ExtMCE(
            disk,
            ExtMCEConfig(workdir=tmp_path / "w", memory_budget_units=budget),
            memory=memory,
        )
        result = cliques_of(algo.enumerate_cliques())
        assert result == cliques_of(tomita_maximal_cliques(scale_free))


class TestSinksIntegration:
    def test_counter_tracks_core_coverage(self, scale_free, tmp_path):
        star = extract_hstar_graph(scale_free)
        counter = CliqueCounter(
            tracked_sets={"core": star.core, "periphery": star.periphery}
        )
        disk = DiskGraph.create(tmp_path / "g.bin", scale_free)
        ExtMCE(disk, ExtMCEConfig(workdir=tmp_path / "w")).run(sink=counter)
        assert counter.total > 0
        assert counter.tracked_counts["core"] <= counter.total
        # Table 5's observation: cliques touching h-neighbors dominate.
        assert counter.tracked_counts["periphery"] > counter.total // 2

    def test_file_sink_round_trip(self, scale_free, tmp_path):
        disk = DiskGraph.create(tmp_path / "g.bin", scale_free)
        out = tmp_path / "cliques.txt"
        with CliqueFileSink(out) as sink:
            ExtMCE(disk, ExtMCEConfig(workdir=tmp_path / "w")).run(sink=sink)
        read_back = {
            frozenset(int(x) for x in line.split())
            for line in out.read_text().splitlines()
        }
        assert read_back == cliques_of(tomita_maximal_cliques(scale_free))


class TestDynamicToStaticPipeline:
    def test_grow_then_enumerate(self, tmp_path):
        from repro.generators.scale_free import powerlaw_cluster_edges

        edges = powerlaw_cluster_edges(150, 3, 0.7, seed=3)
        maintainer = HStarMaintainer()
        for u, v in edges:
            maintainer.insert_edge(u, v)
        cliques, report = maintainer.compute_all_max_cliques(tmp_path / "mce")
        oracle = cliques_of(tomita_maximal_cliques(maintainer.graph))
        assert cliques_of(cliques) == oracle
        assert report.total_cliques == len(oracle)

    def test_deletions_interleaved(self, tmp_path):
        from repro.generators.scale_free import powerlaw_cluster_edges

        edges = powerlaw_cluster_edges(100, 3, 0.6, seed=4)
        maintainer = HStarMaintainer()
        for index, (u, v) in enumerate(edges):
            maintainer.insert_edge(u, v)
            if index % 7 == 3:
                maintainer.delete_edge(u, v)
        cliques, _ = maintainer.compute_all_max_cliques(tmp_path / "mce")
        assert cliques_of(cliques) == cliques_of(
            tomita_maximal_cliques(maintainer.graph)
        )
