"""Tests for the scale-free graph generators."""

import pytest

from repro.errors import GraphError
from repro.generators.scale_free import (
    barabasi_albert_graph,
    powerlaw_cluster_edges,
    powerlaw_cluster_graph,
    random_gnp_graph,
)
from repro.graph.powerlaw import fit_rank_exponent


class TestValidation:
    def test_edges_per_vertex_must_be_positive(self):
        with pytest.raises(GraphError):
            powerlaw_cluster_graph(10, 0, 0.5)

    def test_num_vertices_must_exceed_m(self):
        with pytest.raises(GraphError):
            powerlaw_cluster_graph(3, 3, 0.5)

    def test_probability_range(self):
        with pytest.raises(GraphError):
            powerlaw_cluster_graph(10, 2, 1.5)
        with pytest.raises(GraphError):
            random_gnp_graph(10, -0.1)


class TestDeterminism:
    def test_same_seed_same_graph(self):
        a = powerlaw_cluster_edges(200, 3, 0.6, seed=5)
        b = powerlaw_cluster_edges(200, 3, 0.6, seed=5)
        assert a == b

    def test_different_seed_different_graph(self):
        a = powerlaw_cluster_edges(200, 3, 0.6, seed=5)
        b = powerlaw_cluster_edges(200, 3, 0.6, seed=6)
        assert a != b


class TestStructure:
    def test_vertex_count(self):
        g = powerlaw_cluster_graph(150, 2, 0.5, seed=1)
        assert g.num_vertices == 150

    def test_edge_count_near_target(self):
        n, m = 300, 4
        g = powerlaw_cluster_graph(n, m, 0.5, seed=1)
        # seed clique + ~m per arriving vertex
        assert g.num_edges >= (n - m - 1) * 1  # at least one edge each
        assert g.num_edges <= n * m + m * (m + 1)

    def test_no_self_loops_or_duplicates(self):
        edges = powerlaw_cluster_edges(150, 3, 0.8, seed=2)
        assert all(u != v for u, v in edges)
        assert len(edges) == len(set(edges))

    def test_connected_single_component(self):
        from repro.graph.stats import reachability_fraction

        g = powerlaw_cluster_graph(200, 2, 0.6, seed=3)
        assert reachability_fraction(g, [0]) == 1.0

    def test_power_law_tail(self):
        g = powerlaw_cluster_graph(800, 3, 0.5, seed=4)
        fit = fit_rank_exponent(g)
        assert fit.rank_exponent < -0.1
        assert fit.r_squared > 0.5

    def test_triangles_increase_with_probability(self):
        def triangle_count(g):
            return sum(
                1
                for u in g
                for v in g.neighbors(u)
                for w in g.neighbors(u)
                if v < w and g.has_edge(v, w)
            )

        low = triangle_count(powerlaw_cluster_graph(400, 3, 0.0, seed=7))
        high = triangle_count(powerlaw_cluster_graph(400, 3, 0.9, seed=7))
        assert high > low

    def test_ba_is_zero_triangle_probability_variant(self):
        assert barabasi_albert_graph(100, 2, seed=1).num_edges == len(
            powerlaw_cluster_edges(100, 2, 0.0, seed=1)
        )

    def test_gnp_edge_probability(self):
        g = random_gnp_graph(60, 0.5, seed=1)
        possible = 60 * 59 // 2
        assert 0.35 * possible < g.num_edges < 0.65 * possible
