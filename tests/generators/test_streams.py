"""Tests for timestamped edge streams and period splitting."""

import pytest

from repro.errors import GraphError
from repro.generators.streams import edge_stream, split_into_periods


class TestEdgeStream:
    def test_consecutive_timestamps(self):
        stream = edge_stream([(0, 1), (1, 2)])
        assert stream == [(0, 0, 1), (1, 1, 2)]

    def test_empty(self):
        assert edge_stream([]) == []


class TestSplit:
    def test_equal_periods_cover_everything(self):
        stream = edge_stream([(i, i + 1) for i in range(100)])
        warmup, periods = split_into_periods(stream, 6, warmup_fraction=0.1)
        assert len(warmup) == 10
        assert sum(len(p) for p in periods) == 90
        assert max(len(p) for p in periods) - min(len(p) for p in periods) <= 1

    def test_order_preserved(self):
        stream = edge_stream([(i, i + 1) for i in range(20)])
        warmup, periods = split_into_periods(stream, 3)
        rebuilt = warmup + [e for p in periods for e in p]
        assert rebuilt == stream

    def test_no_warmup_by_default(self):
        stream = edge_stream([(0, 1), (1, 2)])
        warmup, _ = split_into_periods(stream, 2)
        assert warmup == []

    def test_bad_period_count(self):
        with pytest.raises(GraphError):
            split_into_periods([], 0)

    def test_bad_warmup_fraction(self):
        with pytest.raises(GraphError):
            split_into_periods([], 2, warmup_fraction=1.0)

    def test_more_periods_than_edges(self):
        stream = edge_stream([(0, 1)])
        _, periods = split_into_periods(stream, 5)
        assert sum(len(p) for p in periods) == 1
        assert len(periods) == 5
