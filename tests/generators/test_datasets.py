"""Tests for the dataset stand-in specs."""

import pytest

from repro.errors import GraphError
from repro.generators.datasets import DATASETS, generate_dataset, list_datasets


class TestRegistry:
    def test_four_datasets_in_paper_order(self):
        assert list_datasets() == ["protein", "blogs", "lj", "web"]

    def test_unknown_name_raises(self):
        with pytest.raises(GraphError):
            generate_dataset("nope")

    def test_paper_figures_recorded(self):
        spec = DATASETS["web"]
        assert spec.paper_vertices == 10_000_000
        assert spec.paper_edges == 80_000_000


class TestGeneration:
    def test_protein_shape(self):
        g = generate_dataset("protein")
        spec = DATASETS["protein"]
        assert g.num_vertices == spec.num_vertices
        assert g.num_edges > spec.num_vertices  # denser than a tree

    def test_scales_ordered_like_paper(self):
        sizes = [generate_dataset(name).num_edges for name in list_datasets()]
        assert sizes == sorted(sizes)

    def test_deterministic(self):
        a = generate_dataset("protein")
        b = generate_dataset("protein")
        assert a.num_edges == b.num_edges
        assert sorted(a.edges()) == sorted(b.edges())

    def test_edges_match_graph(self):
        spec = DATASETS["protein"]
        assert len(spec.edges()) == spec.graph().num_edges
