"""Tests for the exact rank-power-law generator and the Section 3.2 bounds."""

import pytest

from repro.core.hstar import extract_hstar_graph
from repro.errors import GraphError
from repro.generators.rank_law import rank_power_law_degrees, rank_power_law_graph
from repro.graph.powerlaw import predicted_h, predicted_hstar_size_bounds


class TestDegreeSequence:
    def test_monotone_decreasing(self):
        degrees = rank_power_law_degrees(1000, -0.8)
        assert degrees == sorted(degrees, reverse=True)

    def test_even_total(self):
        for n, R in [(100, -0.7), (101, -0.8), (999, -0.75)]:
            assert sum(rank_power_law_degrees(n, R)) % 2 == 0

    def test_head_follows_law(self):
        n, R = 10_000, -0.8
        degrees = rank_power_law_degrees(n, R)
        assert degrees[0] == round((1 / n) ** R)
        assert degrees[9] == round((10 / n) ** R)

    def test_clamped_to_simple_graph_range(self):
        degrees = rank_power_law_degrees(50, -2.0)
        assert all(1 <= d <= 49 for d in degrees)

    def test_validation(self):
        with pytest.raises(GraphError):
            rank_power_law_degrees(1, -0.8)
        with pytest.raises(GraphError):
            rank_power_law_degrees(100, 0.5)


class TestGraphRealisation:
    def test_deterministic(self):
        a = rank_power_law_graph(500, -0.75, seed=3)
        b = rank_power_law_graph(500, -0.75, seed=3)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_simple_graph(self):
        g = rank_power_law_graph(500, -0.75, seed=3)
        for u, v in g.edges():
            assert u != v

    def test_realised_degrees_near_target(self):
        n, R = 2000, -0.75
        g = rank_power_law_graph(n, R, seed=1)
        target_edges = sum(rank_power_law_degrees(n, R)) // 2
        assert g.num_edges >= 0.95 * target_edges

    def test_vertex_zero_is_top_hub(self):
        g = rank_power_law_graph(2000, -0.8, seed=2)
        top_degree = max(g.degree(v) for v in g.vertices())
        assert g.degree(0) >= 0.9 * top_degree


class TestSection32Bounds:
    """The paper's Eq. (3) and Eq. (7) on graphs that satisfy Eq. (1)."""

    @pytest.mark.parametrize("rank_exponent", [-0.7, -0.8])
    @pytest.mark.parametrize("num_vertices", [2000, 8000])
    def test_eq3_h_prediction(self, num_vertices, rank_exponent):
        g = rank_power_law_graph(num_vertices, rank_exponent, seed=1)
        star = extract_hstar_graph(g)
        predicted = predicted_h(num_vertices, rank_exponent)
        # Eq. (3) is exact on exact-law graphs up to rounding/projection.
        assert abs(star.h - predicted) <= max(2, 0.05 * predicted)

    @pytest.mark.parametrize("rank_exponent", [-0.7, -0.8])
    def test_eq7_size_fraction(self, rank_exponent):
        n = 8000
        g = rank_power_law_graph(n, rank_exponent, seed=1)
        star = extract_hstar_graph(g)
        bounds = predicted_hstar_size_bounds(n, rank_exponent)
        measured = star.size_edges / g.num_edges
        # Within the predicted band, with slack for the simple-graph
        # projection trimming hub degrees.
        assert bounds.lower_fraction * 0.85 <= measured <= bounds.upper_fraction * 1.1

    def test_fraction_shrinks_with_growth(self):
        # Eq. (7)'s headline: the H*-graph's share of G falls as G grows.
        small = rank_power_law_graph(2000, -0.7, seed=1)
        large = rank_power_law_graph(16000, -0.7, seed=1)
        ratio_small = extract_hstar_graph(small).size_edges / small.num_edges
        ratio_large = extract_hstar_graph(large).size_edges / large.num_edges
        assert ratio_large < ratio_small


class TestBalancingCorners:
    def test_capped_hub_with_unit_tail(self):
        # Steep exponent on a small n caps the hub at n-1 while the tail
        # is all ones; balancing must still produce an even, monotone
        # sequence (regression: the soak harness hit a GraphError here).
        for n in range(3, 40):
            for exponent in (-0.6, -0.9, -1.1, -2.5):
                degrees = rank_power_law_degrees(n, exponent)
                assert sum(degrees) % 2 == 0, (n, exponent)
                assert degrees == sorted(degrees, reverse=True), (n, exponent)
                assert all(1 <= d <= n - 1 for d in degrees), (n, exponent)

    def test_graphs_realisable_for_steep_exponents(self):
        g = rank_power_law_graph(25, -1.2, seed=3)
        assert g.num_edges > 0
