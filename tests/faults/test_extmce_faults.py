"""End-to-end fault contract for (Parallel)ExtMCE.

The guarantee under every injected schedule: the run either completes
with a clique stream identical to the fault-free run, or raises a typed
:class:`~repro.errors.ReproError` leaving a resumable checkpoint whose
resume produces the exact remaining stream — never silent wrong output.
"""

import pytest

from repro.core.checkpoint import CHECKPOINT_FILENAME, read_checkpoint
from repro.core.extmce import ExtMCE, ExtMCEConfig
from repro.errors import ReproError
from repro.faults import FaultPlan, FaultRule
from repro.parallel import ParallelExtMCE
from repro.storage.diskgraph import DiskGraph

from tests.helpers import seeded_gnp

SEED = 3


@pytest.fixture
def graph():
    # Big enough for several recursion steps (same shape the checkpoint
    # suite uses), so mid-run faults land after a checkpoint exists.
    return seeded_gnp(80, 0.2, seed=5)


def baseline_stream(graph, tmp_path, workers=1):
    disk = DiskGraph.create(tmp_path / "baseline.bin", graph)
    work = tmp_path / "baseline_work"
    config = ExtMCEConfig(workdir=work, seed=SEED, workers=workers)
    driver = ParallelExtMCE if workers > 1 else ExtMCE
    return list(driver(disk, config, memory=None).enumerate_cliques())


def faulted_run(graph, tmp_path, *, storage_plan=None, executor_plan=None,
                workers=1, task_timeout=None, max_retries=2):
    """Run with faults armed; return (emitted, error, workdir)."""
    disk = DiskGraph.create(tmp_path / "input.bin", graph, fault_plan=storage_plan)
    work = tmp_path / "work"
    config = ExtMCEConfig(
        workdir=work, seed=SEED, checkpoint=True, workers=workers,
        max_retries=max_retries, fault_plan=executor_plan,
    )
    driver = ParallelExtMCE if workers > 1 else ExtMCE
    algo = driver(disk, config, memory=None)
    if task_timeout is not None:
        algo.task_timeout_seconds = task_timeout
    emitted = []
    error = None
    try:
        for clique in algo.enumerate_cliques():
            emitted.append(clique)
    except ReproError as exc:
        error = exc
    return emitted, error, work, algo


def resume_and_splice(emitted, work):
    """The documented consumer protocol: truncate, resume, concatenate."""
    state = read_checkpoint(work)
    kept = emitted[: state.cliques_emitted]
    resumed = ExtMCE.resume(work)
    return kept + list(resumed.enumerate_cliques())


class TestExecutorFaultsEndToEnd:
    def test_transient_worker_error_stream_identical(self, graph, tmp_path):
        expected = baseline_stream(graph, tmp_path, workers=2)
        plan = FaultPlan([FaultRule("chunk", "worker_error")])
        emitted, error, _, algo = faulted_run(
            graph, tmp_path, executor_plan=plan, workers=2
        )
        assert error is None
        assert emitted == expected  # order included
        assert algo.executor_stats.chunk_retries >= 1
        assert algo.fallback_steps == 0

    def test_chunk_timeout_stream_identical(self, graph, tmp_path):
        expected = baseline_stream(graph, tmp_path, workers=2)
        plan = FaultPlan([FaultRule("chunk", "timeout", latency_seconds=30.0)])
        emitted, error, _, algo = faulted_run(
            graph, tmp_path, executor_plan=plan, workers=2, task_timeout=2.0
        )
        assert error is None
        assert emitted == expected
        assert algo.executor_stats.chunk_timeouts >= 1
        assert algo.executor_stats.pool_rebuilds >= 1

    def test_poisoned_chunks_stream_identical(self, graph, tmp_path):
        expected = baseline_stream(graph, tmp_path, workers=2)
        plan = FaultPlan([FaultRule("chunk", "poison", max_firings=3)])
        emitted, error, _, algo = faulted_run(
            graph, tmp_path, executor_plan=plan, workers=2, max_retries=0
        )
        assert error is None
        assert emitted == expected
        assert algo.executor_stats.inline_chunks >= 1


class TestStorageFaultsEndToEnd:
    def test_corrupt_residual_scan_fails_typed_then_resumes(self, graph, tmp_path):
        expected = baseline_stream(graph, tmp_path)
        # Damage a scan of the step-1 residual: fires mid-step-2, after
        # the step-1 checkpoint is durable.
        plan = FaultPlan(
            [FaultRule("scan", "corrupt", path_contains="residual_0001")], seed=9
        )
        emitted, error, work, _ = faulted_run(graph, tmp_path, storage_plan=plan)
        if error is None:
            # The flipped byte landed in the header region the scan skips;
            # the contract still holds: the stream must be exact.
            assert emitted == expected
            return
        assert isinstance(error, ReproError)
        assert (work / CHECKPOINT_FILENAME).exists()
        assert resume_and_splice(emitted, work) == expected

    def test_partition_write_error_resumes_to_identical_stream(self, graph, tmp_path):
        expected = baseline_stream(graph, tmp_path)
        plan = FaultPlan(
            [FaultRule("write", "io_error", path_contains="partitions_0002")]
        )
        emitted, error, work, _ = faulted_run(graph, tmp_path, storage_plan=plan)
        assert error is not None
        assert (work / CHECKPOINT_FILENAME).exists()
        assert resume_and_splice(emitted, work) == expected

    def test_torn_residual_write_resumes_to_identical_stream(self, graph, tmp_path):
        expected = baseline_stream(graph, tmp_path)
        plan = FaultPlan(
            [FaultRule("write", "torn_write", path_contains="residual_0002")],
            seed=2,
        )
        emitted, error, work, _ = faulted_run(graph, tmp_path, storage_plan=plan)
        assert error is not None
        assert (work / CHECKPOINT_FILENAME).exists()
        # The interrupted step re-runs in full (including the torn
        # residual write, which now succeeds: the rule disarmed).
        assert resume_and_splice(emitted, work) == expected

    def test_latency_only_schedule_is_harmless(self, graph, tmp_path):
        expected = baseline_stream(graph, tmp_path)
        plan = FaultPlan(
            [FaultRule("scan", "latency", latency_seconds=0.001,
                       max_firings=5)]
        )
        emitted, error, _, _ = faulted_run(graph, tmp_path, storage_plan=plan)
        assert error is None
        assert emitted == expected
        assert len(plan.firings) == 5
