"""StepExecutor failure paths: retry, pool rebuild, inline degradation.

Satellite contract: a dead worker mid-map, a chunk timeout, and an
unpicklable payload each exercise retry-then-degrade at *chunk*
granularity, with matching counters in :class:`ExecutorStats` and events
through ``on_event``.
"""

import pytest

from repro.core.clique_tree import enumerate_star_cliques
from repro.core.hstar import extract_hstar_graph
from repro.faults import FaultPlan, FaultRule
from repro.parallel.executor import StepExecutor
from repro.parallel.merge import merge_tree_results
from repro.parallel.partition import chunk_tree_tasks, serialize_star, tree_tasks

from tests.helpers import cliques_of, seeded_gnp


@pytest.fixture
def star():
    return extract_hstar_graph(seeded_gnp(40, 0.2, seed=17))


@pytest.fixture
def events():
    log = []

    def on_event(event, **fields):
        log.append((event, fields))

    on_event.log = log
    return on_event


def run_tree(executor, star):
    tasks = tree_tasks(star)
    chunks = chunk_tree_tasks(tasks, workers=2)
    return merge_tree_results(tasks, executor.map_tree(chunks), star)


def expected_cliques(star):
    return cliques_of(enumerate_star_cliques(star))


class TestWorkerError:
    def test_transient_error_is_retried_on_the_pool(self, star, events):
        plan = FaultPlan([FaultRule("chunk", "worker_error")])
        with StepExecutor(
            2, serialize_star(star), fault_plan=plan, on_event=events
        ) as executor:
            star_cliques, _ = run_tree(executor, star)
            assert executor.stats.chunk_errors == 1
            assert executor.stats.chunk_retries == 1
            assert executor.stats.inline_chunks == 0
            assert executor.stats.pool_rebuilds == 0
            assert not executor.fell_back
        assert cliques_of(star_cliques) == expected_cliques(star)
        names = [name for name, _ in events.log]
        assert "chunk_error" in names and "chunk_retry" in names

    def test_persistent_error_degrades_only_that_chunk(self, star, events):
        # Every pool submission fails; every chunk exhausts its retries
        # and is recomputed inline.  The executor itself never fell back
        # wholesale — the pool stayed healthy throughout.
        plan = FaultPlan([FaultRule("chunk", "worker_error", max_firings=None)])
        with StepExecutor(
            2, serialize_star(star), fault_plan=plan, on_event=events,
            max_retries=1,
        ) as executor:
            star_cliques, _ = run_tree(executor, star)
            num_chunks = len(chunk_tree_tasks(tree_tasks(star), workers=2))
            assert executor.stats.inline_chunks == num_chunks
            assert executor.stats.chunk_retries == num_chunks  # one retry each
            assert not executor.fell_back
        assert cliques_of(star_cliques) == expected_cliques(star)
        assert any(name == "chunk_inline_fallback" for name, _ in events.log)


class TestWorkerDeath:
    def test_killed_worker_rebuilds_pool_not_whole_step(self, star, events):
        plan = FaultPlan([FaultRule("chunk", "worker_kill")])
        with StepExecutor(
            2, serialize_star(star), task_timeout=3.0,
            fault_plan=plan, on_event=events,
        ) as executor:
            star_cliques, _ = run_tree(executor, star)
            assert executor.stats.chunk_timeouts >= 1
            assert executor.stats.pool_rebuilds >= 1
            # Per-chunk recovery: nothing was recomputed inline — the
            # lost chunk went back to a (rebuilt) pool.
            assert executor.stats.inline_chunks == 0
            assert not executor.fell_back
        assert cliques_of(star_cliques) == expected_cliques(star)
        names = [name for name, _ in events.log]
        assert "chunk_timeout" in names and "pool_rebuild" in names


class TestChunkTimeout:
    def test_stalled_chunk_times_out_and_retry_succeeds(self, star, events):
        plan = FaultPlan(
            [FaultRule("chunk", "timeout", latency_seconds=30.0)]
        )
        with StepExecutor(
            2, serialize_star(star), task_timeout=1.0,
            fault_plan=plan, on_event=events,
        ) as executor:
            star_cliques, _ = run_tree(executor, star)
            assert executor.stats.chunk_timeouts == 1
            assert executor.stats.chunk_retries == 1
            assert executor.stats.pool_rebuilds >= 1
            assert executor.stats.inline_chunks == 0
        assert cliques_of(star_cliques) == expected_cliques(star)


class TestPoisonPayload:
    def test_unpicklable_chunk_degrades_inline(self, star, events):
        plan = FaultPlan([FaultRule("chunk", "poison", max_firings=None)])
        with StepExecutor(
            2, serialize_star(star), fault_plan=plan, on_event=events,
            max_retries=1,
        ) as executor:
            star_cliques, _ = run_tree(executor, star)
            assert executor.stats.chunk_errors >= 1
            assert executor.stats.inline_chunks >= 1
            assert not executor.fell_back
        assert cliques_of(star_cliques) == expected_cliques(star)
        errors = [f for name, f in events.log if name == "chunk_error"]
        assert errors and all("chunk_index" in f for f in errors)


class TestShmFaults:
    """The "shm" site: attach failures and stale segments are chunk errors."""

    def _run_on_shm(self, star, plan, events):
        from repro.parallel.scheduler import ParallelEngine

        with ParallelEngine(2) as engine:
            descriptor = engine.publish_star(star, "set")
            assert "shm" in descriptor, "shm publication should succeed on Linux"
            with StepExecutor(
                engine, descriptor, fault_plan=plan, on_event=events
            ) as executor:
                star_cliques, _ = run_tree(executor, star)
                stats = executor.stats
                fell_back = executor.fell_back
        return star_cliques, stats, fell_back

    def test_attach_failure_is_retried(self, star, events):
        plan = FaultPlan([FaultRule("shm", "attach_fail")])
        star_cliques, stats, fell_back = self._run_on_shm(star, plan, events)
        assert stats.chunk_errors == 1
        assert stats.chunk_retries == 1
        assert stats.inline_chunks == 0
        assert not fell_back
        assert cliques_of(star_cliques) == expected_cliques(star)
        names = [name for name, _ in events.log]
        assert "chunk_error" in names and "chunk_retry" in names

    def test_stale_segment_is_retried(self, star, events):
        plan = FaultPlan([FaultRule("shm", "stale_segment")])
        star_cliques, stats, fell_back = self._run_on_shm(star, plan, events)
        assert stats.chunk_errors == 1
        assert stats.chunk_retries == 1
        assert not fell_back
        assert cliques_of(star_cliques) == expected_cliques(star)

    def test_shm_faults_never_fire_on_inband_payloads(self, star, events):
        plan = FaultPlan([FaultRule("shm", "attach_fail", max_firings=None)])
        with StepExecutor(
            2, serialize_star(star), fault_plan=plan, on_event=events
        ) as executor:
            star_cliques, _ = run_tree(executor, star)
            assert not executor.stats.any_recovery
        assert cliques_of(star_cliques) == expected_cliques(star)
        assert events.log == []


class TestTelemetryShape:
    def test_no_faults_no_events(self, star, events):
        with StepExecutor(
            2, serialize_star(star), on_event=events
        ) as executor:
            run_tree(executor, star)
            assert not executor.stats.any_recovery
        assert events.log == []

    def test_stats_merge(self):
        from repro.parallel.executor import ExecutorStats

        a = ExecutorStats(chunk_retries=1, pool_rebuilds=2)
        b = ExecutorStats(chunk_retries=3, inline_chunks=4)
        a.merge(b)
        assert a.chunk_retries == 4
        assert a.pool_rebuilds == 2
        assert a.inline_chunks == 4
        assert a.any_recovery
